"""Top-N hot-frame summary of a ``--profile-out`` flamegraph.

Reads the collapsed-stack ``flame.txt`` a profiled run wrote (or the
``--profile-out`` directory containing it) and prints the hottest
frames — self samples, inclusive samples, and share of the total — as
one table per span (pipeline stage / analysis / fleet worker), plus an
all-spans aggregate::

    PYTHONPATH=src python tools/profile_top.py /tmp/profile
    PYTHONPATH=src python tools/profile_top.py /tmp/profile/flame.txt --top 5
    PYTHONPATH=src python tools/profile_top.py /tmp/profile --span analysis.exposure

*self* counts a frame when it was the sampled leaf (the code actually
on-CPU); *inclusive* counts it anywhere on the stack.  The input format
is one ``span;root;...;leaf count`` line per sampled stack — exactly
what ``flamegraph.pl`` / ``inferno`` consume, so this tool needs no
artifacts beyond the flamegraph itself.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.profile import FLAMEGRAPH_NAME, Profile  # noqa: E402


def load_collapsed(path: Path) -> Profile:
    """Rebuild a :class:`Profile` from collapsed-stack text.

    Accepts the ``flame.txt`` file or a directory containing one.
    Malformed lines (no count, empty stack) are skipped rather than
    fatal: a truncated flamegraph should still summarize.
    """
    if path.is_dir():
        path = path / FLAMEGRAPH_NAME
    profile = Profile()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            stack_part, _, count_part = line.rpartition(" ")
            if not stack_part:
                continue
            try:
                count = int(count_part)
            except ValueError:
                continue
            span, _, frames = stack_part.partition(";")
            if not frames:
                continue
            bucket = profile.samples.setdefault(span, {})
            bucket[frames] = bucket.get(frames, 0) + count
    return profile


def render_top(profile: Profile, span=None, top: int = 10) -> str:
    """One aligned top-N table for ``span`` (``None`` = all spans)."""
    rows = profile.top_frames(span=span, top=top)
    total = (profile.span_sample_counts().get(span, 0) if span is not None
             else profile.total_samples)
    title = f"span: {span}" if span is not None else "all spans"
    lines = [f"{title} — {total} samples"]
    if not rows:
        lines.append("  (no samples)")
        return "\n".join(lines)
    width = max(len(frame) for frame, _, _ in rows)
    lines.append(f"  {'frame'.ljust(width)}  {'self':>6}  {'incl':>6}  {'self%':>6}")
    for frame, self_count, incl_count in rows:
        share = self_count / total if total else 0.0
        lines.append(f"  {frame.ljust(width)}  {self_count:>6}  "
                     f"{incl_count:>6}  {share:>6.1%}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="profile_top", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("path",
                        help="flame.txt, or a --profile-out directory")
    parser.add_argument("--top", type=int, default=10,
                        help="frames per table (default %(default)s)")
    parser.add_argument("--span", default=None,
                        help="only this span (default: every span plus "
                             "the all-spans aggregate)")
    options = parser.parse_args(argv)

    path = Path(options.path)
    try:
        profile = load_collapsed(path)
    except OSError as error:
        print(f"profile_top: error: {error}", file=sys.stderr)
        return 1
    if not profile.samples:
        print("profile_top: no samples "
              f"(empty or unreadable flamegraph: {options.path})",
              file=sys.stderr)
        return 1
    if options.span is not None:
        if options.span not in profile.samples:
            known = ", ".join(sorted(profile.samples))
            print(f"profile_top: error: unknown span {options.span!r} "
                  f"(known: {known})", file=sys.stderr)
            return 1
        print(render_top(profile, span=options.span, top=options.top))
        return 0
    print(render_top(profile, span=None, top=options.top))
    for span in sorted(profile.samples):
        print()
        print(render_top(profile, span=span, top=options.top))
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Piped into head/a pager that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        raise SystemExit(0)
