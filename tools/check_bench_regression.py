"""The bench-regression gate: newest trajectory entry vs its history.

For each repo-root ``BENCH_*.json`` trajectory (written by
``tools/bench_record.py``), compares the newest entry's primary metric
against the *median* of earlier entries with the **same environment
fingerprint**, failing on a regression beyond the tolerance
(:data:`repro.obs.bench.DEFAULT_TOLERANCE`, 25%)::

    PYTHONPATH=src python tools/check_bench_regression.py
    PYTHONPATH=src python tools/check_bench_regression.py --tolerance 0.1 BENCH_fleet.json

An entry with no same-fingerprint history passes with a note (it seeds
the trajectory for that machine); an *empty or missing* trajectory
fails — the recorder must have run.  Entries also carry a
``rss_peak_bytes`` column, gated lower-is-better at its own (looser)
``--mem-tolerance``; entries recorded before the column existed are
skipped by that leg.  Per-file secondary throughput columns
(:data:`repro.obs.bench.SECONDARY_METRICS` — the decode trajectory's
``columnar_packets_per_second``) are gated higher-is-better at the
primary ``--tolerance``, with the same skip rule for pre-column
entries.  Exit 0 when every trajectory is clean, 1 otherwise, listing
each verdict either way.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.bench import (  # noqa: E402
    DEFAULT_MEMORY_TOLERANCE,
    DEFAULT_TOLERANCE,
    SECONDARY_METRICS,
    BenchTrajectory,
    check_regression,
)

#: Trajectories gated by default when no files are named on the CLI.
DEFAULT_FILES = ("BENCH_decode.json", "BENCH_fleet.json",
                 "BENCH_monitor.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_bench_regression", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*",
                        help="trajectory files to check "
                             f"(default: {' '.join(DEFAULT_FILES)})")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative regression (default %(default)s)")
    parser.add_argument("--mem-tolerance", type=float,
                        default=DEFAULT_MEMORY_TOLERANCE,
                        help="allowed relative rss_peak_bytes growth "
                             "(default %(default)s; entries without the "
                             "column are skipped)")
    options = parser.parse_args(argv)

    paths = [Path(name) if Path(name).is_absolute() else REPO_ROOT / name
             for name in (options.files or DEFAULT_FILES)]
    failures = 0
    for path in paths:
        label = path.name
        if not path.exists():
            print(f"FAIL {label}: missing (run tools/bench_record.py)")
            failures += 1
            continue
        try:
            trajectory = BenchTrajectory.load(path)
        except (ValueError, OSError) as error:
            print(f"FAIL {label}: {error}")
            failures += 1
            continue
        verdict = check_regression(
            trajectory, tolerance=options.tolerance,
            memory_tolerance=options.mem_tolerance,
            secondary_metrics=SECONDARY_METRICS.get(label, ()))
        status = "ok  " if verdict.ok else "FAIL"
        print(f"{status} {label}: {verdict.detail}")
        failures += 0 if verdict.ok else 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
