"""Record a benchmark run into a repo-root ``BENCH_*.json`` trajectory.

Runs one of the named smoke benchmarks (the same ones CI's perf gates
execute), derives throughput metrics from its numbers, stamps the entry
with the environment fingerprint from
:func:`repro.obs.bench.env_fingerprint`, and appends it to the matching
trajectory file::

    PYTHONPATH=src python tools/bench_record.py decode
    PYTHONPATH=src python tools/bench_record.py fleet --households 400
    PYTHONPATH=src python tools/bench_record.py all --notes "PR 6 seed"

Benchmarks:

* ``decode`` → ``BENCH_decode.json``, primary metric
  ``packets_per_second`` (cold columnar ingest + index scan), plus the
  ``columnar_packets_per_second`` secondary column (raw table ingest).
* ``fleet``  → ``BENCH_fleet.json``, primary metric
  ``households_per_second`` (cold sharded run throughput).
* ``monitor`` → ``BENCH_monitor.json``, primary metric
  ``packets_per_second`` (steady-state windowed absorb over the 10×
  replicated stream), plus the 1×/10× tracemalloc peaks whose ratio the
  bench itself gates at 1.10 (the bounded-memory guarantee).

``--note`` appends a fragment to ``--notes`` (repeatable), so CI can
stamp entries without hand-editing the JSON.

``--date`` overrides the stamped ISO date (defaulting to today at this
CLI boundary — the library layer never reads the wall clock).  Pair
with ``tools/check_bench_regression.py`` to gate on the trajectory.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.obs.bench import BenchEntry, BenchTrajectory, env_fingerprint  # noqa: E402

#: benchmark name -> (trajectory file, primary metric, runner)
BENCHMARKS = {}


def _register(name, filename, primary_metric):
    def wrap(runner):
        BENCHMARKS[name] = (filename, primary_metric, runner)
        return runner
    return wrap


@_register("decode", "BENCH_decode.json", "packets_per_second")
def _run_decode(options) -> dict:
    from bench_decode_throughput import run_smoke

    results = run_smoke(duration=options.duration)
    packets = results["packets"]
    metrics = {
        "packets": float(packets),
        "packets_per_second": packets / results["cold_seconds"],
        "cold_seconds": results["cold_seconds"],
        "cached_seconds": results["cached_seconds"],
        "parallel_seconds": results["parallel_seconds"],
        "columnar_seconds": results["columnar_seconds"],
        "materialize_seconds": results["materialize_seconds"],
    }
    if results["columnar_seconds"] > 0:
        metrics["columnar_packets_per_second"] = (
            packets / results["columnar_seconds"])
    if results["parallel_seconds"] > 0:
        metrics["parallel_packets_per_second"] = (
            packets / results["parallel_seconds"])
    return metrics


@_register("fleet", "BENCH_fleet.json", "households_per_second")
def _run_fleet(options) -> dict:
    from bench_fleet_scaling import run_smoke

    results = run_smoke(households=options.households,
                        workers=options.workers)
    return {
        "households": float(results["households"]),
        "shards": float(results["shards"]),
        "workers": float(results["workers"]),
        "households_per_second": results["households"] / results["cold_seconds"],
        "serial_seconds": results["serial_seconds"],
        "cold_seconds": results["cold_seconds"],
        "warm_seconds": results["warm_seconds"],
        "warm_cache_hits": float(results["warm_cache_hits"]),
    }


@_register("monitor", "BENCH_monitor.json", "packets_per_second")
def _run_monitor_bench(options) -> dict:
    from bench_monitor import run_smoke

    results = run_smoke(duration=options.monitor_duration)
    return {
        "packets": float(results["packets"]),
        "packets_per_second": results["packets_per_second"],
        "seconds": results["seconds"],
        "seconds_1x": results["seconds_1x"],
        "window_packets": float(results["window_packets"]),
        "chunk_records": float(results["chunk_records"]),
        "tracemalloc_peak_1x": float(results["tracemalloc_peak_1x"]),
        "tracemalloc_peak_10x": float(results["tracemalloc_peak_10x"]),
        "peak_ratio": results["peak_ratio"],
        "evicted_panes": float(results["evicted_panes"]),
    }


def record(name: str, options) -> BenchTrajectory:
    """Run benchmark ``name`` and append the entry to its trajectory.

    Every entry also carries resource columns — ``rss_peak_bytes`` and
    ``cpu_seconds`` from :func:`repro.obs.events.process_stats` — so the
    trajectory tracks memory alongside throughput;
    ``check_bench_regression`` gates the memory column at its own
    (looser) tolerance.
    """
    from repro.obs.events import process_stats

    filename, primary_metric, runner = BENCHMARKS[name]
    metrics = runner(options)
    stats = process_stats()
    metrics.setdefault("rss_peak_bytes", stats["rss_peak_bytes"])
    metrics.setdefault("cpu_seconds", stats["cpu_seconds"])
    trajectory = BenchTrajectory.load(
        REPO_ROOT / filename, name=name, primary_metric=primary_metric)
    # Pin identity fields on first write; later runs must agree.
    if not trajectory.entries:
        trajectory.name = name
        trajectory.primary_metric = primary_metric
    entry = BenchEntry(date=options.date, fingerprint=env_fingerprint(),
                       metrics=metrics, notes=options.notes)
    trajectory.append(entry)
    trajectory.save()
    return trajectory


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_record", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("benchmark", choices=sorted(BENCHMARKS) + ["all"],
                        help="which smoke benchmark to run and record")
    parser.add_argument("--date", default=datetime.date.today().isoformat(),
                        help="ISO date to stamp the entry with (default: today)")
    parser.add_argument("--notes", default="",
                        help="free-form note attached to the entry")
    parser.add_argument("--note", action="append", default=[],
                        metavar="TEXT",
                        help="additional note fragment; repeatable, joined "
                             "onto --notes with '; '")
    parser.add_argument("--duration", type=float, default=300.0,
                        help="decode bench: simulated capture seconds")
    parser.add_argument("--households", type=int, default=400,
                        help="fleet bench: population size")
    parser.add_argument("--workers", type=int, default=2,
                        help="fleet bench: worker processes")
    parser.add_argument("--monitor-duration", type=float, default=60.0,
                        help="monitor bench: simulated capture seconds "
                             "for the 1x stream (10x is replicated)")
    options = parser.parse_args(argv)
    if options.note:
        fragments = ([options.notes] if options.notes else []) + options.note
        options.notes = "; ".join(fragments)

    names = sorted(BENCHMARKS) if options.benchmark == "all" else [options.benchmark]
    for name in names:
        trajectory = record(name, options)
        latest = trajectory.latest
        print(json.dumps({
            "benchmark": name,
            "file": str(trajectory.path.relative_to(REPO_ROOT)),
            "entries": len(trajectory.entries),
            "date": latest.date,
            trajectory.primary_metric: latest.metrics[trajectory.primary_metric],
        }, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
