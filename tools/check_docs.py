"""Docs-consistency checker (the CI `docs-check` gate).

Three properties keep the documentation honest:

1. **CLI coverage** — every subcommand `build_parser()` registers, and
   every option string of every subcommand, appears literally in
   ``docs/cli.md``.  Adding a flag without documenting it fails CI.
2. **Link integrity** — every relative markdown link in ``README.md``
   and ``docs/*.md`` resolves to an existing file (anchors stripped).
3. **README index coverage** — every ``docs/*.md`` page is a resolved
   link target somewhere in ``README.md``, so a new docs page cannot
   land without an entry in the README docs index.

Run standalone (exit 1 on any issue, listing all of them)::

    PYTHONPATH=src python tools/check_docs.py

or via the thin pytest wrapper ``tests/test_docs_consistency.py``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
CLI_DOC = REPO_ROOT / "docs" / "cli.md"
README = REPO_ROOT / "README.md"
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown docs whose relative links must resolve.
LINKED_DOCS = ("README.md", "docs/*.md")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _subcommand_parsers(parser: argparse.ArgumentParser):
    """(name, subparser) pairs for every registered subcommand."""
    for action in parser._actions:  # noqa: SLF001 - argparse has no public walk
        if isinstance(action, argparse._SubParsersAction):  # noqa: SLF001
            # .choices maps every alias; dedupe by parser identity.
            seen = set()
            for name, sub in action.choices.items():
                if id(sub) not in seen:
                    seen.add(id(sub))
                    yield name, sub


def check_cli_docs() -> List[str]:
    """Every subcommand + flag in ``build_parser()`` is in docs/cli.md."""
    from repro.cli import build_parser

    issues: List[str] = []
    if not CLI_DOC.exists():
        return [f"{CLI_DOC.relative_to(REPO_ROOT)}: missing"]
    text = CLI_DOC.read_text(encoding="utf-8")
    doc = CLI_DOC.relative_to(REPO_ROOT)

    for name, sub in _subcommand_parsers(build_parser()):
        if f"repro {name}" not in text:
            issues.append(f"{doc}: subcommand 'repro {name}' is undocumented")
        for action in sub._actions:  # noqa: SLF001
            if isinstance(action, argparse._HelpAction):  # noqa: SLF001
                continue
            if action.option_strings:
                for option in action.option_strings:
                    if option not in text:
                        issues.append(
                            f"{doc}: 'repro {name}' flag {option} is undocumented")
            elif action.dest != "command" and f"`{action.dest}`" not in text:
                issues.append(
                    f"{doc}: 'repro {name}' positional '{action.dest}' "
                    "is undocumented")
    return issues


def check_links() -> List[str]:
    """Every relative markdown link resolves to an existing file."""
    issues: List[str] = []
    docs: List[Path] = []
    for pattern in LINKED_DOCS:
        docs.extend(sorted(REPO_ROOT.glob(pattern)))
    for doc in docs:
        text = doc.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                issues.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link '{target}'")
    return issues


def check_readme_doc_index() -> List[str]:
    """Every ``docs/*.md`` page is linked from ``README.md``."""
    if not README.exists():
        return ["README.md: missing"]
    text = README.read_text(encoding="utf-8")
    linked = set()
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if path:
            linked.add((README.parent / path).resolve())
    issues: List[str] = []
    for page in sorted(DOCS_DIR.glob("*.md")):
        if page.resolve() not in linked:
            issues.append(
                f"README.md: docs page '{page.relative_to(REPO_ROOT)}' "
                "is not linked from the README docs index")
    return issues


def run_checks() -> List[str]:
    return check_cli_docs() + check_links() + check_readme_doc_index()


def main() -> int:
    issues = run_checks()
    for issue in issues:
        print(issue, file=sys.stderr)
    if issues:
        print(f"docs-check: {len(issues)} issue(s)", file=sys.stderr)
        return 1
    print("docs-check: CLI coverage, link integrity, and README "
          "docs index OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
