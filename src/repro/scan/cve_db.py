"""The curated vulnerability database backing the Nessus analogue.

Contains every finding the paper names (§5.2 and the per-device
discussion), keyed the way the scanner reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CveEntry:
    """One database entry (CVE or Nessus plugin-style finding)."""

    identifier: str
    title: str
    severity: str  # low / medium / high / critical
    cvss: float
    description: str
    affected_software: Tuple[Tuple[str, str], ...] = ()  # (software, max_version)


CVE_DATABASE: Dict[str, CveEntry] = {
    entry.identifier: entry
    for entry in [
        CveEntry(
            "CVE-2016-2183",
            "SWEET32: birthday attacks on 64-bit block ciphers",
            "high",
            7.5,
            "TLS services using short encryption keys (64-122 bits) allow "
            "birthday attacks to recover cleartext in long sessions; found on "
            "port 8009 of Google cast devices (§5.2).",
            (("cast-tls", "1.56"),),
        ),
        CveEntry(
            "CVE-2020-11022",
            "jQuery < 3.5.0 XSS via htmlPrefilter",
            "medium",
            6.1,
            "Passing HTML from untrusted sources to jQuery DOM methods can "
            "execute untrusted code; the Microseven camera serves jQuery 1.2.",
            (("jQuery", "3.4.999"),),
        ),
        CveEntry(
            "CVE-2020-11023",
            "jQuery < 3.5.0 XSS via option elements",
            "medium",
            6.1,
            "HTML containing <option> elements from untrusted sources can "
            "execute untrusted code even after sanitization.",
            (("jQuery", "3.4.999"),),
        ),
        CveEntry(
            "CVE-2019-11766",
            "DHCP client version disclosure / outdated client",
            "medium",
            5.3,
            "Old or custom DHCP clients expose version strings and may carry "
            "unpatched parsing vulnerabilities (§5.1).",
            (("udhcp", "1.24.999"),),
        ),
        CveEntry(
            "NESSUS-11535",
            "SheerDNS < 1.0.1 Multiple Vulnerabilities",
            "high",
            8.1,
            "The DNS server identified as SheerDNS 1.0.0 has known security "
            "flaws including directory traversal (Apple HomePod Mini, §5.2).",
            (("SheerDNS", "1.0.0"),),
        ),
        CveEntry(
            "NESSUS-12217",
            "DNS Server Cache Snooping Remote Information Disclosure",
            "medium",
            5.0,
            "A DNS server answering cached-only queries lets local actors "
            "discover recently-resolved domains, exposing visited hosts "
            "(HomePod Mini and WeMo plug, §5.2).",
        ),
        CveEntry(
            "HTTP-BACKUP-EXPOSURE",
            "Web server exposes backup/configuration files",
            "high",
            7.5,
            "The Lefun camera's HTTP server allows accessing backup files "
            "containing server configuration details (§5.2).",
            (("GoAhead-Webs", "2.5"),),
        ),
        CveEntry(
            "ONVIF-UNAUTH-SNAPSHOT",
            "Unauthenticated ONVIF snapshot and account enumeration",
            "critical",
            9.1,
            "The Microseven camera allows unauthenticated users to retrieve "
            "snapshots via ONVIF requests, list all user accounts, and locate "
            "the recording directory (§5.2).",
        ),
        CveEntry(
            "TELNET-OPEN",
            "Telnet service enabled on the local network",
            "high",
            8.8,
            "Telnet exposes a plaintext (often default-credential) shell to "
            "any actor on the LAN.",
        ),
        CveEntry(
            "UPNP-1.0-DEPRECATED",
            "Deprecated UPnP 1.0 stack",
            "medium",
            5.4,
            "Fifteen years after UPnP 1.1, devices still running UPnP 1.0 are "
            "exploitable via known SSDP/SOAP issues (§5.1: 9 devices).",
        ),
        CveEntry(
            "SSDP-IGD-EXPOSURE",
            "IGD (Internet Gateway Device) SSDP requests",
            "medium",
            5.3,
            "IGD discovery/port-forwarding requests can be abused by malware "
            "to open the home network (Roku TV, §5.1).",
        ),
        CveEntry(
            "TPLINK-SHP-NOAUTH",
            "TPLINK-SHP unauthenticated control and geolocation disclosure",
            "high",
            8.3,
            "TPLINK-SHP answers sysinfo queries with plaintext latitude/"
            "longitude and accepts unauthenticated control commands (§5.1).",
        ),
        CveEntry(
            "TLS-LONG-LIVED-SELF-SIGNED",
            "Self-signed certificate with multi-decade validity",
            "low",
            3.7,
            "Certificates valid for 20-28 years cannot be meaningfully "
            "rotated or revoked (D-Link, SmartThings, Philips Hue, §5.2).",
        ),
        CveEntry(
            "DNS-PRIVATE-DISCLOSURE",
            "DNS service reveals internal hostname and private IP",
            "low",
            3.1,
            "Querying the device hostname reveals the testbed's remote host "
            "name and the private IP of the DNS server (§5.2).",
        ),
    ]
}


def lookup(identifier: str) -> Optional[CveEntry]:
    """Fetch a database entry by CVE id / plugin name."""
    return CVE_DATABASE.get(identifier)


def entries_for_software(software: str, version: str) -> List[CveEntry]:
    """All entries affecting a software/version pair (banner matching)."""

    def version_tuple(text: str) -> Tuple[int, ...]:
        parts = []
        for token in text.split("."):
            digits = "".join(ch for ch in token if ch.isdigit())
            parts.append(int(digits) if digits else 0)
        return tuple(parts)

    matches = []
    for entry in CVE_DATABASE.values():
        for affected_software, max_version in entry.affected_software:
            if affected_software.lower() == software.lower():
                if version_tuple(version) <= version_tuple(max_version):
                    matches.append(entry)
    return matches
