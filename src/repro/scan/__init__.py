"""Active scanning: port scans, service inference, vulnerability scans.

Reproduces §3.1/§4.2: nmap TCP SYN scans (1-65535), UDP scans of
well-known ports (1-1024), IP-protocol scans, nmap-style service-name
inference (with its documented mistakes on non-standard ports, §3.5),
manual label correction, and a Nessus-like vulnerability scanner backed
by a curated finding database.
"""

from repro.scan.portscan import PortScanner, ScanReport, HostScanResult, default_tcp_ports
from repro.scan.nmap_services import nmap_service_name, correct_service_label
from repro.scan.vulnscan import VulnerabilityScanner, Finding
from repro.scan.cve_db import CVE_DATABASE, CveEntry

__all__ = [
    "PortScanner",
    "ScanReport",
    "HostScanResult",
    "default_tcp_ports",
    "nmap_service_name",
    "correct_service_label",
    "VulnerabilityScanner",
    "Finding",
    "CVE_DATABASE",
    "CveEntry",
]
