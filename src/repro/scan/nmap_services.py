"""nmap-style service-name inference and its manual correction.

nmap "primarily relies on port numbers and packet responses to infer
the protocol behind an open service.  We find these inferences to be
incorrect in many cases" (§3.5).  This table reproduces the guesses a
stock nmap-services file makes for the ports our devices open — which
is precisely where Figure 2's odd long tail comes from: Tuya's UDP
6666/6667 shows up as IRC, port 4070 as "ezmeeting-2" (EZMEETING-2),
9090 as "cslistener" (CSLISTENER), 10001 as "scp-config", etc.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: (transport, port) -> the name nmap's services file would print.
NMAP_SERVICES = {
    ("tcp", 23): "telnet",
    ("tcp", 53): "domain",
    ("tcp", 80): "http",
    ("tcp", 443): "https",
    ("tcp", 554): "rtsp",
    ("tcp", 1080): "socks5",
    ("tcp", 1900): "upnp",
    ("tcp", 3000): "ppp",
    ("tcp", 3001): "nessus",
    ("tcp", 4070): "ezmeeting-2",  # Amazon's device-control port (§4.2)
    ("tcp", 5577): "unknown",
    ("tcp", 6668): "irc",  # Tuya local control lands in the IRC block
    ("tcp", 7000): "afs3-fileserver",
    ("tcp", 8000): "http-alt",
    ("tcp", 8001): "vcom-tunnel",
    ("tcp", 8002): "teradataordbms",
    ("tcp", 8008): "http",
    ("tcp", 8009): "ajp13",  # Chromecast TLS guessed as Apache JServ (AJP)
    ("tcp", 8060): "aero",
    ("tcp", 8080): "http-proxy",
    ("tcp", 8443): "https-alt",
    ("tcp", 8554): "rtsp-alt",
    ("tcp", 8888): "sun-answerbook",
    ("tcp", 9080): "glrpc",
    ("tcp", 9090): "cslistener",
    ("tcp", 9197): "unknown",
    ("tcp", 9543): "unknown",
    ("tcp", 9955): "unknown",
    ("tcp", 9999): "abyss",  # TPLINK-SHP guessed as the Abyss web server
    ("tcp", 10001): "scp-config",
    ("tcp", 34567): "dhanalakshmi",
    ("tcp", 39500): "unknown",
    ("tcp", 49152): "unknown",
    ("tcp", 49153): "unknown",
    ("tcp", 55442): "unknown",
    ("tcp", 55443): "unknown",
    ("tcp", 6113): "dayliteserver",
    ("udp", 53): "domain",
    ("udp", 67): "dhcps",
    ("udp", 68): "dhcpc",
    ("udp", 123): "ntp",
    ("udp", 137): "netbios-ns",
    ("udp", 319): "ptp-event",
    ("udp", 320): "ptp-general",
    ("udp", 1900): "upnp",
    ("udp", 5353): "zeroconf",
    ("udp", 5683): "coap",
    ("udp", 5684): "coaps",
    ("udp", 6666): "irc",  # TuyaLP's plaintext port sits in IRC space
    ("udp", 6667): "irc",
    ("udp", 9999): "distinct",
    ("udp", 10000): "ndmp",
    ("udp", 11095): "weave",
    ("udp", 37810): "unknown",
    ("udp", 38899): "unknown",
    ("udp", 56700): "unknown",
}

#: Corrections produced by the manual validation of §3.5:
#: nmap guess -> (true service, reason).
MANUAL_CORRECTIONS = {
    ("udp", 6666): ("tuyalp", "TuyaLP discovery broadcast port, not IRC"),
    ("udp", 6667): ("tuyalp", "TuyaLP (encrypted) discovery port, not IRC"),
    ("tcp", 6668): ("tuya-ctl", "Tuya local control channel, not IRC"),
    ("tcp", 9999): ("tplink-shp", "TPLINK-SHP control, not the Abyss web server"),
    ("udp", 9999): ("tplink-shp", "TPLINK-SHP discovery"),
    ("tcp", 8009): ("cast-tls", "Chromecast TLS, not Apache JServ"),
    ("tcp", 4070): ("echo-https", "Amazon Echo device control over HTTPS"),
    ("tcp", 55442): ("echo-http", "Amazon Echo audio cache (HTTP)"),
    ("tcp", 55443): ("echo-http", "Amazon Echo audio cache (HTTP)"),
    ("tcp", 7000): ("airplay", "AirPlay/AirTunes, not AFS"),
    ("tcp", 10001): ("cast-unknown", "Chromecast-internal service, not scp-config"),
    ("udp", 10000): ("wyze-p2p", "TUTK P2P keepalive, not NDMP"),
}


def nmap_service_name(transport: str, port: int) -> str:
    """The service name nmap would report for an open port."""
    return NMAP_SERVICES.get((transport, port), "unknown")


def correct_service_label(transport: str, port: int, nmap_name: str) -> Tuple[str, Optional[str]]:
    """Apply the §3.5 manual corrections; returns (label, reason|None)."""
    correction = MANUAL_CORRECTIONS.get((transport, port))
    if correction is not None:
        return correction
    return nmap_name, None
