"""The Nessus analogue: banner collection + finding generation.

"Nessus collects service banners to identify the web server and the
exact version deployed" (§5.2).  The scanner grabs banners from each
device's services, matches them against the CVE database, runs the
generic checks the paper describes (telnet exposure, deprecated UPnP,
weak TLS keys, multi-decade self-signed certificates, DNS cache
snooping), and emits the device-declared findings (ground truth planted
by the profile, as a real vulnerable firmware would present).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.devices.behaviors import DeviceNode
from repro.obs import get_obs
from repro.scan.cve_db import CVE_DATABASE, CveEntry, entries_for_software, lookup


@dataclass
class Finding:
    """One vulnerability finding on one device."""

    device: str
    identifier: str
    title: str
    severity: str
    port: int
    transport: str
    evidence: str = ""

    @property
    def cve_entry(self) -> Optional[CveEntry]:
        return lookup(self.identifier)


_SEVERITY_ORDER = {"critical": 0, "high": 1, "medium": 2, "low": 3}


@dataclass
class VulnerabilityScanner:
    """Scan DeviceNodes for known vulnerabilities and misconfigurations.

    One misbehaving device profile must not abort a testbed-wide scan:
    :meth:`scan` isolates per-device failures into :attr:`errors` and
    carries on with the remaining devices.
    """

    include_low: bool = True
    #: Per-device failures isolated by the last :meth:`scan` call.
    errors: Dict[str, str] = field(default_factory=dict)

    def scan_device(self, node: DeviceNode) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self._declared_findings(node))
        findings.extend(self._banner_findings(node))
        findings.extend(self._generic_checks(node))
        # De-duplicate (declared + banner-derived can overlap).
        unique = {}
        for finding in findings:
            key = (finding.identifier, finding.port, finding.transport)
            unique.setdefault(key, finding)
        result = list(unique.values())
        if not self.include_low:
            result = [finding for finding in result if finding.severity != "low"]
        result.sort(key=lambda finding: (_SEVERITY_ORDER.get(finding.severity, 9), finding.identifier))
        return result

    def scan(self, nodes: List[DeviceNode]) -> List[Finding]:
        import time as _time

        obs = get_obs()
        started = _time.perf_counter() if obs.enabled else 0.0
        findings: List[Finding] = []
        self.errors = {}
        for node in nodes:
            try:
                findings.extend(self.scan_device(node))
            except Exception as exc:  # noqa: BLE001 - isolate per-device failures
                self.errors[node.name] = f"{type(exc).__name__}: {exc}"
                if obs.enabled:
                    obs.logger("vulnscan").warning(
                        "device_scan_failed", device=node.name,
                        error=self.errors[node.name])
                    obs.metrics.scoped("vulnscan").counter(
                        "device_failures_total",
                        "devices whose vulnerability scan raised and was isolated",
                    ).inc()
        if obs.enabled:
            metrics = obs.metrics.scoped("vulnscan")
            counter = metrics.counter(
                "findings_total", "vulnerability findings, per severity")
            for finding in findings:
                counter.inc(severity=finding.severity)
            metrics.counter(
                "devices_scanned_total", "devices vulnerability-scanned",
            ).inc(len(nodes))
            metrics.histogram(
                "scan_seconds", "wall-clock duration of vulnerability scans",
            ).observe(_time.perf_counter() - started)
        return findings

    # -- passes --------------------------------------------------------------------

    @staticmethod
    def _declared_findings(node: DeviceNode) -> List[Finding]:
        """Findings the firmware itself exhibits (profile ground truth)."""
        return [
            Finding(
                device=node.name,
                identifier=vulnerability.cve,
                title=(lookup(vulnerability.cve).title if lookup(vulnerability.cve) else vulnerability.summary),
                severity=vulnerability.severity,
                port=vulnerability.service_port,
                transport=vulnerability.service_transport,
                evidence=vulnerability.summary,
            )
            for vulnerability in node.profile.vulnerabilities
        ]

    @staticmethod
    def _banner_findings(node: DeviceNode) -> List[Finding]:
        """Match service banners/versions against the CVE database."""
        findings = []
        for service in node.services:
            if not service.software:
                continue
            for entry in entries_for_software(service.software, service.version):
                findings.append(
                    Finding(
                        device=node.name,
                        identifier=entry.identifier,
                        title=entry.title,
                        severity=entry.severity,
                        port=service.port,
                        transport=service.transport,
                        evidence=f"banner: {service.software}/{service.version}",
                    )
                )
        return findings

    @staticmethod
    def _generic_checks(node: DeviceNode) -> List[Finding]:
        findings = []
        profile = node.profile
        for service in node.services:
            if service.protocol == "telnet":
                findings.append(
                    Finding(node.name, "TELNET-OPEN", CVE_DATABASE["TELNET-OPEN"].title,
                            "high", service.port, service.transport,
                            evidence=f"telnet banner: {service.banner!r}")
                )
            if service.protocol == "dns":
                findings.append(
                    Finding(node.name, "NESSUS-12217", CVE_DATABASE["NESSUS-12217"].title,
                            "medium", service.port, service.transport,
                            evidence="cache-snooping probe answered")
                )
                findings.append(
                    Finding(node.name, "DNS-PRIVATE-DISCLOSURE",
                            CVE_DATABASE["DNS-PRIVATE-DISCLOSURE"].title,
                            "low", service.port, service.transport,
                            evidence=f"hostname query revealed {node.ip}")
                )
        tls = profile.tls
        if tls is not None:
            if tls.key_bits < 128:
                findings.append(
                    Finding(node.name, "CVE-2016-2183", CVE_DATABASE["CVE-2016-2183"].title,
                            "high", tls.port, "tcp",
                            evidence=f"TLS key size {tls.key_bits} bits")
                )
            if tls.self_signed and tls.cert_validity_days > 10 * 365:
                findings.append(
                    Finding(node.name, "TLS-LONG-LIVED-SELF-SIGNED",
                            CVE_DATABASE["TLS-LONG-LIVED-SELF-SIGNED"].title,
                            "low", tls.port, "tcp",
                            evidence=f"validity {tls.cert_validity_days / 365.25:.0f} years")
                )
        if profile.ssdp is not None and profile.ssdp.upnp_version == "UPnP/1.0":
            findings.append(
                Finding(node.name, "UPNP-1.0-DEPRECATED",
                        CVE_DATABASE["UPNP-1.0-DEPRECATED"].title,
                        "medium", 1900, "udp",
                        evidence=f"SERVER: {profile.ssdp.server_header}")
            )
        if profile.ssdp is not None and profile.ssdp.search_igd:
            findings.append(
                Finding(node.name, "SSDP-IGD-EXPOSURE",
                        CVE_DATABASE["SSDP-IGD-EXPOSURE"].title,
                        "medium", 1900, "udp", evidence="M-SEARCH for IGD observed")
            )
        if profile.tplink_role == "server":
            findings.append(
                Finding(node.name, "TPLINK-SHP-NOAUTH",
                        CVE_DATABASE["TPLINK-SHP-NOAUTH"].title,
                        "high", 9999, "tcp", evidence="sysinfo reply with lat/lon")
            )
        vendor_class = profile.dhcp.vendor_class
        if vendor_class.startswith("udhcp") or "DHCP" in vendor_class:
            findings.append(
                Finding(node.name, "CVE-2019-11766", CVE_DATABASE["CVE-2019-11766"].title,
                        "medium", 68, "udp", evidence=f"DHCP client: {vendor_class}")
            )
        return findings
