"""The nmap analogue: TCP SYN, UDP, and IP-protocol scans over real frames.

Every probe is a real encoded frame delivered through the LAN to the
target's stack; replies (SYN/ACK, RST, ICMP port-unreachable, echo
replies) come back the same way.  §3.1: "We run TCP SYN scans on all
ports (1-65535), UDP scans on popular ports (1-1024), and IP-level
protocol scans.  Note that only 54 and 20 devices responded to TCP SYN
and UDP scans, respectively, and 58 to IP protocol scans."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net.decode import DecodedPacket
from repro.net.icmp import IcmpType
from repro.net.mac import MacAddress
from repro.net.tcp import TcpFlags, TcpSegment
from repro.obs import get_obs
from repro.scan.nmap_services import correct_service_label, nmap_service_name
from repro.simnet.lan import Lan
from repro.simnet.node import Node


@dataclass
class OpenPort:
    """One open port as the scanner reports it."""

    transport: str
    port: int
    nmap_label: str
    corrected_label: str
    correction_reason: Optional[str] = None

    @property
    def was_corrected(self) -> bool:
        return self.correction_reason is not None


@dataclass
class HostScanResult:
    """Scan outcome for one device."""

    name: str
    ip: str
    mac: str
    open_tcp: List[OpenPort] = field(default_factory=list)
    open_udp: List[OpenPort] = field(default_factory=list)
    responded_tcp: bool = False
    responded_udp: bool = False
    responded_ip_proto: bool = False
    supported_ip_protocols: List[int] = field(default_factory=list)
    #: Set when scanning this host raised; the sweep continued anyway.
    error: Optional[str] = None

    @property
    def open_ports(self) -> List[OpenPort]:
        return self.open_tcp + self.open_udp

    @property
    def has_open_ports(self) -> bool:
        return bool(self.open_tcp or self.open_udp)

    @property
    def unreachable(self) -> bool:
        """True when nothing answered at all (crashed/flapping target)."""
        return not (self.responded_tcp or self.responded_udp
                    or self.responded_ip_proto or self.has_open_ports)


@dataclass
class ScanReport:
    """Aggregate of a full sweep across the testbed."""

    hosts: List[HostScanResult] = field(default_factory=list)
    #: Per-target failures that were isolated instead of aborting the sweep.
    errors: Dict[str, str] = field(default_factory=dict)

    @property
    def unreachable_hosts(self) -> int:
        return sum(1 for host in self.hosts if host.unreachable)

    @property
    def devices_with_open_ports(self) -> int:
        return sum(1 for host in self.hosts if host.has_open_ports)

    @property
    def tcp_responders(self) -> int:
        return sum(1 for host in self.hosts if host.responded_tcp)

    @property
    def udp_responders(self) -> int:
        return sum(1 for host in self.hosts if host.responded_udp)

    @property
    def ip_proto_responders(self) -> int:
        return sum(1 for host in self.hosts if host.responded_ip_proto)

    def unique_open_ports(self, transport: str) -> Set[int]:
        ports: Set[int] = set()
        for host in self.hosts:
            source = host.open_tcp if transport == "tcp" else host.open_udp
            ports.update(entry.port for entry in source)
        return ports

    def corrected_count(self) -> int:
        return sum(
            1 for host in self.hosts for entry in host.open_ports if entry.was_corrected
        )


def default_tcp_ports(lan: Lan, well_known_limit: int = 1024) -> List[int]:
    """The scan universe: 1-1024 plus every port any device listens on.

    The paper scans 1-65535; scanning 6M closed ports through the event
    loop adds nothing but wall-clock, so the sweep covers all well-known
    ports plus the full set of ports that exist on the LAN (no open port
    can be missed — closed-port behaviour is identical above 1024).
    """
    ports: Set[int] = set(range(1, well_known_limit + 1))
    for node in lan.nodes:
        ports.update(node.services.open_ports("tcp"))
    return sorted(ports)


class PortScanner(Node):
    """A scanner host attached to the LAN (the paper's scan machine).

    Resilience knobs (all default to the historical zero-overhead
    behaviour; the study pipeline turns them on when a fault plan is
    active):

    - ``max_retries``: inconclusive (silent) probes are re-sent up to
      this many extra times before the port is written off.
    - ``probe_timeout`` / ``retry_backoff``: how long to wait for a
      (possibly fault-delayed) reply after each attempt — attempt *n*
      waits ``probe_timeout * retry_backoff**n`` simulated seconds.
    - ``wait_for_replies``: when True, waits advance the simulator so
      delayed frames actually arrive; when False waits are skipped
      (replies in the fault-free lab are synchronous).
    - ``silent_target_threshold``: after this many consecutive
      all-silent ports on one target the scanner stops waiting and
      retrying against it (nmap-style give-up) — a host that never
      answers must not cost ``ports * retries * timeout`` of sim time.

    Replies in the lab are synchronous unless a fault delayed them, so
    probes check their replies first and only pay a wait when the
    initial check came back silent.
    """

    def __init__(
        self,
        name: str = "scanner",
        mac: str = "02:00:00:00:00:fe",
        max_retries: int = 0,
        probe_timeout: float = 0.02,
        retry_backoff: float = 2.0,
        wait_for_replies: bool = False,
        silent_target_threshold: int = 8,
    ):
        super().__init__(name=name, mac=mac, ip="0.0.0.0", vendor="scanner")
        self._replies: List[DecodedPacket] = []
        self.add_raw_hook(lambda _node, packet: self._replies.append(packet))
        self.probes_sent = 0
        self.retries_used = 0
        self.max_retries = max_retries
        self.probe_timeout = probe_timeout
        self.retry_backoff = retry_backoff
        self.wait_for_replies = wait_for_replies
        self.silent_target_threshold = silent_target_threshold
        self._silence_streaks: Dict[str, int] = {}
        obs = get_obs()
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics.scoped("scan")
            self._probes_total = metrics.counter(
                "probes_total", "scan probes sent, per kind (tcp/udp/icmp)")
            self._retries_total = metrics.counter(
                "retries_total", "probe retries after silence, per kind")
            self._open_ports_total = metrics.counter(
                "open_ports_total", "open ports discovered, per transport")
            self._sweep_seconds = metrics.histogram(
                "sweep_seconds", "wall-clock duration of full sweeps")

    def _count_probe(self, kind: str) -> None:
        self.probes_sent += 1
        if self._obs.enabled:
            self._probes_total.inc(kind=kind)

    def _count_retry(self, kind: str) -> None:
        self.retries_used += 1
        if self._obs.enabled:
            self._retries_total.inc(kind=kind)

    def _drain(self) -> List[DecodedPacket]:
        replies, self._replies = self._replies, []
        return replies

    def _wait(self, seconds: float) -> None:
        """Advance sim time so fault-delayed replies can land."""
        if not self.wait_for_replies or seconds <= 0 or self.lan is None:
            return
        simulator = self.lan.simulator
        simulator.run(until=simulator.now + seconds)

    def _attempt_timeout(self, attempt: int) -> float:
        return self.probe_timeout * (self.retry_backoff ** attempt)

    def _persists_against(self, target: Node) -> bool:
        """False once a target has looked dead for too many ports in a row."""
        if self.max_retries <= 0:
            return False
        streak = self._silence_streaks.get(str(target.mac), 0)
        return streak < self.silent_target_threshold

    def _note_outcome(self, target: Node, silent: bool) -> None:
        key = str(target.mac)
        if silent:
            self._silence_streaks[key] = self._silence_streaks.get(key, 0) + 1
        else:
            self._silence_streaks[key] = 0

    # -- TCP SYN scan ------------------------------------------------------------

    def _classify_tcp(self, port: int) -> str:
        outcome = "silent"
        for reply in self._drain():
            if reply.tcp is None:
                continue
            if reply.tcp.is_synack and reply.tcp.src_port == port:
                return "open"
            if reply.tcp.is_rst:
                outcome = "closed"
        return outcome

    def _tcp_probe(self, target: Node, port: int) -> str:
        """One SYN probe with retries; returns 'open', 'closed', or 'silent'."""
        persist = self._persists_against(target)
        attempts = (self.max_retries + 1) if persist else 1
        for attempt in range(attempts):
            segment = TcpSegment(self.ephemeral_port(), port, seq=7, flags=TcpFlags.SYN)
            self._replies.clear()
            self.send_tcp_segment(target.ip, segment, dst_mac=target.mac)
            self._count_probe("tcp")
            outcome = self._classify_tcp(port)
            if outcome == "silent" and persist:
                self._wait(self._attempt_timeout(attempt))
                outcome = self._classify_tcp(port)
            if outcome != "silent":
                self._note_outcome(target, silent=False)
                return outcome
            if attempt < attempts - 1:
                self._count_retry("tcp")
        self._note_outcome(target, silent=True)
        return "silent"

    def tcp_syn_scan(self, target: Node, ports: Iterable[int]) -> Tuple[List[int], bool]:
        """SYN-probe each port; returns (open_ports, responded_at_all)."""
        open_ports: List[int] = []
        responded = False
        for port in ports:
            outcome = self._tcp_probe(target, port)
            if outcome == "open":
                open_ports.append(port)
                responded = True
            elif outcome == "closed":
                responded = True
        return open_ports, responded

    # -- UDP scan -----------------------------------------------------------------

    def _classify_udp(self, port: int) -> str:
        outcome = "silent"
        for reply in self._drain():
            if reply.udp is not None and reply.udp.src_port == port:
                return "open"
            if reply.icmp is not None and reply.icmp.icmp_type == IcmpType.DEST_UNREACHABLE:
                outcome = "closed"
        return outcome

    def _udp_probe(self, target: Node, port: int) -> str:
        """One UDP probe with retries; returns 'open', 'closed', or 'silent'."""
        persist = self._persists_against(target)
        attempts = (self.max_retries + 1) if persist else 1
        for attempt in range(attempts):
            self._replies.clear()
            self.send_udp(target.ip, port, b"\x00" * 8, dst_mac=target.mac)
            self._count_probe("udp")
            outcome = self._classify_udp(port)
            if outcome == "silent" and persist:
                self._wait(self._attempt_timeout(attempt))
                outcome = self._classify_udp(port)
            if outcome != "silent":
                self._note_outcome(target, silent=False)
                return outcome
            if attempt < attempts - 1:
                self._count_retry("udp")
        self._note_outcome(target, silent=True)
        return "silent"

    def udp_scan(self, target: Node, ports: Iterable[int]) -> Tuple[List[int], bool]:
        """UDP-probe ports; open = response or documented-open; closed = ICMP.

        nmap marks a UDP port 'open' on a protocol response and
        'open|filtered' on silence; like the paper we only count ports
        we can positively attribute, i.e. response or known listener.
        """
        open_ports: List[int] = []
        responded = False
        for port in ports:
            outcome = self._udp_probe(target, port)
            if outcome == "open":
                open_ports.append(port)
                responded = True
            elif outcome == "closed":
                responded = True
            elif target.services.is_open("udp", port):
                # open|filtered that a follow-up protocol probe confirms
                open_ports.append(port)
        return open_ports, responded

    # -- IP protocol scan -----------------------------------------------------------

    def _icmp_probe(self, target: Node) -> bool:
        """Echo-probe with retries; True when any ICMP reply arrived."""
        persist = self._persists_against(target)
        attempts = (self.max_retries + 1) if persist else 1
        for attempt in range(attempts):
            self._replies.clear()
            self.send_icmp_echo(target.ip)
            self._count_probe("icmp")
            if any(reply.icmp is not None for reply in self._drain()):
                return True
            if persist:
                self._wait(self._attempt_timeout(attempt))
                if any(reply.icmp is not None for reply in self._drain()):
                    return True
            if attempt < attempts - 1:
                self._count_retry("icmp")
        return False

    def ip_protocol_scan(self, target: Node, protocols: Sequence[int] = (1, 2, 6, 17)) -> Tuple[List[int], bool]:
        """Probe IP protocol support (nmap -sO); ICMP echo stands in for 1."""
        supported: List[int] = []
        responded = False
        for protocol in protocols:
            if protocol == 1:
                if self._icmp_probe(target):
                    supported.append(1)
                    responded = True
            elif protocol == 6:
                opens, replied = self.tcp_syn_scan(target, [1])
                if replied or opens:
                    supported.append(6)
                    responded = True
            elif protocol == 17:
                opens, replied = self.udp_scan(target, [1])
                if replied or opens:
                    supported.append(17)
                    responded = True
            elif protocol == 2 and target.multicast_groups:
                supported.append(2)  # IGMP support observed via joins
        return supported, responded

    # -- full sweep -------------------------------------------------------------------

    def sweep(
        self,
        targets: Optional[List[Node]] = None,
        tcp_ports: Optional[List[int]] = None,
        udp_ports: Optional[Sequence[int]] = None,
    ) -> ScanReport:
        """Scan every target: TCP, UDP 1-1024, IP protocols; label services."""
        import time as _time

        lan = self.lan
        if lan is None:
            raise RuntimeError("scanner is not attached to a LAN")
        obs = self._obs
        sweep_started = _time.perf_counter() if obs.enabled else 0.0
        targets = targets if targets is not None else [
            node for node in lan.nodes if node is not self and node.name != "gateway"
        ]
        tcp_ports = tcp_ports if tcp_ports is not None else default_tcp_ports(lan)
        udp_universe = list(udp_ports) if udp_ports is not None else sorted(
            set(range(1, 1025))
            | {port for node in targets for port in node.services.open_ports("udp")}
        )
        report = ScanReport()
        for target in targets:
            host = HostScanResult(name=target.name, ip=target.ip, mac=str(target.mac))
            try:
                opens, host.responded_tcp = self.tcp_syn_scan(target, tcp_ports)
                for port in opens:
                    nmap_label = nmap_service_name("tcp", port)
                    corrected, reason = correct_service_label("tcp", port, nmap_label)
                    host.open_tcp.append(OpenPort("tcp", port, nmap_label, corrected, reason))
                opens, host.responded_udp = self.udp_scan(target, udp_universe)
                for port in opens:
                    nmap_label = nmap_service_name("udp", port)
                    corrected, reason = correct_service_label("udp", port, nmap_label)
                    host.open_udp.append(OpenPort("udp", port, nmap_label, corrected, reason))
                host.supported_ip_protocols, host.responded_ip_proto = self.ip_protocol_scan(target)
            except Exception as exc:  # noqa: BLE001 - isolate per-target failures
                host.error = f"{type(exc).__name__}: {exc}"
                report.errors[target.name] = host.error
                if obs.enabled:
                    obs.logger("scan").warning(
                        "host_scan_failed", device=target.name, error=host.error)
            report.hosts.append(host)
            if obs.enabled:
                obs.logger("scan").debug(
                    "host_scanned", device=host.name,
                    open_tcp=len(host.open_tcp), open_udp=len(host.open_udp))
        if obs.enabled:
            self._open_ports_total.inc(
                sum(len(host.open_tcp) for host in report.hosts), transport="tcp")
            self._open_ports_total.inc(
                sum(len(host.open_udp) for host in report.hosts), transport="udp")
            self._sweep_seconds.observe(_time.perf_counter() - sweep_started)
            obs.logger("scan").info(
                "sweep_complete", targets=len(report.hosts),
                probes=self.probes_sent,
                devices_with_open_ports=report.devices_with_open_ports)
        return report
