"""Deterministic byte mutators: the damage primitives of the fault layer.

Every mutator takes the caller's ``random.Random`` instance and draws
from it in a fixed order, so a given RNG state always produces the same
damage — the property the zero-fault-equivalence and fault-schedule
reproducibility tests pin.  The same primitives double as the
mutation-fuzz corpus generator for the parser robustness tests
(``tests/faults/test_mutation_fuzz.py``).
"""

from __future__ import annotations

import random
import struct
from typing import Optional


def truncate_bytes(rng: random.Random, data: bytes, min_keep: int = 1) -> bytes:
    """Cut the frame short, keeping at least ``min_keep`` leading bytes.

    Truncation points cover the whole frame — including inside the
    Ethernet/IP headers — mirroring snaplen-clipped or radio-damaged
    captures.
    """
    if len(data) <= min_keep:
        return data
    keep = rng.randrange(min_keep, len(data))
    return data[:keep]


def corrupt_bits(rng: random.Random, data: bytes, max_bits: int = 8) -> bytes:
    """Flip between 1 and ``max_bits`` randomly chosen bits."""
    if not data:
        return data
    out = bytearray(data)
    for _ in range(rng.randint(1, max(1, max_bits))):
        position = rng.randrange(len(out))
        out[position] ^= 1 << rng.randrange(8)
    return bytes(out)


def _udp_payload_span(frame_bytes: bytes) -> Optional[tuple]:
    """Locate the UDP payload inside an IPv4/UDP Ethernet frame.

    Returns ``(start, end)`` byte offsets, or ``None`` when the frame is
    not IPv4/UDP or is too short to carry a payload.  Works on raw bytes
    so the mutator can damage a frame without a decode round-trip.
    """
    if len(frame_bytes) < 14 + 20 + 8:
        return None
    (ethertype,) = struct.unpack_from("!H", frame_bytes, 12)
    if ethertype != 0x0800:
        return None
    ihl = (frame_bytes[14] & 0x0F) * 4
    if frame_bytes[14] >> 4 != 4 or ihl < 20:
        return None
    if frame_bytes[14 + 9] != 17:  # IPv4 protocol field: UDP
        return None
    start = 14 + ihl + 8
    if start >= len(frame_bytes):
        return None
    return start, len(frame_bytes)


def udp_ports_of(frame_bytes: bytes) -> Optional[tuple]:
    """The (src_port, dst_port) of an IPv4/UDP frame, or ``None``."""
    span = _udp_payload_span(frame_bytes)
    if span is None:
        return None
    header = span[0] - 8
    return struct.unpack_from("!HH", frame_bytes, header)


def mutate_discovery_payload(rng: random.Random, payload: bytes) -> bytes:
    """Damage a discovery (mDNS/SSDP/TuyaLP) application payload.

    Picks one strategy per call: truncate the payload, flip bits in it,
    overwrite a slice with random bytes, or scramble the leading header
    bytes (where every discovery protocol keeps its magic/flags).
    """
    if not payload:
        return payload
    strategy = rng.randrange(4)
    if strategy == 0:
        return truncate_bytes(rng, payload)
    if strategy == 1:
        return corrupt_bits(rng, payload, max_bits=16)
    if strategy == 2:
        start = rng.randrange(len(payload))
        length = rng.randint(1, min(16, len(payload) - start))
        blob = bytes(rng.randrange(256) for _ in range(length))
        return payload[:start] + blob + payload[start + length:]
    head = min(8, len(payload))
    scrambled = bytes(rng.randrange(256) for _ in range(head))
    return scrambled + payload[head:]


def mutate_udp_payload(rng: random.Random, frame_bytes: bytes) -> bytes:
    """Apply :func:`mutate_discovery_payload` in place inside a raw frame.

    Returns the frame unchanged when it is not IPv4/UDP with a payload.
    """
    span = _udp_payload_span(frame_bytes)
    if span is None:
        return frame_bytes
    start, end = span
    mutated = mutate_discovery_payload(rng, frame_bytes[start:end])
    return frame_bytes[:start] + mutated
