"""``repro.faults`` — seed-deterministic fault injection and chaos plans.

The simulated LAN is a perfect network by default; this package makes
it misbehave *reproducibly*.  A declarative :class:`FaultPlan`
(JSON-loadable, validated) schedules per-link loss/duplication/
reorder/delay, byte truncation and bit corruption, malformed
discovery-response mutation, device crash/restart flap windows, and
unresponsive-port behaviour.  A :class:`FaultInjector` applies the plan
inside ``Lan.transmit``, driven by a PRNG derived from the study seed,
so the same seed + the same plan produces the identical fault schedule
every run.  See ``docs/resilience.md`` for the schema and the
degradation semantics of every consumer.
"""

from repro.faults.mutators import (
    corrupt_bits,
    mutate_discovery_payload,
    mutate_udp_payload,
    truncate_bytes,
)
from repro.faults.plan import (
    DISCOVERY_PORTS,
    DelaySpec,
    DiscoveryMutation,
    EMPTY_PLAN,
    FaultPlan,
    FlapWindow,
    LinkFaults,
    ShardFaults,
    UnresponsivePort,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "DISCOVERY_PORTS",
    "DelaySpec",
    "DiscoveryMutation",
    "EMPTY_PLAN",
    "FaultInjector",
    "FaultPlan",
    "FlapWindow",
    "LinkFaults",
    "ShardFaults",
    "UnresponsivePort",
    "corrupt_bits",
    "mutate_discovery_payload",
    "mutate_udp_payload",
    "truncate_bytes",
]
