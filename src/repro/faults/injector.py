"""The :class:`FaultInjector`: applies a :class:`FaultPlan` to a live LAN.

The injector sits inside ``Lan.transmit``: every frame a node puts on
the air passes through :meth:`transmit`, which rolls the plan's
per-link probabilities on a PRNG derived from ``(study seed, plan
seed_salt)`` and drops, damages, delays, duplicates, or mutates the
frame accordingly.  Receiver-side effects (crashed devices,
unresponsive ports) are applied per delivery via
:meth:`allow_delivery`.  Because the simulator is deterministic and all
randomness flows from the one seeded PRNG in frame order, the same
(seed, plan) pair reproduces the identical fault schedule run after
run.

Every injected fault increments ``faults_injected_total`` (labelled by
kind) in the active observability context and the injector's local
``counts`` — a chaos run's telemetry quantifies exactly what was lost.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, TYPE_CHECKING

from repro.faults.mutators import (
    corrupt_bits,
    mutate_udp_payload,
    truncate_bytes,
    udp_ports_of,
)
from repro.faults.plan import EMPTY_PLAN, FaultPlan, LinkFaults
from repro.net.decode import DecodedPacket, decode_frame
from repro.obs import get_obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simnet.lan import Lan
    from repro.simnet.node import Node

#: Help text for ``faults_injected_total`` — one string, shared by the
#: LAN injector, the snapshot merge, and the fleet runner, so the
#: registry never sees the same metric described two ways.
FAULTS_INJECTED_HELP = "faults injected into the LAN, per kind"


def faults_injected_counter(obs):
    """The shared ``faults_injected_total{kind}`` counter in ``obs``.

    The fleet runner counts its worker faults here too
    (``kind="shard_fail" | "shard_hang" | "shard_slow"``), so one chaos
    run's injections — LAN-side and fleet-side — land in one series.
    Caller must check ``obs.enabled`` first.
    """
    return obs.metrics.scoped("faults").counter(
        "injected_total", FAULTS_INJECTED_HELP)


class FaultInjector:
    """Applies one validated :class:`FaultPlan` deterministically."""

    def __init__(self, plan: Optional[FaultPlan] = None, seed: int = 0):
        self.plan = plan if plan is not None else EMPTY_PLAN
        self.seed = seed
        # str seeds hash through SHA-512 (CPython seeding version 2), so
        # this is stable across processes and platforms.
        self.rng = random.Random(f"repro-faults:{seed}:{self.plan.seed_salt}")
        self.lan: Optional["Lan"] = None
        self.counts: Dict[str, int] = {}
        self._discovery_ports = (
            frozenset(self.plan.discovery.ports()) if self.plan.discovery else frozenset()
        )
        obs = get_obs()
        self._obs = obs
        if obs.enabled:
            self._faults_total = faults_injected_counter(obs)

    @property
    def active(self) -> bool:
        """False for an empty plan: the injector is a pure passthrough."""
        return not self.plan.is_empty

    # -- wiring -------------------------------------------------------------------

    def install(self, lan: "Lan") -> "FaultInjector":
        """Hook into the LAN (and its simulator, for flap telemetry)."""
        self.lan = lan
        lan.install_injector(self)
        if self.active:
            for flap in self.plan.flaps:
                if flap.duration > 0:
                    self._schedule_flap_telemetry(lan, flap, flap.start)
            if self._obs.enabled:
                self._obs.logger("faults").info(
                    "injector_installed", plan=self.plan.name, seed=self.seed)
        return self

    def _schedule_flap_telemetry(self, lan: "Lan", flap, start: float) -> None:
        """Emit down/up log events at each window boundary (sim-hooked)."""
        simulator = lan.simulator

        def down():
            self._count("flap_window")
            if self._obs.enabled:
                self._obs.logger("faults").info(
                    "device_down", device=flap.device, until=start + flap.duration)
            simulator.schedule(flap.duration, up)

        def up():
            if self._obs.enabled:
                self._obs.logger("faults").info("device_up", device=flap.device)
            if flap.period is not None:
                self._schedule_flap_telemetry(lan, flap, start + flap.period)

        simulator.schedule(max(0.0, start - simulator.now), down)

    # -- bookkeeping ---------------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self._obs.enabled:
            self._faults_total.inc(kind=kind)
        if self._obs.events.enabled:
            sim_now = self.lan.simulator.now if self.lan is not None else None
            self._obs.events.emit("fault_injected", kind=kind,
                                  total=self.counts[kind], sim_now=sim_now)

    def summary(self) -> Dict[str, object]:
        """What this run injected — attached to ``StudyReport.fault_summary``."""
        return {
            "plan": self.plan.name,
            "seed": self.seed,
            "counts": dict(self.counts),
            "total": sum(self.counts.values()),
        }

    # -- plan queries ---------------------------------------------------------------

    @staticmethod
    def _matches(pattern: str, node: Optional["Node"]) -> bool:
        if pattern == "*":
            return True
        if node is None:
            return False
        return node.name == pattern or str(node.mac).lower() == pattern.lower()

    def _link_for(self, sender: "Node", dst_owner: Optional["Node"]) -> Optional[LinkFaults]:
        """First matching link spec (declaration order wins)."""
        for link in self.plan.links:
            if self._matches(link.src, sender) and self._matches(link.dst, dst_owner):
                return link
        return None

    def is_down(self, node: "Node", now: float) -> bool:
        for flap in self.plan.flaps:
            if flap.covers(now) and self._matches(flap.device, node):
                return True
        return False

    def port_unresponsive(self, node: "Node", transport: str, port: int, now: float) -> bool:
        for spec in self.plan.unresponsive_ports:
            if (spec.transport == transport and spec.port == port
                    and spec.covers(now) and self._matches(spec.device, node)):
                return True
        return False

    # -- the transmit hook ------------------------------------------------------------

    def transmit(self, sender: "Node", frame_bytes: bytes) -> DecodedPacket:
        """Roll the plan for one frame; deliver whatever survives.

        Returns the decoded view of the frame as transmitted (dropped
        frames decode but never reach the capture or any receiver).
        """
        lan = self.lan
        now = lan.simulator.now
        if self.is_down(sender, now):
            # A crashed device emits nothing: the frame never airs.
            self._count("flap_drop_tx")
            return decode_frame(frame_bytes, now)

        data = frame_bytes
        rng = self.rng
        dst_owner = lan.node_by_mac(data[0:6])
        link = self._link_for(sender, dst_owner)
        delay = 0.0
        duplicate = False
        if link is not None and not link.is_noop:
            if link.loss and rng.random() < link.loss:
                self._count("loss")
                return decode_frame(data, now)
            if link.truncate and rng.random() < link.truncate:
                data = truncate_bytes(rng, data)
                self._count("truncate")
            if link.corrupt and rng.random() < link.corrupt:
                data = corrupt_bits(rng, data, link.corrupt_bits)
                self._count("corrupt")
            if link.delay is not None and link.delay.probability and \
                    rng.random() < link.delay.probability:
                delay = rng.uniform(link.delay.min_seconds, link.delay.max_seconds)
                self._count("delay")
            elif link.reorder and rng.random() < link.reorder:
                # Delay-based reordering: the held frame lands after
                # whatever the lab transmits inside the gap.
                delay = link.reorder_gap
                self._count("reorder")
            if link.duplicate and rng.random() < link.duplicate:
                duplicate = True
                self._count("duplicate")

        discovery = self.plan.discovery
        if discovery is not None and discovery.probability and self._discovery_ports:
            ports = udp_ports_of(data)
            if ports is not None and (
                    ports[0] in self._discovery_ports or ports[1] in self._discovery_ports):
                if rng.random() < discovery.probability:
                    data = mutate_udp_payload(rng, data)
                    self._count("mutate_discovery")

        if delay > 0.0:
            lan.simulator.schedule(delay, lambda: lan._deliver(sender, data))
            if duplicate:
                lan.simulator.schedule(delay, lambda: lan._deliver(sender, data))
            return decode_frame(data, now)
        packet = lan._deliver(sender, data)
        if duplicate:
            lan._deliver(sender, data)
        return packet

    # -- the delivery hook ------------------------------------------------------------

    def allow_delivery(self, receiver: "Node", packet: DecodedPacket, now: float) -> bool:
        """Receiver-side faults: crashed devices and unresponsive ports."""
        if self.is_down(receiver, now):
            self._count("flap_drop_rx")
            return False
        if packet.tcp is not None and self.port_unresponsive(
                receiver, "tcp", packet.tcp.dst_port, now):
            self._count("port_unresponsive")
            return False
        if packet.udp is not None and self.port_unresponsive(
                receiver, "udp", packet.udp.dst_port, now):
            self._count("port_unresponsive")
            return False
        return True
