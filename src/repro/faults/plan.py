"""The declarative chaos schedule: :class:`FaultPlan` and its parts.

A plan is plain data — JSON-loadable, strictly validated, hashable into
the injector's PRNG seed — describing *what* should misbehave.  The
:class:`~repro.faults.injector.FaultInjector` decides *when*, using a
PRNG derived from the study seed, so a (seed, plan) pair fully
determines the fault schedule.

Schema (all sections optional; unknown keys are rejected)::

    {
      "name": "lossy-lan",
      "seed_salt": 0,
      "links": [
        {"src": "*", "dst": "*", "loss": 0.02, "duplicate": 0.01,
         "reorder": 0.01, "truncate": 0.005, "corrupt": 0.005,
         "delay": {"probability": 0.05, "min_seconds": 0.001,
                   "max_seconds": 0.02}}
      ],
      "discovery": {"probability": 0.05,
                     "protocols": ["mdns", "ssdp", "tuyalp"]},
      "flaps": [
        {"device": "Amazon Echo Dot", "start": 120.0, "duration": 30.0,
         "period": 600.0}
      ],
      "unresponsive_ports": [
        {"device": "*", "transport": "tcp", "port": 80,
         "start": 0.0, "duration": null}
      ],
      "shards": {"fail": [1, 3], "fail_rate": 0.0,
                 "hang": [2], "hang_rate": 0.0, "hang_seconds": 300.0,
                 "slow": [], "slow_rate": 0.0, "slow_factor": 4.0}
    }

The ``shards`` section is read by :mod:`repro.fleet` (worker-process
crash/hang/slowdown injection), not by the LAN injector; a shards-only
plan leaves a ``repro study`` run byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: UDP ports the discovery-mutation fault targets, by protocol name.
DISCOVERY_PORTS: Dict[str, Tuple[int, ...]] = {
    "mdns": (5353,),
    "ssdp": (1900,),
    "tuyalp": (6666, 6667),
}


class FaultPlanError(ValueError):
    """Raised when a plan document fails validation."""


def _require_probability(section: str, key: str, value) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise FaultPlanError(f"{section}.{key}: expected a number, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{section}.{key}: probability out of [0, 1]: {value}")
    return float(value)


def _require_nonnegative(section: str, key: str, value) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise FaultPlanError(f"{section}.{key}: expected a number, got {value!r}")
    if value < 0:
        raise FaultPlanError(f"{section}.{key}: must be >= 0, got {value}")
    return float(value)


def _reject_unknown(section: str, given: dict, allowed: Sequence[str]) -> None:
    unknown = set(given) - set(allowed)
    if unknown:
        raise FaultPlanError(
            f"{section}: unknown keys {sorted(unknown)}; allowed: {sorted(allowed)}")


@dataclass(frozen=True)
class DelaySpec:
    """Probabilistic per-frame delivery delay (uniform in [min, max])."""

    probability: float = 0.0
    min_seconds: float = 0.0005
    max_seconds: float = 0.005

    @classmethod
    def from_dict(cls, raw: dict, section: str = "delay") -> "DelaySpec":
        _reject_unknown(section, raw, ("probability", "min_seconds", "max_seconds"))
        spec = cls(
            probability=_require_probability(section, "probability", raw.get("probability", 0.0)),
            min_seconds=_require_nonnegative(section, "min_seconds", raw.get("min_seconds", 0.0005)),
            max_seconds=_require_nonnegative(section, "max_seconds", raw.get("max_seconds", 0.005)),
        )
        if spec.min_seconds > spec.max_seconds:
            raise FaultPlanError(f"{section}: min_seconds > max_seconds")
        return spec


@dataclass(frozen=True)
class LinkFaults:
    """Fault probabilities for frames matching a (src, dst) pattern.

    ``src``/``dst`` match a node name, a MAC address string, or ``"*"``
    (any).  ``dst`` matches the destination MAC's owner; broadcast and
    multicast frames only match ``dst == "*"``.
    """

    src: str = "*"
    dst: str = "*"
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_gap: float = 0.004
    truncate: float = 0.0
    corrupt: float = 0.0
    corrupt_bits: int = 8
    delay: Optional[DelaySpec] = None

    _KEYS = ("src", "dst", "loss", "duplicate", "reorder", "reorder_gap",
             "truncate", "corrupt", "corrupt_bits", "delay")

    @property
    def is_noop(self) -> bool:
        return (
            self.loss == 0.0 and self.duplicate == 0.0 and self.reorder == 0.0
            and self.truncate == 0.0 and self.corrupt == 0.0
            and (self.delay is None or self.delay.probability == 0.0)
        )

    @classmethod
    def from_dict(cls, raw: dict, section: str = "links[]") -> "LinkFaults":
        _reject_unknown(section, raw, cls._KEYS)
        delay = raw.get("delay")
        if delay is not None:
            delay = DelaySpec.from_dict(delay, f"{section}.delay")
        corrupt_bits = raw.get("corrupt_bits", 8)
        if not isinstance(corrupt_bits, int) or corrupt_bits < 1:
            raise FaultPlanError(f"{section}.corrupt_bits: expected int >= 1")
        return cls(
            src=str(raw.get("src", "*")),
            dst=str(raw.get("dst", "*")),
            loss=_require_probability(section, "loss", raw.get("loss", 0.0)),
            duplicate=_require_probability(section, "duplicate", raw.get("duplicate", 0.0)),
            reorder=_require_probability(section, "reorder", raw.get("reorder", 0.0)),
            reorder_gap=_require_nonnegative(section, "reorder_gap", raw.get("reorder_gap", 0.004)),
            truncate=_require_probability(section, "truncate", raw.get("truncate", 0.0)),
            corrupt=_require_probability(section, "corrupt", raw.get("corrupt", 0.0)),
            corrupt_bits=corrupt_bits,
            delay=delay,
        )


@dataclass(frozen=True)
class DiscoveryMutation:
    """Mutate discovery responses/queries on the protocols' known ports."""

    probability: float = 0.0
    protocols: Tuple[str, ...] = ("mdns", "ssdp", "tuyalp")

    @classmethod
    def from_dict(cls, raw: dict, section: str = "discovery") -> "DiscoveryMutation":
        _reject_unknown(section, raw, ("probability", "protocols"))
        protocols = tuple(raw.get("protocols", ("mdns", "ssdp", "tuyalp")))
        for protocol in protocols:
            if protocol not in DISCOVERY_PORTS:
                raise FaultPlanError(
                    f"{section}.protocols: unknown protocol {protocol!r}; "
                    f"known: {sorted(DISCOVERY_PORTS)}")
        return cls(
            probability=_require_probability(section, "probability", raw.get("probability", 0.0)),
            protocols=protocols,
        )

    def ports(self) -> Tuple[int, ...]:
        out: List[int] = []
        for protocol in self.protocols:
            out.extend(DISCOVERY_PORTS[protocol])
        return tuple(out)


@dataclass(frozen=True)
class FlapWindow:
    """A crash/restart window: the device is down in [start, start+duration).

    With ``period`` set, the window repeats every ``period`` sim-seconds
    (a chronically unstable device).
    """

    device: str
    start: float
    duration: float
    period: Optional[float] = None

    @classmethod
    def from_dict(cls, raw: dict, section: str = "flaps[]") -> "FlapWindow":
        _reject_unknown(section, raw, ("device", "start", "duration", "period"))
        if "device" not in raw:
            raise FaultPlanError(f"{section}: 'device' is required")
        period = raw.get("period")
        if period is not None:
            period = _require_nonnegative(section, "period", period)
            if period <= 0:
                raise FaultPlanError(f"{section}.period: must be > 0 when set")
        window = cls(
            device=str(raw["device"]),
            start=_require_nonnegative(section, "start", raw.get("start", 0.0)),
            duration=_require_nonnegative(section, "duration", raw.get("duration", 0.0)),
            period=period,
        )
        if window.period is not None and window.duration >= window.period:
            raise FaultPlanError(f"{section}: duration must be < period")
        return window

    def covers(self, now: float) -> bool:
        if self.duration <= 0:
            return False
        offset = now - self.start
        if offset < 0:
            return False
        if self.period is not None:
            offset %= self.period
        return offset < self.duration


@dataclass(frozen=True)
class UnresponsivePort:
    """A service that silently eats probes (filtered port semantics)."""

    device: str
    transport: str
    port: int
    start: float = 0.0
    duration: Optional[float] = None  # None: unresponsive forever

    @classmethod
    def from_dict(cls, raw: dict, section: str = "unresponsive_ports[]") -> "UnresponsivePort":
        _reject_unknown(section, raw, ("device", "transport", "port", "start", "duration"))
        transport = raw.get("transport", "tcp")
        if transport not in ("tcp", "udp"):
            raise FaultPlanError(f"{section}.transport: expected 'tcp' or 'udp'")
        port = raw.get("port")
        if not isinstance(port, int) or not 0 < port <= 65535:
            raise FaultPlanError(f"{section}.port: expected int in 1..65535")
        duration = raw.get("duration")
        if duration is not None:
            duration = _require_nonnegative(section, "duration", duration)
        return cls(
            device=str(raw.get("device", "*")),
            transport=transport,
            port=port,
            start=_require_nonnegative(section, "start", raw.get("start", 0.0)),
            duration=duration,
        )

    def covers(self, now: float) -> bool:
        if now < self.start:
            return False
        return self.duration is None or now < self.start + self.duration


def _require_shard_indices(section: str, key: str, raw: dict) -> Tuple[int, ...]:
    value = raw.get(key, [])
    if not isinstance(value, list):
        raise FaultPlanError(f"{section}.{key}: expected a list of shard indices")
    for index in value:
        if not isinstance(index, int) or isinstance(index, bool) or index < 0:
            raise FaultPlanError(
                f"{section}.{key}: expected ints >= 0, got {index!r}")
    return tuple(value)


@dataclass(frozen=True)
class ShardFaults:
    """Deterministic fleet-shard worker faults (read by ``repro.fleet``).

    Three kinds, in order of precedence when a shard is named by more
    than one:

    * ``fail`` / ``fail_rate`` — the worker raises (a crash);
    * ``hang`` / ``hang_rate`` — the worker goes silent for
      ``hang_seconds`` wall seconds (no heartbeats), exercising the
      watchdog deadline;
    * ``slow`` / ``slow_rate`` — the worker takes ``slow_factor``×
      its normal wall time but keeps heartbeating (must *not* trip the
      watchdog).

    Explicit indices always apply; each ``*_rate`` dooms each shard
    with that probability, drawn from a PRNG derived from the study
    seed + ``seed_salt`` so the same (seed, plan) pair schedules the
    same faults every run.
    """

    fail: Tuple[int, ...] = ()
    fail_rate: float = 0.0
    hang: Tuple[int, ...] = ()
    hang_rate: float = 0.0
    #: How long a hung worker stays silent before resuming (a watchdog
    #: deadline shorter than this declares it dead first).
    hang_seconds: float = 300.0
    slow: Tuple[int, ...] = ()
    slow_rate: float = 0.0
    #: Wall-time multiplier for slowed shards (1.0 = no slowdown).
    slow_factor: float = 4.0

    _KEYS = ("fail", "fail_rate", "hang", "hang_rate", "hang_seconds",
             "slow", "slow_rate", "slow_factor")

    @property
    def is_noop(self) -> bool:
        return (not self.fail and self.fail_rate == 0.0
                and not self.hang and self.hang_rate == 0.0
                and not self.slow and self.slow_rate == 0.0)

    @property
    def has_hangs(self) -> bool:
        return bool(self.hang) or self.hang_rate > 0.0

    @classmethod
    def from_dict(cls, raw: dict, section: str = "shards") -> "ShardFaults":
        _reject_unknown(section, raw, cls._KEYS)
        hang_seconds = _require_nonnegative(section, "hang_seconds",
                                            raw.get("hang_seconds", 300.0))
        if hang_seconds <= 0:
            raise FaultPlanError(f"{section}.hang_seconds: must be > 0")
        slow_factor = _require_nonnegative(section, "slow_factor",
                                           raw.get("slow_factor", 4.0))
        if slow_factor < 1.0:
            raise FaultPlanError(f"{section}.slow_factor: must be >= 1")
        return cls(
            fail=_require_shard_indices(section, "fail", raw),
            fail_rate=_require_probability(section, "fail_rate",
                                           raw.get("fail_rate", 0.0)),
            hang=_require_shard_indices(section, "hang", raw),
            hang_rate=_require_probability(section, "hang_rate",
                                           raw.get("hang_rate", 0.0)),
            hang_seconds=hang_seconds,
            slow=_require_shard_indices(section, "slow", raw),
            slow_rate=_require_probability(section, "slow_rate",
                                           raw.get("slow_rate", 0.0)),
            slow_factor=slow_factor,
        )


@dataclass(frozen=True)
class FaultPlan:
    """The full validated chaos schedule."""

    name: str = "unnamed"
    seed_salt: int = 0
    links: Tuple[LinkFaults, ...] = ()
    discovery: Optional[DiscoveryMutation] = None
    flaps: Tuple[FlapWindow, ...] = ()
    unresponsive_ports: Tuple[UnresponsivePort, ...] = ()
    #: Fleet-shard crash injection; not consulted by the LAN injector.
    shards: Optional[ShardFaults] = None

    @property
    def is_empty(self) -> bool:
        """True when *installing* this plan (on a Lan) can never change
        behaviour.  Shard faults live outside the Lan, so a shards-only
        plan is still "empty" here — ``repro study`` stays
        byte-identical — and :attr:`has_shard_faults` reports the fleet
        side separately."""
        return (
            all(link.is_noop for link in self.links)
            and (self.discovery is None or self.discovery.probability == 0.0)
            and not any(flap.duration > 0 for flap in self.flaps)
            and not self.unresponsive_ports
        )

    @property
    def has_shard_faults(self) -> bool:
        """True when the fleet runner would inject worker faults."""
        return self.shards is not None and not self.shards.is_noop

    @property
    def has_hang_faults(self) -> bool:
        """True when the fleet runner must force a pool (hangs need a
        reapable worker process — an inline hang would stall the
        parent)."""
        return self.shards is not None and self.shards.has_hangs

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise FaultPlanError(f"plan: expected a JSON object, got {type(raw).__name__}")
        _reject_unknown("plan", raw, ("name", "seed_salt", "links", "discovery",
                                      "flaps", "unresponsive_ports", "shards"))
        seed_salt = raw.get("seed_salt", 0)
        if not isinstance(seed_salt, int) or isinstance(seed_salt, bool):
            raise FaultPlanError("plan.seed_salt: expected an integer")
        for key in ("links", "flaps", "unresponsive_ports"):
            if key in raw and not isinstance(raw[key], list):
                raise FaultPlanError(f"plan.{key}: expected a list")
        return cls(
            name=str(raw.get("name", "unnamed")),
            seed_salt=seed_salt,
            links=tuple(LinkFaults.from_dict(entry, f"links[{i}]")
                        for i, entry in enumerate(raw.get("links", ()))),
            discovery=(DiscoveryMutation.from_dict(raw["discovery"])
                       if raw.get("discovery") is not None else None),
            flaps=tuple(FlapWindow.from_dict(entry, f"flaps[{i}]")
                        for i, entry in enumerate(raw.get("flaps", ()))),
            unresponsive_ports=tuple(
                UnresponsivePort.from_dict(entry, f"unresponsive_ports[{i}]")
                for i, entry in enumerate(raw.get("unresponsive_ports", ()))),
            shards=(ShardFaults.from_dict(raw["shards"])
                    if raw.get("shards") is not None else None),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"plan: invalid JSON: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


#: The canonical do-nothing plan (zero-fault equivalence baseline).
EMPTY_PLAN = FaultPlan(name="empty")
