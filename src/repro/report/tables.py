"""ASCII renderers for every reproduced table and figure.

Benchmarks print these next to the paper's reported values so a reader
can compare shapes at a glance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a simple monospace table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def render_figure2(census, top: int = 25) -> str:
    """Figure 2 as a table: protocol, %passive, %scan, %apps."""
    rows = [
        (
            row["protocol"],
            f"{row['passive_pct']:5.1f}",
            f"{row['scan_pct']:5.1f}",
            f"{row['apps_pct']:5.1f}",
        )
        for row in census.rows()[:top]
    ]
    return render_table(
        ["protocol", "%devices passive", "%devices scans", "%apps"],
        rows,
        title="Figure 2 — protocol prevalence",
    )


def render_table1(matrix) -> str:
    """Table 1 as a checkmark matrix."""
    from repro.core.exposure import EXPOSURE_PROTOCOLS, EXPOSURE_TYPES

    table = matrix.as_boolean_table()
    rows = []
    for protocol in EXPOSURE_PROTOCOLS:
        rows.append(
            [protocol]
            + ["x" if table[protocol][identifier] else "." for identifier in EXPOSURE_TYPES]
        )
    return render_table(
        ["protocol"] + EXPOSURE_TYPES, rows, title="Table 1 — information exposure"
    )


def render_table2(report) -> str:
    """Table 2 from a FingerprintReport."""
    rows = [
        (
            row.type_count,
            row.identifiers or "N/A",
            row.products,
            row.vendors,
            row.devices,
            row.households,
            f"{row.unique_pct:.1f}%" if row.type_count else "N/A",
            f"{row.entropy:.1f}" if row.type_count else "N/A",
        )
        for row in report.rows
    ]
    return render_table(
        ["#", "identifier(s)", "pdt", "vdr", "dev", "hse", "unique", "ent"],
        rows,
        title="Table 2 — identifier exposure via mDNS/SSDP",
    )


def render_table3(catalog) -> str:
    """Table 3 (device inventory by category/vendor)."""
    from repro.devices.catalog import catalog_summary

    summary = catalog_summary(catalog)
    rows = []
    for category in sorted(summary):
        vendors = ", ".join(
            f"{vendor} ({count})" for vendor, count in sorted(summary[category].items())
        )
        rows.append((category, sum(summary[category].values()), vendors))
    return render_table(["category", "devices", "vendors"], rows, title="Table 3 — testbed inventory")


def render_table4(correlation) -> str:
    rows = [
        (category, f"{protocols:.2f}", f"{with_response:.2f}", f"{responders:.2f}")
        for category, protocols, with_response, responders in correlation.by_category()
    ]
    return render_table(
        ["device group", "#discovery protocols", "#protocols w/ response", "#devices responded to"],
        rows,
        title="Table 4 — discovery protocols and responses per category",
    )


def render_figure3(crossval, max_cells: int = 12) -> str:
    """Figure 3 as the top confusion cells."""
    cells = sorted(crossval.confusion.items(), key=lambda item: -item[1])[:max_cells]
    rows = [(tshark, ndpi, count) for (tshark, ndpi), count in cells]
    header = (
        f"units={crossval.total_units} tshark={crossval.tshark_coverage:.1%} "
        f"ndpi={crossval.ndpi_coverage:.1%} disagree={crossval.disagree_fraction:.1%} "
        f"neither={crossval.neither_fraction:.1%}"
    )
    return header + "\n" + render_table(
        ["tshark label", "nDPI label", "flows"], rows, title="Figure 3 — classifier cross-validation"
    )


def render_comparison(rows: List[Tuple[str, object, object]], title: str = "paper vs measured") -> str:
    """Side-by-side paper-reported vs measured values."""
    return render_table(
        ["quantity", "paper", "measured"],
        [(name, paper, measured) for name, paper, measured in rows],
        title=title,
    )
