"""Canonical JSON artifacts for the core §4–§6 analyses.

One serializer per analysis — census, device graph, exposure,
periodicity — shared by the batch path, the ``repro monitor`` snapshot
writer, and the incremental/batch equivalence tests.  "Canonical"
means: plain JSON types only, sets emitted sorted, keyed example lists
emitted in a fixed key order (values keep their chronological order),
and one dump shape (:func:`canonical_json`: ``indent=2``,
``sort_keys=True``, trailing newline).  Two runs produce byte-identical
artifacts exactly when the underlying analysis results are equal —
which is the contract the monitor's ``finalize()`` is pinned against
(see ``docs/monitor.md``).
"""

from __future__ import annotations

import json
from typing import Dict, List

#: Example values kept per (protocol, identifier-type) exposure cell.
#: A prefix of a deterministic chronological list is itself
#: deterministic, so truncation preserves byte-identity.
EXPOSURE_EXAMPLE_LIMIT = 3


def census_artifact(census) -> Dict[str, object]:
    """The passive protocol census (Figure 2) as canonical data."""
    return {
        "total_devices": int(census.total_devices),
        "passive": {label: sorted(devices)
                    for label, devices in census.passive.items()},
    }


def device_graph_artifact(graph) -> Dict[str, object]:
    """The device communication graph (Figures 1/4) as canonical data.

    Edge endpoints are pair-normalized (lexicographic) before sorting:
    ``MultiGraph.edges`` orients each edge by node insertion order,
    which is a construction detail, not part of the graph's identity.
    """
    edges = sorted({tuple(sorted((str(a), str(b)))) + (str(data.get("transport")),)
                    for a, b, data in graph.graph.edges(data=True)})
    return {
        "nodes": sorted(str(node) for node in graph.graph.nodes),
        "edges": [list(edge) for edge in edges],
        "summary": graph.summary(),
    }


def exposure_artifact(matrix) -> Dict[str, object]:
    """The information-exposure matrix (Table 1) as canonical data."""
    cells = {
        protocol: {kind: sorted(devices)
                   for kind, devices in kinds.items() if devices}
        for protocol, kinds in matrix.cells.items()
    }
    examples: List[List[object]] = [
        [protocol, kind, list(values[:EXPOSURE_EXAMPLE_LIMIT])]
        for (protocol, kind), values in sorted(matrix.examples.items())
    ]
    return {
        "cells": {protocol: kinds for protocol, kinds in cells.items() if kinds},
        "examples": examples,
    }


def periodicity_artifact(result) -> Dict[str, object]:
    """The discovery-periodicity result (Appendix D.1) as canonical data.

    Detections keep their first-seen group order — both the batch
    analysis and the incremental merge create groups chronologically,
    so the order itself is part of the equivalence contract.
    """
    detections = [
        {
            "device": detection.device,
            "destination": detection.destination,
            "protocol": detection.protocol,
            "event_count": int(detection.event_count),
            "is_periodic": bool(detection.is_periodic),
            "period": None if detection.period is None else float(detection.period),
            "dft_score": float(detection.dft_score),
            "autocorr_score": float(detection.autocorr_score),
        }
        for detection in result.detections
    ]
    return {
        "group_count": int(result.group_count),
        "periodic_fraction": float(result.periodic_fraction),
        "detections": detections,
    }


def canonical_json(obj) -> str:
    """The one true dump shape for artifact byte-comparison."""
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"
