"""Rendering helpers: turn analysis objects into the paper's tables."""

from repro.report.figures import (
    render_bars,
    render_figure2_bars,
    render_figure3_heatmap,
    render_heatmap,
)
from repro.report.tables import (
    render_table,
    render_figure2,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_figure3,
    render_comparison,
)

__all__ = [
    "render_bars",
    "render_figure2_bars",
    "render_figure3_heatmap",
    "render_heatmap",
    "render_table",
    "render_figure2",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_figure3",
    "render_comparison",
]
