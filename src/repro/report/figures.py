"""ASCII figure renderers: bar charts and heatmaps for the terminal.

Complements `tables.py`: Figure 2 as a horizontal bar chart and
Figure 3 as a shaded heatmap, so `repro study` output visually echoes
the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_SHADES = " .:-=+*#%@"


def render_bars(
    rows: Sequence[Tuple[str, float]],
    width: int = 50,
    max_value: Optional[float] = None,
    unit: str = "%",
    title: str = "",
) -> str:
    """A horizontal bar chart: one labeled bar per row."""
    rows = list(rows)
    if not rows:
        return title
    peak = max_value if max_value is not None else max(value for _, value in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        filled = int(round(width * min(value, peak) / peak))
        bar = "█" * filled + "·" * (width - filled)
        lines.append(f"{label.ljust(label_width)} |{bar}| {value:5.1f}{unit}")
    return "\n".join(lines)


def render_heatmap(
    x_labels: Sequence[str],
    y_labels: Sequence[str],
    matrix: Sequence[Sequence[float]],
    title: str = "",
) -> str:
    """A character-shaded heatmap (log-scaled, like Figure 3's)."""
    import math

    peak = max((value for row in matrix for value in row), default=0.0)
    lines = [title] if title else []
    y_width = max((len(label) for label in y_labels), default=0)

    def shade(value: float) -> str:
        if value <= 0 or peak <= 0:
            return _SHADES[0]
        # log scale: 1 maps just above blank, peak maps to the top shade.
        position = math.log1p(value) / math.log1p(peak)
        return _SHADES[min(int(position * (len(_SHADES) - 1)) + 1, len(_SHADES) - 1)]

    for y_index, y_label in enumerate(y_labels):
        cells = "".join(shade(matrix[y_index][x_index]) * 2 for x_index in range(len(x_labels)))
        lines.append(f"{y_label.rjust(y_width)} {cells}")
    # Column legend underneath, numbered to keep rows narrow.
    lines.append(" " * y_width + " " + "".join(f"{index % 10}{index % 10}" for index in range(len(x_labels))))
    for index, label in enumerate(x_labels):
        lines.append(f"{' ' * y_width} {index}: {label}")
    return "\n".join(lines)


def render_figure2_bars(census, top: int = 18) -> str:
    """Figure 2 as bars (passive percentages)."""
    rows = [
        (row["protocol"], row["passive_pct"])
        for row in census.rows()[:top]
        if row["passive_pct"] > 0
    ]
    return render_bars(rows, max_value=100.0, title="Figure 2 — % devices (passive)")


def render_figure3_heatmap(crossval, max_labels: int = 12) -> str:
    """Figure 3 as a heatmap of the top confusion cells."""
    tshark_axis, ndpi_axis, matrix = crossval.heatmap()
    # Keep the busiest axes readable.
    def row_weight(index):
        return sum(matrix[index])

    def column_weight(index):
        return sum(row[index] for row in matrix)

    keep_rows = sorted(range(len(ndpi_axis)), key=row_weight, reverse=True)[:max_labels]
    keep_columns = sorted(range(len(tshark_axis)), key=column_weight, reverse=True)[:max_labels]
    trimmed = [[matrix[r][c] for c in keep_columns] for r in keep_rows]
    return render_heatmap(
        [tshark_axis[c] for c in keep_columns],
        [ndpi_axis[r] for r in keep_rows],
        trimmed,
        title="Figure 3 — tshark (x) vs nDPI (y) flow labels",
    )
