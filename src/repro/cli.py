"""Command-line interface.

Installed as the ``repro`` console script::

    repro study        [--seed N] [--duration SECONDS] [--apps N]
                       [--metrics-out PATH] [--trace-out PATH] [--events-out PATH]
                       [--profile-out DIR] [--profile-hz HZ] [--log-level LEVEL]
                       [--fault-plan PATH] [--keep-going | --fail-fast]
    repro classify     PCAP [--crossval]
    repro ingest       PCAP [--device-map JSON] [--chunk-records N]
                       [--json PATH]
    repro monitor      [PCAP | --simulate] [--follow] [--window-packets N]
                       [--window-seconds S] [--snapshot-every N]
                       [--snapshot-dir DIR] [--json PATH] [--device-map JSON]
                       [--chunk-records N] [--seed N] [--duration SECONDS]
                       [--poll-interval S] [--idle-timeout S] [--max-packets N]
                       [--metrics-out PATH] [--events-out PATH]
                       [--log-level LEVEL]
    repro scan         [--seed N]
    repro fingerprint  [--seed N] [--mitigation NAME]
    repro catalog
    repro capture      OUTPUT_DIR [--seed N] [--duration SECONDS]
    repro fleet        [--households N] [--workers W] [--shard-size N]
                       [--cache-dir PATH] [--resume] [--json PATH]
                       [--fault-plan PATH] [--keep-going | --fail-fast]
                       [--shard-retries N] [--retry-backoff SECONDS]
                       [--shard-deadline SECONDS]
                       [--events-out PATH] [--profile-out DIR] [--profile-hz HZ]
                       [--progress | --no-progress]

``repro classify`` works on *any* classic-pcap file (including captures
from a real network), making the classifier pair usable outside the
simulation.  ``repro ingest`` streams an external pcap into the
columnar packet store in bounded-memory chunks and runs the full §4–§6
analysis stack over it.  ``repro monitor`` is the *online* counterpart:
it consumes a (possibly still growing) pcap or the simulator's live
feed and keeps the four core analyses current over a bounded sliding
window (see ``docs/monitor.md``).  ``repro fleet`` is the sharded,
cached, multi-process version of the Table 2 crowdsourced analysis;
see ``docs/cli.md`` for the complete flag reference and
``docs/fleet.md`` for its guarantees.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _progress_wanted(args: argparse.Namespace) -> bool:
    """Whether the in-terminal progress line should render.

    Explicit ``--progress``/``--no-progress`` win; the default is on
    exactly when stderr is a terminal and the event stream is not
    already targeting it (``--events-out -``).
    """
    forced = getattr(args, "progress", None)
    if forced is not None:
        return forced
    if getattr(args, "events_out", None) == "-":
        return False
    return sys.stderr.isatty()


def _build_observability(args: argparse.Namespace):
    """A live observability context when any ``--metrics-out`` /
    ``--trace-out`` / ``--events-out`` / ``--profile-out`` /
    ``--log-level`` flag was given (or a progress line needs the event
    bus), else the null one."""
    from repro.obs import NULL_OBS, enable_observability, open_event_stream

    events_out = getattr(args, "events_out", None)
    profile_out = getattr(args, "profile_out", None)
    # Only subcommands that define --progress (fleet) can want the bus
    # for the progress line alone.
    progress = "progress" in vars(args) and _progress_wanted(args)
    wanted = getattr(args, "metrics_out", None) or getattr(args, "trace_out", None) \
        or getattr(args, "log_level", None) or events_out or progress or profile_out
    if not wanted:
        return NULL_OBS
    events = open_event_stream(events_out) if (events_out or progress) else None
    profiler = None
    if profile_out:
        from repro.obs.profile import DEFAULT_PROFILE_HZ, SamplingProfiler

        hz = getattr(args, "profile_hz", None) or DEFAULT_PROFILE_HZ
        profiler = SamplingProfiler(hz=hz)
    obs = enable_observability(log_level=args.log_level, events=events,
                               profiler=profiler)
    if profiler is not None:
        # Per-span resource accounting rides with profiling; starting
        # the sampler thread stays with the subcommand (the fleet's
        # parent leaves it off so its merged profile is exactly the
        # deterministic fold of the workers' profiles).
        from repro.obs.profile import SpanResourceProbe

        obs.tracer.resource_probe = SpanResourceProbe()
    return obs


def _check_output_paths(args: argparse.Namespace) -> Optional[str]:
    """Validate telemetry output paths *before* the (long) run starts.

    Returns an error message, or ``None`` when every path is writable.
    """
    import os

    for flag in ("metrics_out", "trace_out", "events_out", "json"):
        path = getattr(args, flag, None)
        if not path or path == "-":
            continue
        parent = os.path.dirname(os.path.abspath(path))
        if not os.path.isdir(parent):
            return f"--{flag.replace('_', '-')}: directory does not exist: {parent}"
        if not os.access(parent, os.W_OK):
            return f"--{flag.replace('_', '-')}: directory is not writable: {parent}"
    profile_out = getattr(args, "profile_out", None)
    profile_hz = getattr(args, "profile_hz", None)
    if profile_hz is not None and not profile_out:
        return "--profile-hz requires --profile-out"
    if profile_hz is not None and profile_hz <= 0:
        return f"--profile-hz must be positive, got {profile_hz}"
    if profile_out:
        target = os.path.abspath(profile_out)
        # The directory itself is created on demand; its parent must
        # already exist so a typo fails before the run, not after.
        probe = target if os.path.isdir(target) else os.path.dirname(target)
        if os.path.exists(target) and not os.path.isdir(target):
            return f"--profile-out: not a directory: {profile_out}"
        if not os.path.isdir(probe):
            return f"--profile-out: directory does not exist: {probe}"
        if not os.access(probe, os.W_OK):
            return f"--profile-out: directory is not writable: {probe}"
    return None


def _write_observability_outputs(obs, args: argparse.Namespace) -> None:
    """Finalize telemetry outputs — called from ``finally`` blocks so
    metrics/traces/events land on disk even when the run exits nonzero
    (partial failures are exactly when telemetry matters most)."""
    import json

    if getattr(args, "metrics_out", None):
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(obs.metrics.to_dict(), handle, indent=2, sort_keys=True)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if getattr(args, "trace_out", None):
        obs.tracer.write_chrome_trace(args.trace_out)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    profile_out = getattr(args, "profile_out", None)
    if profile_out and obs.profiler.enabled:
        from repro.obs.profile import write_profile_outputs

        obs.profiler.stop()
        write_profile_outputs(obs.profiler.profile, profile_out,
                              tracer=obs.tracer)
        print(f"profile written to {profile_out} "
              f"({obs.profiler.profile.total_samples} samples)",
              file=sys.stderr)
    events_out = getattr(args, "events_out", None)
    obs.events.close()
    if events_out and events_out != "-":
        print(f"events written to {events_out}", file=sys.stderr)


class _FleetProgress:
    """The minimal in-terminal progress line, driven by shard events.

    Subscribes to the run's :class:`~repro.obs.events.EventBus`; every
    shard lifecycle record that carries tallies redraws one
    carriage-return line on stderr.
    """

    TERMINAL = ("shard_done", "shard_cached", "shard_failed",
                "shard_quarantined")

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self.active = False

    def __call__(self, record) -> None:
        if record.get("event") not in self.TERMINAL or "total" not in record:
            return
        quarantined = record.get("quarantined", 0)
        done = record.get("done", 0) + record.get("cached", 0) \
            + record.get("failed", 0) + quarantined
        line = (f"fleet: {done}/{record['total']} shards "
                f"({record.get('cached', 0)} cached, "
                f"{record.get('failed', 0)} failed)")
        if quarantined:
            line = line[:-1] + f", {quarantined} quarantined)"
        try:
            self.stream.write("\r" + line.ljust(60))
            self.stream.flush()
        except (OSError, ValueError):
            return
        self.active = True

    def finish(self) -> None:
        """Terminate the progress line so later output starts clean."""
        if self.active:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass
            self.active = False


def _load_fault_plan(path: Optional[str]):
    """Load + validate a fault plan file; returns (plan, error_message)."""
    if not path:
        return None, None
    from repro.faults import FaultPlan
    from repro.faults.plan import FaultPlanError

    try:
        return FaultPlan.load(path), None
    except OSError as error:
        return None, f"--fault-plan: cannot read {path}: {error}"
    except FaultPlanError as error:
        return None, f"--fault-plan: invalid plan: {error}"


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.core.pipeline import StudyPipeline
    from repro.report.tables import (
        render_comparison,
        render_figure2,
        render_figure3,
        render_table1,
        render_table4,
    )

    error = _check_output_paths(args)
    if error:
        print(f"repro study: error: {error}", file=sys.stderr)
        return 2
    fault_plan, error = _load_fault_plan(getattr(args, "fault_plan", None))
    if error:
        print(f"repro study: error: {error}", file=sys.stderr)
        return 2
    obs = _build_observability(args)
    if obs.profiler.enabled:
        obs.profiler.start()
    pipeline = StudyPipeline(
        seed=args.seed,
        passive_duration=args.duration,
        app_sample_size=args.apps,
        include_crowdsourced=args.crowdsourced,
        obs=obs,
        fault_plan=fault_plan,
        keep_going=not args.fail_fast,
    )
    from repro.fleet.supervisor import interrupt_guard

    try:
        with interrupt_guard():
            report = pipeline.run()
    except KeyboardInterrupt as interrupt:
        # SIGINT/SIGTERM: flush the telemetry collected so far — the
        # interrupt path writes the same artifacts the failure path
        # does — then honour the 128+signum exit convention.
        _write_observability_outputs(obs, args)
        code = getattr(interrupt, "exit_code", 130)
        print(f"repro study: interrupted (exit {code}); "
              "telemetry outputs flushed", file=sys.stderr)
        return code
    except Exception as error:
        # Fail-fast runs re-raise the first analysis failure; flush the
        # telemetry collected so far — a crashed run is exactly when the
        # metrics/trace/events are needed — then report the failure.
        _write_observability_outputs(obs, args)
        print(f"repro study: error: {type(error).__name__}: {error}",
              file=sys.stderr)
        return 1
    _write_observability_outputs(obs, args)
    rows = []
    if report.device_graph is not None:
        summary = report.device_graph.summary()
        rows.append(("devices communicating locally (Fig. 1)", "43/93",
                     f"{summary['devices_communicating']}/{summary['devices_total']}"))
    if report.crossval is not None:
        rows.append(("classifier disagreement (Fig. 3)", "16%",
                     f"{report.crossval.disagree_fraction:.0%}"))
    rows.append(("devices with open ports (§4.2)", 61,
                 report.scan_report.devices_with_open_ports))
    if report.threat is not None:
        rows.append(("local TLS devices (§5.2)", 32, report.threat.tls_device_count))
    if report.periodicity is not None:
        rows.append(("periodic discovery flows (App. D.1)", "88%",
                     f"{report.periodicity.periodic_fraction:.0%}"))
    print(render_comparison(rows, title="Headline results — paper vs this run"))
    from repro.report.figures import render_figure2_bars, render_figure3_heatmap

    print()
    print(render_figure2_bars(report.census))
    print()
    print(render_figure2(report.census, top=20))
    if report.exposure is not None:
        print()
        print(render_table1(report.exposure))
    if report.responses is not None:
        print()
        print(render_table4(report.responses))
    if report.crossval is not None:
        print()
        print(render_figure3(report.crossval))
        print()
        print(render_figure3_heatmap(report.crossval))
    if report.fingerprint is not None:
        from repro.report.tables import render_table2

        print()
        print(render_table2(report.fingerprint))
    if report.fault_summary is not None:
        counts = report.fault_summary.get("counts", {})
        detail = ", ".join(f"{kind}={count}" for kind, count in sorted(counts.items()))
        print()
        print(f"fault plan {report.fault_summary['plan']!r}: "
              f"{report.fault_summary['total']} faults injected"
              + (f" ({detail})" if detail else ""))
    if report.failures:
        print()
        print(f"{len(report.failures)} analysis failure(s) isolated "
              f"(partial report):", file=sys.stderr)
        for failure in report.failures:
            print(f"  {failure.analysis}: {failure.error}", file=sys.stderr)
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.classify.crossval import cross_validate
    from repro.classify.rules import CorrectedClassifier
    from repro.net.decode import decode_frame
    from repro.net.pcap import PcapReader
    from repro.report.tables import render_figure3, render_table

    try:
        with PcapReader(args.pcap) as reader:
            packets = [decode_frame(captured.data, captured.timestamp) for captured in reader]
    except (OSError, ValueError) as error:
        print(f"error: cannot read {args.pcap}: {error}", file=sys.stderr)
        return 1
    if not packets:
        print("error: capture contains no packets", file=sys.stderr)
        return 1
    classifier = CorrectedClassifier()
    counts = Counter(str(classifier.classify_packet(packet)) for packet in packets)
    print(render_table(
        ["protocol", "packets", "share"],
        [(label, count, f"{count / len(packets):.1%}")
         for label, count in counts.most_common()],
        title=f"{args.pcap}: {len(packets)} packets (nDPI+manual labels)",
    ))
    if args.crossval:
        print()
        print(render_figure3(cross_validate(packets)))
    return 0


def _load_device_map(path: Optional[str]):
    """Load ``--device-map`` JSON; returns (macs, vendors, categories, error).

    The file maps MAC string -> device name, or MAC string -> object
    with ``name`` and optional ``vendor``/``category`` keys.
    """
    import json

    if not path:
        return None, {}, {}, None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return None, {}, {}, f"--device-map: cannot read {path}: {error}"
    if not isinstance(raw, dict):
        return None, {}, {}, "--device-map: expected a JSON object"
    macs, vendors, categories = {}, {}, {}
    for mac, value in raw.items():
        key = mac.lower()
        if isinstance(value, str):
            macs[key] = value
        elif isinstance(value, dict) and "name" in value:
            macs[key] = value["name"]
            if "vendor" in value:
                vendors[value["name"]] = value["vendor"]
            if "category" in value:
                categories[value["name"]] = value["category"]
        else:
            return None, {}, {}, (
                f"--device-map: entry {mac!r} must be a name string or an "
                "object with a 'name' key")
    return macs, vendors, categories, None


def _ingest_empty_report(args: argparse.Namespace, device_macs,
                         chunks: int) -> int:
    """The ``repro ingest`` success path for a capture with no packets.

    An empty or header-only pcap is a *normal* outcome (a capture that
    has not started yet, a quiet network), so this exits 0 with an
    explicit all-zero report — same JSON payload shape as a real run —
    instead of failing.
    """
    import json

    mapped = 0 if device_macs is None else len(device_macs)
    print(f"{args.pcap}: capture contains no packets (empty capture)")
    print(f"devices: {mapped} mapped, 0 communicating locally, "
          "0 device pairs")
    if args.json:
        payload = {
            "pcap": args.pcap,
            "packets": 0,
            "bytes": 0,
            "chunks": chunks,
            "quarantined": {},
            "protocol_counts": {},
            "census_passive": {},
            "graph_summary": {
                "devices_total": mapped,
                "devices_communicating": 0,
                "device_pairs": 0,
                "pairs_tcp_and_udp": 0,
            },
            "exposure": {},
            "responses_by_category": {},
            "periodicity": {"detections": 0, "periodic_fraction": 0.0},
            "threat": {
                "plaintext_http_devices": [],
                "http_servers": [],
                "tls_devices": [],
            },
            "crossval": {
                "total_units": 0, "agree": 0, "disagree": 0, "neither": 0,
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"artifacts written to {args.json}", file=sys.stderr)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json

    from repro.classify.crossval import cross_validate
    from repro.core.device_graph import build_device_graph
    from repro.core.exposure import analyze_exposure
    from repro.core.periodicity import analyze_periodicity
    from repro.core.protocol_census import census_from_capture
    from repro.core.responses import correlate_responses
    from repro.core.threat_report import build_threat_report
    from repro.net.ingest import ingest_pcap
    from repro.report.tables import render_table

    error = _check_output_paths(args)
    if error:
        print(f"repro ingest: error: {error}", file=sys.stderr)
        return 2
    device_macs, vendors, categories, error = _load_device_map(args.device_map)
    if error:
        print(f"repro ingest: error: {error}", file=sys.stderr)
        return 2
    import os

    try:
        if os.path.getsize(args.pcap) == 0:
            # A zero-byte capture file is what a tcpdump that was killed
            # before its first write leaves behind: an empty capture,
            # not a malformed one.
            return _ingest_empty_report(args, device_macs, chunks=0)
        result = ingest_pcap(args.pcap, chunk_records=args.chunk_records)
    except (OSError, ValueError) as error:
        print(f"error: cannot ingest {args.pcap}: {error}", file=sys.stderr)
        return 1
    if len(result) == 0:
        # Header-only pcap: valid, just nothing captured yet.
        return _ingest_empty_report(args, device_macs,
                                    chunks=result.stats.chunks)
    index = result.index
    if device_macs is None:
        # No map supplied: every observed source MAC is its own device.
        device_macs = {mac: mac for mac in index.by_src_mac}
    census = census_from_capture(index, device_macs)
    graph = build_device_graph(index, device_macs, vendors)
    exposure = analyze_exposure(index, device_macs)
    responses = correlate_responses(index, device_macs, categories)
    periodicity = analyze_periodicity(index, device_macs)
    threat = build_threat_report(index, device_macs)
    crossval = cross_validate(index)

    stats = result.stats
    counts = index.protocol_counts()
    print(render_table(
        ["protocol", "packets", "share"],
        [(tag, count, f"{count / len(index):.1%}")
         for tag, count in sorted(counts.items(), key=lambda item: -item[1])],
        title=(f"{args.pcap}: {stats.packets} packets in {stats.chunks} "
               f"chunk(s), {stats.quarantined_total} quarantined"),
    ))
    summary = graph.summary()
    print(f"\ndevices: {len(device_macs)} mapped, "
          f"{summary['devices_communicating']} communicating locally, "
          f"{summary['device_pairs']} device pairs")
    print(f"threats: {len(threat.plaintext_http_devices)} plaintext-HTTP "
          f"device(s), {threat.tls_device_count} local-TLS device(s)")
    print(f"classifiers: {crossval.total_units} units, "
          f"{crossval.disagree_fraction:.0%} disagree, "
          f"{crossval.neither_fraction:.0%} unlabeled")
    if stats.quarantined:
        detail = ", ".join(f"{reason}={count}"
                           for reason, count in sorted(stats.quarantined.items()))
        print(f"quarantined frames: {detail}")
    if args.json:
        payload = {
            "pcap": args.pcap,
            "packets": stats.packets,
            "bytes": stats.bytes,
            "chunks": stats.chunks,
            "quarantined": stats.quarantined,
            "protocol_counts": counts,
            "census_passive": {label: sorted(devices)
                               for label, devices in census.passive.items()},
            "graph_summary": summary,
            "exposure": {protocol: {kind: sorted(devices)
                                    for kind, devices in cells.items()}
                         for protocol, cells in exposure.cells.items()},
            "responses_by_category": responses.by_category(),
            "periodicity": {
                "detections": len(periodicity.detections),
                "periodic_fraction": periodicity.periodic_fraction,
            },
            "threat": {
                "plaintext_http_devices": sorted(threat.plaintext_http_devices),
                "http_servers": sorted(threat.http_servers),
                "tls_devices": sorted(threat.tls_devices),
            },
            "crossval": {
                "total_units": crossval.total_units,
                "agree": crossval.agree,
                "disagree": crossval.disagree,
                "neither": crossval.neither,
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"artifacts written to {args.json}", file=sys.stderr)
    return 0


def _check_monitor_args(args: argparse.Namespace) -> Optional[str]:
    """Config validation for ``repro monitor``; message or ``None``."""
    if args.simulate and args.pcap:
        return "provide a PCAP path or --simulate, not both"
    if not args.simulate and not args.pcap:
        return "provide a PCAP path or --simulate"
    if args.follow and not args.pcap:
        return "--follow requires a PCAP path"
    if args.snapshot_every is not None and not args.snapshot_dir:
        return "--snapshot-every requires --snapshot-dir"
    for flag, positive in (
        ("chunk_records", True), ("window_packets", True),
        ("window_seconds", True), ("snapshot_every", True),
        ("duration", True), ("idle_timeout", True),
        ("max_packets", True), ("poll_interval", False),
    ):
        value = getattr(args, flag)
        if value is None:
            continue
        if value < 0 or (positive and value == 0):
            kind = "positive" if positive else "non-negative"
            return (f"--{flag.replace('_', '-')} must be {kind}, "
                    f"got {value}")
    return None


def _cmd_monitor(args: argparse.Namespace) -> int:
    import os

    from repro.monitor import Monitor, follow_pcap_chunks, simulated_chunks
    from repro.net.ingest import iter_pcap_chunks

    error = _check_monitor_args(args) or _check_output_paths(args)
    if error:
        print(f"repro monitor: error: {error}", file=sys.stderr)
        return 2
    device_macs, vendors, _categories, error = _load_device_map(args.device_map)
    if error:
        print(f"repro monitor: error: {error}", file=sys.stderr)
        return 2
    if args.snapshot_dir:
        try:
            os.makedirs(args.snapshot_dir, exist_ok=True)
        except OSError as oserror:
            print(f"repro monitor: error: --snapshot-dir: {oserror}",
                  file=sys.stderr)
            return 2

    obs = _build_observability(args)
    monitor = Monitor(
        device_macs=device_macs,
        device_vendor=vendors,
        window_packets=args.window_packets,
        window_seconds=args.window_seconds,
        obs=obs,
    )
    if args.simulate:
        chunks = simulated_chunks(seed=args.seed, duration=args.duration,
                                  chunk_records=args.chunk_records)
    elif args.follow:
        chunks = follow_pcap_chunks(args.pcap,
                                    chunk_records=args.chunk_records,
                                    poll_interval=args.poll_interval,
                                    idle_timeout=args.idle_timeout)
    else:
        chunks = iter_pcap_chunks(args.pcap,
                                  chunk_records=args.chunk_records)

    from repro.fleet.supervisor import interrupt_guard

    interrupted: Optional[int] = None
    periodic = 0
    next_snapshot = args.snapshot_every
    try:
        with interrupt_guard():
            for chunk in chunks:
                monitor.absorb_chunk(chunk)
                while (next_snapshot is not None
                       and monitor.packets_seen >= next_snapshot):
                    periodic += 1
                    monitor.write_snapshot(os.path.join(
                        args.snapshot_dir, f"snapshot-{periodic:06d}.json"))
                    next_snapshot += args.snapshot_every
                if (args.max_packets is not None
                        and monitor.packets_seen >= args.max_packets):
                    break
    except KeyboardInterrupt as interrupt:
        # SIGINT/SIGTERM mid-stream: the window is still consistent, so
        # fall through to write the final snapshot before exiting by
        # the 128+signum convention.
        interrupted = getattr(interrupt, "exit_code", 130)
    except (OSError, ValueError) as error:
        _write_observability_outputs(obs, args)
        print(f"repro monitor: error: {error}", file=sys.stderr)
        return 1

    try:
        if args.snapshot_dir:
            monitor.write_snapshot(
                os.path.join(args.snapshot_dir, "snapshot-final.json"))
        if args.json:
            monitor.write_snapshot(args.json)
            print(f"final snapshot written to {args.json}", file=sys.stderr)
        document = monitor.snapshot()
    except OSError as error:
        _write_observability_outputs(obs, args)
        print(f"repro monitor: error: {error}", file=sys.stderr)
        return 1
    _write_observability_outputs(obs, args)

    window = document["window"]
    artifacts = document["artifacts"]
    census = artifacts["census"]
    graph = artifacts["device_graph"]["summary"]
    exposure_cells = sum(len(kinds)
                         for kinds in artifacts["exposure"]["cells"].values())
    periodicity = artifacts["periodicity"]
    print(f"monitor: {monitor.packets_seen} packets in {monitor.chunks} "
          f"chunk(s); window holds {window['packets']} packets across "
          f"{window['panes']} pane(s), {window['evicted_panes']} pane(s) "
          f"evicted")
    print(f"census: {census['total_devices']} devices across "
          f"{len(census['passive'])} protocols; "
          f"graph: {graph['device_pairs']} device pairs; "
          f"exposure: {exposure_cells} cells; "
          f"periodicity: {periodicity['group_count']} groups "
          f"({periodicity['periodic_fraction']:.0%} periodic)")
    if periodic:
        print(f"{periodic} periodic snapshot(s) written to "
              f"{args.snapshot_dir}", file=sys.stderr)
    if interrupted is not None:
        print(f"repro monitor: interrupted (exit {interrupted}); final "
              "snapshot reflects the window at interrupt", file=sys.stderr)
        return interrupted
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.devices.behaviors import build_testbed
    from repro.report.tables import render_table
    from repro.scan.portscan import PortScanner
    from repro.scan.vulnscan import VulnerabilityScanner

    testbed = build_testbed(seed=args.seed)
    testbed.run(30.0)
    scanner = PortScanner()
    testbed.lan.attach(scanner)
    testbed.lan.capture.keep_bytes = False
    report = scanner.sweep(targets=testbed.devices)
    rows = []
    for host in report.hosts:
        if not host.has_open_ports:
            continue
        ports = ", ".join(
            f"{entry.port}/{entry.transport}:{entry.corrected_label}"
            for entry in host.open_ports[:6]
        )
        rows.append((host.name, host.ip, ports))
    print(render_table(["device", "ip", "open services (corrected labels)"], rows,
                       title=f"{report.devices_with_open_ports} devices with open ports"))
    findings = VulnerabilityScanner(include_low=not args.no_low).scan(testbed.devices)
    print()
    rows = [(finding.severity, finding.device, finding.title) for finding in findings[:args.max_findings]]
    print(render_table(["severity", "device", "finding"], rows,
                       title=f"{len(findings)} vulnerability findings"))
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from repro.core.mitigations import MITIGATIONS, evaluate_mitigations
    from repro.inspector.generate import generate_dataset
    from repro.report.tables import render_table2

    if args.mitigation and args.mitigation not in MITIGATIONS:
        print(f"error: unknown mitigation {args.mitigation!r}; "
              f"choose from {', '.join(MITIGATIONS)}", file=sys.stderr)
        return 1
    dataset = generate_dataset(seed=args.seed)
    names = [args.mitigation] if args.mitigation else ["baseline"]
    outcome = evaluate_mitigations(dataset=dataset, names=names)[0]
    print(render_table2(outcome.report))
    print(f"\nmitigation: {outcome.name}; max combined entropy: "
          f"{outcome.max_entropy():.1f} bits; uniquely identifiable households: "
          f"{outcome.uniquely_identifiable_households()}")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.devices.catalog import build_catalog
    from repro.report.tables import render_table, render_table3

    catalog = build_catalog()
    print(render_table3(catalog))
    if args.verbose:
        rows = [
            (profile.name, profile.vendor, profile.model,
             ", ".join(profile.exposed_identifier_types()))
            for profile in catalog
        ]
        print()
        print(render_table(["device", "vendor", "model", "exposes"], rows))
    return 0


def _cmd_capture(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.devices.behaviors import build_testbed

    testbed = build_testbed(seed=args.seed)
    testbed.run(args.duration)
    output = Path(args.output_dir)
    paths = testbed.lan.capture.write_per_mac_pcaps(output / "per-mac")
    total = testbed.lan.capture.write_pcap(output / "lab.pcap")
    print(f"wrote {total} packets to {output / 'lab.pcap'} "
          f"and {len(paths)} per-MAC pcaps to {output / 'per-mac'}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.fleet import FleetConfigError, FleetError, FleetRunner, FleetSpec
    from repro.report.tables import render_table2

    error = _check_output_paths(args)
    if error:
        print(f"repro fleet: error: {error}", file=sys.stderr)
        return 2
    fault_plan, error = _load_fault_plan(getattr(args, "fault_plan", None))
    if error:
        print(f"repro fleet: error: {error}", file=sys.stderr)
        return 2
    obs = _build_observability(args)
    profile_hz = 0.0
    if args.profile_out:
        from repro.obs.profile import DEFAULT_PROFILE_HZ

        # Fleet profiling is worker-side: each computed shard samples
        # itself and the parent's (never-started) profiler is only the
        # merge target, so the merged profile is a deterministic fold.
        profile_hz = args.profile_hz if args.profile_hz else DEFAULT_PROFILE_HZ
    spec_kwargs = dict(
        seed=args.seed,
        households=args.households,
        target_devices=args.target_devices,
        validate_oui=not args.no_validate_oui,
    )
    if args.shard_size is not None:
        spec_kwargs["shard_size"] = args.shard_size
    try:
        spec = FleetSpec(**spec_kwargs)
        runner = FleetRunner(
            spec=spec,
            workers=args.workers,
            cache_dir=args.cache_dir,
            resume=args.resume,
            fault_plan=fault_plan,
            keep_going=not args.fail_fast,
            obs=obs,
            profile_hz=profile_hz,
            retries=args.shard_retries,
            retry_backoff=args.retry_backoff,
            shard_deadline=args.shard_deadline,
        )
    except (FleetConfigError, ValueError) as error:
        print(f"repro fleet: error: {error}", file=sys.stderr)
        return 2
    from repro.fleet.supervisor import interrupt_guard

    progress = None
    if _progress_wanted(args) and obs.events.enabled:
        progress = _FleetProgress()
        obs.events.subscribe(progress)
    try:
        with interrupt_guard():
            result = runner.run()
    except KeyboardInterrupt as interrupt:
        # SIGINT/SIGTERM: the runner already reaped its workers, marked
        # in-flight shards "interrupted", and checkpointed the manifest;
        # flush the telemetry artifacts and exit 128+signum so a later
        # --resume continues from the checkpoint byte-identically.
        if progress is not None:
            progress.finish()
        _write_observability_outputs(obs, args)
        code = getattr(interrupt, "exit_code", 130)
        print(f"repro fleet: interrupted (exit {code}); manifest "
              "checkpointed — rerun with --resume to continue",
              file=sys.stderr)
        return code
    except FleetError as error:
        # Telemetry still lands on disk on the failure paths: a fleet
        # run that died mid-flight is the one you want to inspect.
        code = 2 if isinstance(error, FleetConfigError) else 1
        if progress is not None:
            progress.finish()
        _write_observability_outputs(obs, args)
        print(f"repro fleet: error: {error}", file=sys.stderr)
        return code
    if progress is not None:
        progress.finish()
    _write_observability_outputs(obs, args)

    if result.report is not None:
        print(render_table2(result.report))
        print()
    summary = result.summary()
    states = summary["states"]
    quarantined_count = states.get("quarantined", 0)
    print(
        f"fleet: {summary['shards']} shards "
        f"({states.get('completed', 0)} computed, "
        f"{states.get('cached', 0)} cached, "
        f"{states.get('failed', 0)} failed"
        + (f", {quarantined_count} quarantined" if quarantined_count else "")
        + f"), workers {summary['workers']}, "
        f"cache {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses / "
        f"{summary['cache_writes']} writes, "
        f"{summary['wall_seconds']:.1f}s wall"
        + (" [resumed]" if result.resumed else "")
    )
    if result.failures:
        print(f"{len(result.failures)} shard failure(s) isolated "
              f"(partial report):", file=sys.stderr)
        for failure in result.failures:
            print(f"  shard {failure.shard} "
                  f"[{failure.start}, {failure.stop}): {failure.error}",
                  file=sys.stderr)
    if result.quarantined:
        print(f"{len(result.quarantined)} poison shard(s) quarantined "
              f"after exhausting {runner.retries} retries "
              f"(partial report):", file=sys.stderr)
        for poison in result.quarantined:
            print(f"  shard {poison.shard} "
                  f"[{poison.start}, {poison.stop}): "
                  f"{poison.attempts} attempts, last error: {poison.error}",
                  file=sys.stderr)
    if args.json:
        payload = {
            "spec": spec.to_dict(),
            "summary": summary,
            "report": result.report.to_dict() if result.report else None,
            "failures": [
                {"shard": failure.shard, "start": failure.start,
                 "stop": failure.stop, "error": failure.error}
                for failure in result.failures
            ],
            "quarantined": [
                {"shard": poison.shard, "start": poison.start,
                 "stop": poison.stop, "attempts": poison.attempts,
                 "error": poison.error}
                for poison in result.quarantined
            ],
            "shards": [
                {"index": state.index, "start": state.start, "stop": state.stop,
                 "state": state.state, "seconds": state.seconds,
                 "attempts": state.attempts}
                for state in result.shard_states
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"run summary written to {args.json}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'In the Room Where It Happens' (IMC 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the full study pipeline")
    study.add_argument("--seed", type=int, default=7)
    study.add_argument("--duration", type=float, default=900.0,
                       help="passive capture length in simulated seconds")
    study.add_argument("--apps", type=int, default=60,
                       help="app sample size (2335 = the full dataset)")
    study.add_argument("--crowdsourced", action="store_true",
                       help="also run the Table 2 crowdsourced analysis")
    study.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write a JSON metrics snapshot after the run")
    study.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write a Chrome trace_event file (chrome://tracing)")
    study.add_argument("--events-out", metavar="PATH", default=None,
                       help="stream NDJSON progress events to PATH "
                            "('-' streams to stderr; see docs/observability.md)")
    study.add_argument("--profile-out", metavar="DIR", default=None,
                       help="continuously profile the run; write flame.txt, "
                            "profile.speedscope.json and span_resources.json "
                            "into DIR (created if missing)")
    study.add_argument("--profile-hz", type=float, default=None,
                       help="profiler sampling rate in samples/second "
                            "(default 97; requires --profile-out)")
    study.add_argument("--log-level", default=None,
                       choices=["debug", "info", "warning", "error"],
                       help="enable structured logging at this level "
                            "(per-subsystem overrides via REPRO_LOG=sim=debug,...)")
    study.add_argument("--fault-plan", metavar="PATH", default=None,
                       help="inject faults from a JSON fault plan "
                            "(see docs/resilience.md)")
    going = study.add_mutually_exclusive_group()
    going.add_argument("--keep-going", dest="fail_fast", action="store_false",
                       help="isolate analysis failures into a partial report "
                            "(default)")
    going.add_argument("--fail-fast", dest="fail_fast", action="store_true",
                       help="re-raise the first analysis failure")
    study.set_defaults(func=_cmd_study, fail_fast=False)

    classify = sub.add_parser("classify", help="classify any classic-pcap capture")
    classify.add_argument("pcap", help="path to a pcap file")
    classify.add_argument("--crossval", action="store_true",
                          help="also print the tshark-vs-nDPI comparison")
    classify.set_defaults(func=_cmd_classify)

    ingest = sub.add_parser(
        "ingest", help="stream an external pcap through the full analysis stack")
    ingest.add_argument("pcap", help="path to a classic pcap file")
    ingest.add_argument("--device-map", metavar="JSON", default=None,
                        help="JSON file mapping MAC -> device name (or an "
                             "object with name/vendor/category keys); "
                             "default: each source MAC is its own device")
    ingest.add_argument("--chunk-records", type=int, metavar="N",
                        default=8192,
                        help="pcap records ingested per bounded-memory "
                             "chunk (default 8192)")
    ingest.add_argument("--json", metavar="PATH", default=None,
                        help="write the analysis artifacts as JSON")
    ingest.set_defaults(func=_cmd_ingest)

    monitor = sub.add_parser(
        "monitor",
        help="online incremental analysis over a sliding window")
    monitor.add_argument("pcap", nargs="?", default=None,
                         help="path to a classic pcap file (omit with "
                              "--simulate)")
    monitor.add_argument("--simulate", action="store_true",
                         help="consume the simulated lab's live feed "
                              "instead of a pcap")
    monitor.add_argument("--seed", type=int, default=7,
                         help="simulation seed (with --simulate)")
    monitor.add_argument("--duration", type=float, default=300.0,
                         help="simulated seconds to stream "
                              "(with --simulate; default 300)")
    monitor.add_argument("--follow", action="store_true",
                         help="tail a still-growing pcap, tcpdump-style; "
                              "stops after --idle-timeout without new bytes")
    monitor.add_argument("--poll-interval", type=float, default=0.5,
                         metavar="SECONDS",
                         help="how often --follow polls for growth "
                              "(default 0.5)")
    monitor.add_argument("--idle-timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="--follow gives up after this long without "
                              "new bytes (default 10)")
    monitor.add_argument("--device-map", metavar="JSON", default=None,
                         help="JSON file mapping MAC -> device name (or an "
                              "object with name/vendor/category keys); "
                              "default: each source MAC is its own device")
    monitor.add_argument("--chunk-records", type=int, metavar="N",
                         default=8192,
                         help="records absorbed per pane (default 8192)")
    monitor.add_argument("--window-packets", type=int, metavar="N",
                         default=None,
                         help="evict oldest panes while the window holds "
                              "more than N packets (default: unbounded)")
    monitor.add_argument("--window-seconds", type=float, metavar="SECONDS",
                         default=None,
                         help="evict panes older than this capture-time "
                              "span (default: unbounded)")
    monitor.add_argument("--snapshot-every", type=int, metavar="N",
                         default=None,
                         help="write a numbered snapshot into "
                              "--snapshot-dir every N absorbed packets")
    monitor.add_argument("--snapshot-dir", metavar="DIR", default=None,
                         help="directory for snapshot-NNNNNN.json and "
                              "snapshot-final.json (created if missing)")
    monitor.add_argument("--max-packets", type=int, metavar="N",
                         default=None,
                         help="stop after absorbing at least N packets")
    monitor.add_argument("--json", metavar="PATH", default=None,
                         help="write the final window snapshot as JSON")
    monitor.add_argument("--metrics-out", metavar="PATH", default=None,
                         help="write a JSON metrics snapshot after the run")
    monitor.add_argument("--events-out", metavar="PATH", default=None,
                         help="stream NDJSON window_advanced / "
                              "snapshot_written events to PATH "
                              "('-' streams to stderr)")
    monitor.add_argument("--log-level", default=None,
                         choices=["debug", "info", "warning", "error"],
                         help="enable structured logging at this level")
    monitor.set_defaults(func=_cmd_monitor)

    scan = sub.add_parser("scan", help="port- and vulnerability-scan the simulated lab")
    scan.add_argument("--seed", type=int, default=7)
    scan.add_argument("--no-low", action="store_true", help="hide low-severity findings")
    scan.add_argument("--max-findings", type=int, default=40)
    scan.set_defaults(func=_cmd_scan)

    fingerprint = sub.add_parser("fingerprint", help="Table 2 entropy analysis")
    fingerprint.add_argument("--seed", type=int, default=23)
    fingerprint.add_argument("--mitigation", default=None,
                             help="apply a §7 mitigation first (see repro.core.mitigations)")
    fingerprint.set_defaults(func=_cmd_fingerprint)

    catalog = sub.add_parser("catalog", help="print the Table 3 device inventory")
    catalog.add_argument("--verbose", action="store_true",
                         help="one row per device with its exposure classes")
    catalog.set_defaults(func=_cmd_catalog)

    capture = sub.add_parser("capture", help="run the lab and write pcaps to disk")
    capture.add_argument("output_dir")
    capture.add_argument("--seed", type=int, default=7)
    capture.add_argument("--duration", type=float, default=600.0)
    capture.set_defaults(func=_cmd_capture)

    fleet = sub.add_parser(
        "fleet", help="sharded multi-process Table 2 run with shard caching")
    fleet.add_argument("--seed", type=int, default=23)
    fleet.add_argument("--households", type=int, default=3860,
                       help="population size (3860 = the paper's §6.3 subset)")
    fleet.add_argument("--target-devices", type=int, default=12669,
                       help="population device-count target")
    fleet.add_argument("--shard-size", type=int, default=None,
                       help="households per shard "
                            "(default: REPRO_FLEET_SHARD_SIZE or 256)")
    fleet.add_argument("--workers", type=int, default=None,
                       help="worker processes "
                            "(default: REPRO_FLEET_WORKERS or the CPU count)")
    fleet.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="content-addressed shard cache + checkpoint manifest")
    fleet.add_argument("--resume", action="store_true",
                       help="continue a previous --cache-dir run "
                            "(errors if the manifest does not match)")
    fleet.add_argument("--no-validate-oui", action="store_true",
                       help="skip OUI validation of MAC candidates "
                            "(the §6.3 ablation)")
    fleet.add_argument("--json", metavar="PATH", default=None,
                       help="write the merged report + run summary as JSON")
    fleet.add_argument("--fault-plan", metavar="PATH", default=None,
                       help="inject shard faults from a JSON plan's "
                            "'shards' section (see docs/resilience.md)")
    fleet.add_argument("--shard-retries", type=int, default=2, metavar="N",
                       help="retry budget per shard before poison "
                            "quarantine (default 2; 0 disables retries)")
    fleet.add_argument("--retry-backoff", type=float, default=0.5,
                       metavar="SECONDS",
                       help="base retry delay; attempt n waits "
                            "backoff * 2**(n-1) seconds (default 0.5)")
    fleet.add_argument("--shard-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock deadline per shard attempt; a "
                            "worker silent past it is reaped and the "
                            "shard rescheduled (default: derived from "
                            "shard size, min 60s; env REPRO_FLEET_DEADLINE)")
    fleet_going = fleet.add_mutually_exclusive_group()
    fleet_going.add_argument("--keep-going", dest="fail_fast",
                             action="store_false",
                             help="isolate shard failures into a partial "
                                  "report (default)")
    fleet_going.add_argument("--fail-fast", dest="fail_fast",
                             action="store_true",
                             help="exit 1 on the first shard failure "
                                  "(after in-flight shards finish)")
    fleet.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write a JSON metrics snapshot after the run")
    fleet.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write a Chrome trace_event file (chrome://tracing)")
    fleet.add_argument("--events-out", metavar="PATH", default=None,
                       help="stream NDJSON shard-lifecycle events to PATH "
                            "('-' streams to stderr; see docs/observability.md)")
    fleet.add_argument("--profile-out", metavar="DIR", default=None,
                       help="profile every computed shard worker and write "
                            "the merged flame.txt / profile.speedscope.json / "
                            "span_resources.json into DIR")
    fleet.add_argument("--profile-hz", type=float, default=None,
                       help="worker sampling rate in samples/second "
                            "(default 97; requires --profile-out)")
    fleet.add_argument("--log-level", default=None,
                       choices=["debug", "info", "warning", "error"],
                       help="enable structured logging at this level")
    progress_group = fleet.add_mutually_exclusive_group()
    progress_group.add_argument("--progress", dest="progress",
                                action="store_true", default=None,
                                help="force the in-terminal shard progress "
                                     "line (default: only on a TTY)")
    progress_group.add_argument("--no-progress", dest="progress",
                                action="store_false",
                                help="suppress the shard progress line")
    fleet.set_defaults(func=_cmd_fleet, fail_fast=False)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except KeyboardInterrupt as interrupt:
        # An interrupt outside a guarded run section (argument parsing,
        # report rendering): exit by the same 128+signum convention
        # instead of dumping a traceback.
        return getattr(interrupt, "exit_code", 130)


if __name__ == "__main__":
    raise SystemExit(main())
