"""CoAP codec (RFC 7252).

Three testbed devices use CoAP (§5.1): a Samsung fridge requesting an
IoTivity URI and two HomePod Minis with undecodable payloads.  We
implement the 4-byte header, token, and Uri-Path options.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Optional
from repro.net.guard import guarded_decode

COAP_PORT = 5683


class CoapType(enum.IntEnum):
    CONFIRMABLE = 0
    NON_CONFIRMABLE = 1
    ACKNOWLEDGEMENT = 2
    RESET = 3


class CoapCode(enum.IntEnum):
    EMPTY = 0
    GET = 1
    POST = 2
    PUT = 3
    DELETE = 4
    CONTENT = (2 << 5) | 5  # 2.05
    NOT_FOUND = (4 << 5) | 4  # 4.04


OPTION_URI_PATH = 11


@dataclass
class CoapMessage:
    """A CoAP message with Uri-Path options and payload."""

    code: int
    message_id: int = 0
    coap_type: CoapType = CoapType.CONFIRMABLE
    token: bytes = b""
    uri_path: List[str] = field(default_factory=list)
    payload: bytes = b""

    def encode(self) -> bytes:
        if len(self.token) > 8:
            raise ValueError("CoAP token too long")
        first = (1 << 6) | (int(self.coap_type) << 4) | len(self.token)
        out = bytearray(struct.pack("!BBH", first, int(self.code), self.message_id))
        out += self.token
        previous_option = 0
        for segment in self.uri_path:
            delta = OPTION_URI_PATH - previous_option
            encoded = segment.encode("utf-8")
            if delta > 12 or len(encoded) > 12:
                out += self._extended_option(delta, encoded)
            else:
                out.append((delta << 4) | len(encoded))
                out += encoded
            previous_option = OPTION_URI_PATH
        if self.payload:
            out.append(0xFF)
            out += self.payload
        return bytes(out)

    @staticmethod
    def _extended_option(delta: int, value: bytes) -> bytes:
        # Only the "13" (one extra byte) extension is needed for our
        # option space; deltas/lengths above 268 never occur here.
        first_delta = 13 if delta > 12 else delta
        first_len = 13 if len(value) > 12 else len(value)
        out = bytearray([(first_delta << 4) | first_len])
        if first_delta == 13:
            out.append(delta - 13)
        if first_len == 13:
            out.append(len(value) - 13)
        out += value
        return bytes(out)

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "CoapMessage":
        if len(data) < 4:
            raise ValueError(f"truncated CoAP message: {len(data)} bytes")
        first, code, message_id = struct.unpack_from("!BBH", data)
        version = first >> 6
        if version != 1:
            raise ValueError(f"unsupported CoAP version: {version}")
        token_length = first & 0x0F
        if token_length > 8:
            raise ValueError(f"bad CoAP token length: {token_length}")
        coap_type = CoapType((first >> 4) & 0x03)
        offset = 4
        token = data[offset : offset + token_length]
        offset += token_length
        uri_path: List[str] = []
        current_option = 0
        payload = b""
        while offset < len(data):
            byte = data[offset]
            if byte == 0xFF:
                payload = data[offset + 1 :]
                break
            delta = byte >> 4
            length = byte & 0x0F
            offset += 1
            if delta == 13:
                delta = 13 + data[offset]
                offset += 1
            if length == 13:
                length = 13 + data[offset]
                offset += 1
            current_option += delta
            value = data[offset : offset + length]
            offset += length
            if current_option == OPTION_URI_PATH:
                uri_path.append(value.decode("utf-8", "replace"))
        return cls(
            code=code,
            message_id=message_id,
            coap_type=coap_type,
            token=token,
            uri_path=uri_path,
            payload=payload,
        )

    @classmethod
    def get(cls, path: str, message_id: int = 0) -> "CoapMessage":
        segments = [segment for segment in path.split("/") if segment]
        return cls(code=CoapCode.GET, message_id=message_id, uri_path=segments)

    @property
    def path(self) -> str:
        return "/" + "/".join(self.uri_path)
