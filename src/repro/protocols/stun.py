"""STUN codec (RFC 5389 header).

STUN appears in the passive captures (Fig. 2); Appendix C.2 documents
that Google devices' UDP traffic on ports 10000-10010 was *mis*labeled
as STUN by both nDPI and tshark when it is likely RTP — our classifier
cross-validation reproduces that confusion via the magic-cookie check.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from repro.net.guard import guarded_decode

MAGIC_COOKIE = 0x2112A442

BINDING_REQUEST = 0x0001
BINDING_RESPONSE = 0x0101


@dataclass
class StunMessage:
    """A STUN message header (+ opaque attribute bytes)."""

    message_type: int = BINDING_REQUEST
    transaction_id: bytes = b"\x00" * 12
    attributes: bytes = b""

    def encode(self) -> bytes:
        if len(self.transaction_id) != 12:
            raise ValueError("STUN transaction id must be 12 bytes")
        return (
            struct.pack("!HHI", self.message_type, len(self.attributes), MAGIC_COOKIE)
            + self.transaction_id
            + self.attributes
        )

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "StunMessage":
        if len(data) < 20:
            raise ValueError(f"truncated STUN message: {len(data)} bytes")
        message_type, length, cookie = struct.unpack_from("!HHI", data)
        if cookie != MAGIC_COOKIE:
            raise ValueError(f"bad STUN magic cookie: {cookie:#x}")
        if message_type & 0xC000:
            raise ValueError("top bits of STUN message type must be zero")
        return cls(
            message_type=message_type,
            transaction_id=data[8:20],
            attributes=data[20 : 20 + length],
        )


def looks_like_stun(payload: bytes) -> bool:
    """Magic-cookie based detection."""
    if len(payload) < 20:
        return False
    return (
        struct.unpack_from("!I", payload, 4)[0] == MAGIC_COOKIE
        and payload[0] & 0xC0 == 0
    )
