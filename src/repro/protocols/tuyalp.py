"""TuyaLP codec — Tuya's local UDP discovery protocol.

Documented by the TinyTuya project the paper cites [27]: frames are
``0x000055aa`` prefixed, with sequence number, command word, length, a
CRC32, and an ``0x0000aa55`` suffix.  Devices broadcast on UDP 6666
(plaintext, protocol 3.1) or 6667 (encrypted, 3.3+).  §5.1: the Jinvoo
Bulb "sends its GWid and Product key in plaintext"; devices only answer
their companion apps.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional
from repro.net.guard import guarded_decode

TUYA_PORT_PLAIN = 6666
TUYA_PORT_ENCRYPTED = 6667
TUYA_PORTS = (TUYA_PORT_PLAIN, TUYA_PORT_ENCRYPTED)

PREFIX = 0x000055AA
SUFFIX = 0x0000AA55
CMD_UDP_DISCOVER = 0x13  # UDP_NEW in TinyTuya's command table

#: Fixed key Tuya 3.3+ derives from "yGAdlopoPVldABfn" (md5); we model the
#: obfuscation as a keyed XOR stream so "encrypted" port-6667 payloads are
#: not trivially readable but remain deterministic and reversible.
_BROADCAST_KEY = b"6c1ec8e2bb9bb59ab50b0daf649b410a"


def _xor_obfuscate(data: bytes, key: bytes = _BROADCAST_KEY) -> bytes:
    return bytes(byte ^ key[index % len(key)] for index, byte in enumerate(data))


@dataclass
class TuyaLpMessage:
    """A TuyaLP discovery frame."""

    payload: Dict
    sequence: int = 0
    command: int = CMD_UDP_DISCOVER
    encrypted: bool = False

    def encode(self) -> bytes:
        body = json.dumps(self.payload, separators=(",", ":")).encode("utf-8")
        if self.encrypted:
            body = _xor_obfuscate(body)
        # length counts body + CRC(4) + suffix(4)
        head = struct.pack("!IIII", PREFIX, self.sequence, self.command, len(body) + 8)
        crc = zlib.crc32(head + body) & 0xFFFFFFFF
        return head + body + struct.pack("!II", crc, SUFFIX)

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes, verify_crc: bool = True) -> "TuyaLpMessage":
        if len(data) < 24:
            raise ValueError(f"truncated TuyaLP frame: {len(data)} bytes")
        prefix, sequence, command, length = struct.unpack_from("!IIII", data)
        if prefix != PREFIX:
            raise ValueError(f"bad TuyaLP prefix: {prefix:#x}")
        if length < 8 or 16 + length > len(data):
            raise ValueError(f"bad TuyaLP length field: {length}")
        body = data[16 : 16 + length - 8]
        crc, suffix = struct.unpack_from("!II", data, 16 + length - 8)
        if suffix != SUFFIX:
            raise ValueError(f"bad TuyaLP suffix: {suffix:#x}")
        if verify_crc and crc != (zlib.crc32(data[: 16 + length - 8]) & 0xFFFFFFFF):
            raise ValueError("TuyaLP CRC mismatch")
        encrypted = False
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = json.loads(_xor_obfuscate(body).decode("utf-8"))
            encrypted = True
        return cls(payload=payload, sequence=sequence, command=command, encrypted=encrypted)

    @classmethod
    def discovery(
        cls,
        gw_id: str,
        product_key: str,
        ip: str,
        version: str = "3.1",
        encrypted: bool = False,
    ) -> "TuyaLpMessage":
        """The periodic broadcast advertising gwId and productKey (§5.1)."""
        return cls(
            payload={
                "ip": ip,
                "gwId": gw_id,
                "active": 2,
                "ability": 0,
                "mode": 0,
                "encrypt": encrypted,
                "productKey": product_key,
                "version": version,
            },
            encrypted=encrypted,
        )

    @property
    def gw_id(self) -> Optional[str]:
        return self.payload.get("gwId")

    @property
    def product_key(self) -> Optional[str]:
        return self.payload.get("productKey")
