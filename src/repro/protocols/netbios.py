"""NetBIOS Name Service codec (RFC 1002).

Ten apps in the dataset scan the LAN with NetBIOS (§6.2).  The Table 5
payload is a node-status (NBSTAT) query for the wildcard name ``*``,
whose first-level encoding is the famous ``CKAAAAAAA...`` string: each
half-octet of the padded 16-byte name is mapped to 'A' + nibble.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from repro.net.guard import guarded_decode

NETBIOS_NS_PORT = 137
TYPE_NB = 0x0020
TYPE_NBSTAT = 0x0021


def encode_netbios_name(name: str, pad: str = " ") -> str:
    """First-level encode a NetBIOS name (RFC 1001 §14.1).

    The wildcard name ``*`` is padded with NULs, ordinary names with
    spaces; ``*`` therefore encodes to ``CKAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA``.
    """
    if name == "*":
        raw = b"*" + b"\x00" * 15
    else:
        raw = name.upper().ljust(16, pad).encode("ascii")[:16]
    encoded = []
    for byte in raw:
        encoded.append(chr(ord("A") + (byte >> 4)))
        encoded.append(chr(ord("A") + (byte & 0x0F)))
    return "".join(encoded)


def decode_netbios_name(encoded: str) -> str:
    """Reverse the first-level encoding back to the 16-byte name."""
    if len(encoded) != 32:
        raise ValueError(f"NetBIOS encoded name must be 32 chars, got {len(encoded)}")
    raw = bytearray()
    for index in range(0, 32, 2):
        high = ord(encoded[index]) - ord("A")
        low = ord(encoded[index + 1]) - ord("A")
        if not (0 <= high <= 15 and 0 <= low <= 15):
            raise ValueError(f"invalid NetBIOS encoding at {index}")
        raw.append((high << 4) | low)
    return raw.rstrip(b"\x00").rstrip(b" ").decode("ascii", "replace")


_HEADER = struct.Struct("!HHHHHH")


@dataclass
class NetbiosNsQuery:
    """A NetBIOS name-service query (NB or NBSTAT)."""

    name: str = "*"
    qtype: int = TYPE_NBSTAT
    transaction_id: int = 0x0001

    def encode(self) -> bytes:
        header = _HEADER.pack(self.transaction_id, 0x0000, 1, 0, 0, 0)
        encoded = encode_netbios_name(self.name).encode("ascii")
        question = bytes([len(encoded)]) + encoded + b"\x00" + struct.pack("!HH", self.qtype, 1)
        return header + question

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "NetbiosNsQuery":
        if len(data) < _HEADER.size + 38:
            raise ValueError(f"truncated NetBIOS NS query: {len(data)} bytes")
        txid, flags, qdcount, _an, _ns, _ar = _HEADER.unpack_from(data)
        if qdcount < 1:
            raise ValueError("NetBIOS NS message has no question")
        offset = _HEADER.size
        label_length = data[offset]
        if label_length != 32:
            raise ValueError(f"unexpected NetBIOS label length: {label_length}")
        encoded = data[offset + 1 : offset + 33].decode("ascii", "replace")
        offset += 34  # label + terminating zero
        qtype, _qclass = struct.unpack_from("!HH", data, offset)
        return cls(
            name=decode_netbios_name(encoded),
            qtype=qtype,
            transaction_id=txid,
        )

    @property
    def is_wildcard_status_query(self) -> bool:
        """True for the share-enumeration probe innosdk-style scanners send."""
        return self.name == "*" and self.qtype == TYPE_NBSTAT
