"""DNS wire-format codec (RFC 1035), the substrate for mDNS (RFC 6762).

Implements header, questions, and resource records (A, AAAA, PTR, TXT,
SRV) with full name-compression support on decode and optional
compression on encode.  mDNS payloads in the testbed and in the IoT
Inspector dataset are plain DNS messages on UDP 5353.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from repro.net.guard import guarded_decode


class DnsType(enum.IntEnum):
    A = 1
    PTR = 12
    TXT = 16
    AAAA = 28
    SRV = 33
    NSEC = 47
    ANY = 255


CLASS_IN = 1
#: mDNS top bit of the class field: cache-flush (records) / QU (questions).
MDNS_FLUSH_OR_QU = 0x8000


def encode_name(name: str, compression: Dict[str, int] = None, offset: int = 0) -> bytes:
    """Encode a dotted name as DNS labels, optionally using compression."""
    if name in ("", "."):
        return b"\x00"
    labels = name.rstrip(".").split(".")
    out = bytearray()
    for index in range(len(labels)):
        suffix = ".".join(labels[index:])
        if compression is not None and suffix in compression:
            pointer = compression[suffix]
            out += struct.pack("!H", 0xC000 | pointer)
            return bytes(out)
        if compression is not None and offset + len(out) < 0x3FFF:
            compression[suffix] = offset + len(out)
        label = labels[index].encode("utf-8")
        if len(label) > 63:
            raise ValueError(f"DNS label too long: {labels[index]!r}")
        out.append(len(label))
        out += label
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next_offset)."""
    labels: List[str] = []
    jumped = False
    next_offset = offset
    seen_pointers = set()
    while True:
        if offset >= len(data):
            raise ValueError("truncated DNS name")
        length = data[offset]
        if length & 0xC0 == 0xC0:
            if offset + 1 >= len(data):
                raise ValueError("truncated DNS compression pointer")
            pointer = struct.unpack("!H", data[offset : offset + 2])[0] & 0x3FFF
            if pointer in seen_pointers:
                raise ValueError("DNS compression pointer loop")
            seen_pointers.add(pointer)
            if not jumped:
                next_offset = offset + 2
                jumped = True
            offset = pointer
            continue
        if length == 0:
            if not jumped:
                next_offset = offset + 1
            break
        if length > 63:
            raise ValueError(f"bad DNS label length: {length}")
        offset += 1
        labels.append(data[offset : offset + length].decode("utf-8", "replace"))
        offset += length
    return ".".join(labels), next_offset


@dataclass
class DnsQuestion:
    name: str
    qtype: int = DnsType.ANY
    qclass: int = CLASS_IN
    unicast_response: bool = False  # mDNS "QU" bit

    def encode(self, compression: Dict[str, int] = None, offset: int = 0) -> bytes:
        qclass = self.qclass | (MDNS_FLUSH_OR_QU if self.unicast_response else 0)
        return encode_name(self.name, compression, offset) + struct.pack(
            "!HH", self.qtype, qclass
        )


@dataclass
class DnsRecord:
    name: str
    rtype: int
    rdata: bytes = b""
    ttl: int = 120
    rclass: int = CLASS_IN
    cache_flush: bool = False  # mDNS cache-flush bit

    def encode(self, compression: Dict[str, int] = None, offset: int = 0) -> bytes:
        rclass = self.rclass | (MDNS_FLUSH_OR_QU if self.cache_flush else 0)
        head = encode_name(self.name, compression, offset)
        return head + struct.pack("!HHIH", self.rtype, rclass, self.ttl, len(self.rdata)) + self.rdata

    # -- typed rdata constructors / accessors ---------------------------------

    @classmethod
    def a(cls, name: str, address: str, ttl: int = 120, flush: bool = True) -> "DnsRecord":
        import ipaddress

        return cls(name, DnsType.A, ipaddress.IPv4Address(address).packed, ttl, cache_flush=flush)

    @classmethod
    def aaaa(cls, name: str, address: str, ttl: int = 120, flush: bool = True) -> "DnsRecord":
        import ipaddress

        return cls(name, DnsType.AAAA, ipaddress.IPv6Address(address).packed, ttl, cache_flush=flush)

    @classmethod
    def ptr(cls, name: str, target: str, ttl: int = 4500) -> "DnsRecord":
        return cls(name, DnsType.PTR, encode_name(target), ttl)

    @classmethod
    def txt(cls, name: str, entries: Dict[str, str], ttl: int = 4500, flush: bool = True) -> "DnsRecord":
        rdata = bytearray()
        for key, value in entries.items():
            item = f"{key}={value}".encode("utf-8") if value is not None else key.encode("utf-8")
            if len(item) > 255:
                item = item[:255]
            rdata.append(len(item))
            rdata += item
        if not rdata:
            rdata = bytearray(b"\x00")
        return cls(name, DnsType.TXT, bytes(rdata), ttl, cache_flush=flush)

    @classmethod
    def srv(cls, name: str, target: str, port: int, ttl: int = 120, flush: bool = True) -> "DnsRecord":
        rdata = struct.pack("!HHH", 0, 0, port) + encode_name(target)
        return cls(name, DnsType.SRV, rdata, ttl, cache_flush=flush)

    def address(self) -> Optional[str]:
        import ipaddress

        if self.rtype == DnsType.A and len(self.rdata) == 4:
            return str(ipaddress.IPv4Address(self.rdata))
        if self.rtype == DnsType.AAAA and len(self.rdata) == 16:
            return str(ipaddress.IPv6Address(self.rdata))
        return None

    def ptr_target(self) -> Optional[str]:
        if self.rtype != DnsType.PTR:
            return None
        name, _ = decode_name(self.rdata, 0)
        return name

    def txt_entries(self) -> Dict[str, str]:
        if self.rtype != DnsType.TXT:
            return {}
        entries: Dict[str, str] = {}
        offset = 0
        while offset < len(self.rdata):
            length = self.rdata[offset]
            offset += 1
            item = self.rdata[offset : offset + length].decode("utf-8", "replace")
            offset += length
            if not item:
                continue
            key, _, value = item.partition("=")
            entries[key] = value
        return entries

    def srv_target(self) -> Optional[Tuple[str, int]]:
        if self.rtype != DnsType.SRV or len(self.rdata) < 7:
            return None
        _prio, _weight, port = struct.unpack("!HHH", self.rdata[:6])
        name, _ = decode_name(self.rdata, 6)
        return name, port


_HEADER = struct.Struct("!HHHHHH")


@dataclass
class DnsMessage:
    """A complete DNS message: header + questions + three record sections."""

    transaction_id: int = 0
    is_response: bool = False
    authoritative: bool = False
    questions: List[DnsQuestion] = field(default_factory=list)
    answers: List[DnsRecord] = field(default_factory=list)
    authorities: List[DnsRecord] = field(default_factory=list)
    additionals: List[DnsRecord] = field(default_factory=list)

    def encode(self, compress: bool = True) -> bytes:
        flags = 0
        if self.is_response:
            flags |= 0x8000
        if self.authoritative:
            flags |= 0x0400
        out = bytearray(
            _HEADER.pack(
                self.transaction_id,
                flags,
                len(self.questions),
                len(self.answers),
                len(self.authorities),
                len(self.additionals),
            )
        )
        compression: Optional[Dict[str, int]] = {} if compress else None
        for question in self.questions:
            out += question.encode(compression, len(out))
        for record in self.answers + self.authorities + self.additionals:
            out += record.encode(compression, len(out))
        return bytes(out)

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "DnsMessage":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated DNS message: {len(data)} bytes")
        txid, flags, qdcount, ancount, nscount, arcount = _HEADER.unpack_from(data)
        message = cls(
            transaction_id=txid,
            is_response=bool(flags & 0x8000),
            authoritative=bool(flags & 0x0400),
        )
        offset = _HEADER.size
        for _ in range(qdcount):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise ValueError("truncated DNS question")
            qtype, qclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            message.questions.append(
                DnsQuestion(
                    name=name,
                    qtype=qtype,
                    qclass=qclass & 0x7FFF,
                    unicast_response=bool(qclass & MDNS_FLUSH_OR_QU),
                )
            )
        for section, count in (
            (message.answers, ancount),
            (message.authorities, nscount),
            (message.additionals, arcount),
        ):
            for _ in range(count):
                record, offset = cls._decode_record(data, offset)
                section.append(record)
        return message

    @staticmethod
    def _decode_record(data: bytes, offset: int) -> Tuple[DnsRecord, int]:
        name, offset = decode_name(data, offset)
        if offset + 10 > len(data):
            raise ValueError("truncated DNS record")
        rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
        offset += 10
        rdata = data[offset : offset + rdlength]
        if len(rdata) < rdlength:
            raise ValueError("truncated DNS rdata")
        offset += rdlength
        # PTR/SRV rdata may contain compression pointers into the full
        # message; re-encode them uncompressed so accessors work on the
        # record in isolation.
        if rtype == DnsType.PTR:
            target, _ = decode_name(data, offset - rdlength)
            rdata = encode_name(target)
        elif rtype == DnsType.SRV and rdlength >= 6:
            target, _ = decode_name(data, offset - rdlength + 6)
            rdata = rdata[:6] + encode_name(target)
        record = DnsRecord(
            name=name,
            rtype=rtype,
            rdata=rdata,
            ttl=ttl,
            rclass=rclass & 0x7FFF,
            cache_flush=bool(rclass & MDNS_FLUSH_OR_QU),
        )
        return record, offset

    @property
    def all_records(self) -> List[DnsRecord]:
        return self.answers + self.authorities + self.additionals
