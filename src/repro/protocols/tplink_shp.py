"""TPLINK-SHP (TP-Link Smart Home Protocol) codec.

Implements the XOR-autokey "encryption" (initial key 171) documented by
the softScheck dissector the paper cites [28].  §5.1: TP-Link devices
answer UDP broadcast ``get_sysinfo`` queries with their system info
*including plaintext latitude/longitude*, device name, deviceId, hwId
and oemId (Table 5) — and the same protocol over TCP allows
unauthenticated control.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional
from repro.net.guard import guarded_decode

TPLINK_SHP_PORT = 9999
_INITIAL_KEY = 171


def tplink_encrypt(plaintext: bytes) -> bytes:
    """XOR-autokey encrypt: each ciphertext byte keys the next."""
    key = _INITIAL_KEY
    out = bytearray()
    for byte in plaintext:
        cipher = key ^ byte
        key = cipher
        out.append(cipher)
    return bytes(out)


def tplink_decrypt(ciphertext: bytes) -> bytes:
    """Inverse of :func:`tplink_encrypt`."""
    key = _INITIAL_KEY
    out = bytearray()
    for byte in ciphertext:
        out.append(key ^ byte)
        key = byte
    return bytes(out)


@dataclass
class TplinkShpMessage:
    """A (decrypted) TPLINK-SHP JSON command or response."""

    body: Dict

    def encode(self, transport: str = "udp") -> bytes:
        """Encode for the wire.

        TCP framing prefixes a 4-byte big-endian length; UDP sends the
        encrypted JSON bare — both per the softScheck dissector.
        """
        payload = tplink_encrypt(json.dumps(self.body, separators=(",", ":")).encode("utf-8"))
        if transport == "tcp":
            return struct.pack("!I", len(payload)) + payload
        return payload

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes, transport: str = "udp") -> "TplinkShpMessage":
        if transport == "tcp":
            if len(data) < 4:
                raise ValueError("truncated TPLINK-SHP TCP frame")
            (length,) = struct.unpack_from("!I", data)
            data = data[4 : 4 + length]
        plaintext = tplink_decrypt(data)
        try:
            body = json.loads(plaintext.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"not a TPLINK-SHP message: {exc}") from exc
        if not isinstance(body, dict):
            raise ValueError("TPLINK-SHP body is not a JSON object")
        return cls(body=body)

    # -- canonical messages ----------------------------------------------------

    @classmethod
    def get_sysinfo_query(cls) -> "TplinkShpMessage":
        """The discovery broadcast Google/Amazon speakers send (§5.1)."""
        return cls({"system": {"get_sysinfo": {}}})

    @classmethod
    def sysinfo_response(
        cls,
        alias: str,
        device_id: str,
        hw_id: str,
        oem_id: str,
        model: str,
        dev_name: str,
        latitude: float,
        longitude: float,
        mac: str,
        relay_state: int = 0,
    ) -> "TplinkShpMessage":
        """A sysinfo reply exposing geolocation in plaintext (Table 5)."""
        return cls(
            {
                "system": {
                    "get_sysinfo": {
                        "sw_ver": "1.5.4 Build 180815 Rel.121440",
                        "hw_ver": "1.0",
                        "model": model,
                        "deviceId": device_id,
                        "hwId": hw_id,
                        "oemId": oem_id,
                        "alias": alias,
                        "dev_name": dev_name,
                        "mac": mac,
                        "relay_state": relay_state,
                        "latitude": latitude,
                        "longitude": longitude,
                        "err_code": 0,
                    }
                }
            }
        )

    @classmethod
    def set_relay_state(cls, on: bool) -> "TplinkShpMessage":
        """The unauthenticated control command (§5.1 local-attacker threat)."""
        return cls({"system": {"set_relay_state": {"state": 1 if on else 0}}})

    @property
    def is_sysinfo_query(self) -> bool:
        system = self.body.get("system")
        return isinstance(system, dict) and system.get("get_sysinfo") == {}

    @property
    def sysinfo(self) -> Optional[Dict]:
        system = self.body.get("system")
        if not isinstance(system, dict):
            return None
        info = system.get("get_sysinfo")
        return info if isinstance(info, dict) and info else None
