"""DHCP codec (RFC 2131/2132).

§5.1: 86 devices request 30 different option types (including deprecated
ones like SMTP Server and Root Path) and "carelessly respond and expose"
hostnames and DHCP client versions.  The hostname option (12) and the
vendor class identifier (60, the "client version") are the leaks the
exposure analysis extracts; hostnames identify 67% of devices.
"""

from __future__ import annotations

import enum
import ipaddress
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.mac import MacAddress
from repro.net.guard import guarded_decode

DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68
MAGIC_COOKIE = b"\x63\x82\x53\x63"


class DhcpMessageType(enum.IntEnum):
    DISCOVER = 1
    OFFER = 2
    REQUEST = 3
    DECLINE = 4
    ACK = 5
    NAK = 6
    RELEASE = 7
    INFORM = 8


class DhcpOption(enum.IntEnum):
    """Option codes seen in the testbed's parameter-request lists."""

    PAD = 0
    SUBNET_MASK = 1
    TIME_OFFSET = 2
    ROUTER = 3
    TIME_SERVER = 4
    NAME_SERVER = 5  # deprecated IEN-116 name server (§5.1)
    DNS_SERVER = 6
    LOG_SERVER = 7
    LPR_SERVER = 9
    HOSTNAME = 12
    DOMAIN_NAME = 15
    ROOT_PATH = 17  # deprecated (§5.1)
    INTERFACE_MTU = 26
    BROADCAST_ADDRESS = 28
    NTP_SERVER = 42
    NETBIOS_NAME_SERVER = 44
    REQUESTED_IP = 50
    LEASE_TIME = 51
    MESSAGE_TYPE = 53
    SERVER_ID = 54
    PARAMETER_REQUEST_LIST = 55
    MAX_MESSAGE_SIZE = 57
    RENEWAL_TIME = 58
    REBINDING_TIME = 59
    VENDOR_CLASS = 60  # "DHCP client name and version" leak
    CLIENT_ID = 61
    SMTP_SERVER = 69  # deprecated standard requested by devices (§5.1)
    CLIENT_FQDN = 81
    DOMAIN_SEARCH = 119
    CLASSLESS_ROUTES = 121
    END = 255


_FIXED = struct.Struct("!BBBBIHH4s4s4s4s16s64s128s")


@dataclass
class DhcpMessage:
    """A BOOTP/DHCP message with TLV options."""

    op: int  # 1 = BOOTREQUEST, 2 = BOOTREPLY
    transaction_id: int
    client_mac: MacAddress
    client_ip: str = "0.0.0.0"
    your_ip: str = "0.0.0.0"
    server_ip: str = "0.0.0.0"
    options: Dict[int, bytes] = field(default_factory=dict)
    option_order: List[int] = field(default_factory=list)

    def __post_init__(self):
        self.client_mac = MacAddress(self.client_mac)
        if not self.option_order:
            self.option_order = list(self.options)

    def set_option(self, code: int, value: bytes) -> None:
        if code not in self.options:
            self.option_order.append(int(code))
        self.options[int(code)] = value

    def encode(self) -> bytes:
        fixed = _FIXED.pack(
            self.op,
            1,  # htype Ethernet
            6,  # hlen
            0,  # hops
            self.transaction_id,
            0,  # secs
            0,  # flags
            ipaddress.IPv4Address(self.client_ip).packed,
            ipaddress.IPv4Address(self.your_ip).packed,
            ipaddress.IPv4Address(self.server_ip).packed,
            b"\x00" * 4,  # giaddr
            self.client_mac.packed + b"\x00" * 10,
            b"\x00" * 64,  # sname
            b"\x00" * 128,  # file
        )
        out = bytearray(fixed + MAGIC_COOKIE)
        for code in self.option_order:
            value = self.options[code]
            out += bytes([code, len(value)]) + value
        out.append(DhcpOption.END)
        return bytes(out)

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "DhcpMessage":
        if len(data) < _FIXED.size + 4:
            raise ValueError(f"truncated DHCP message: {len(data)} bytes")
        fields = _FIXED.unpack_from(data)
        cookie_offset = _FIXED.size
        if data[cookie_offset : cookie_offset + 4] != MAGIC_COOKIE:
            raise ValueError("missing DHCP magic cookie")
        message = cls(
            op=fields[0],
            transaction_id=fields[4],
            client_mac=MacAddress(fields[11][:6]),
            client_ip=str(ipaddress.IPv4Address(fields[7])),
            your_ip=str(ipaddress.IPv4Address(fields[8])),
            server_ip=str(ipaddress.IPv4Address(fields[9])),
        )
        offset = cookie_offset + 4
        while offset < len(data):
            code = data[offset]
            if code == DhcpOption.END:
                break
            if code == DhcpOption.PAD:
                offset += 1
                continue
            if offset + 1 >= len(data):
                raise ValueError("truncated DHCP option header")
            length = data[offset + 1]
            value = data[offset + 2 : offset + 2 + length]
            if len(value) < length:
                raise ValueError("truncated DHCP option value")
            message.set_option(code, value)
            offset += 2 + length
        return message

    # -- typed accessors -------------------------------------------------------

    @property
    def message_type(self) -> Optional[DhcpMessageType]:
        raw = self.options.get(DhcpOption.MESSAGE_TYPE)
        if raw:
            try:
                return DhcpMessageType(raw[0])
            except ValueError:
                return None
        return None

    @property
    def hostname(self) -> Optional[str]:
        raw = self.options.get(DhcpOption.HOSTNAME)
        return raw.decode("utf-8", "replace") if raw else None

    @property
    def vendor_class(self) -> Optional[str]:
        raw = self.options.get(DhcpOption.VENDOR_CLASS)
        return raw.decode("utf-8", "replace") if raw else None

    @property
    def parameter_request_list(self) -> List[int]:
        raw = self.options.get(DhcpOption.PARAMETER_REQUEST_LIST, b"")
        return list(raw)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def discover(
        cls,
        mac,
        transaction_id: int,
        hostname: str = None,
        vendor_class: str = None,
        parameter_request: List[int] = None,
    ) -> "DhcpMessage":
        message = cls(op=1, transaction_id=transaction_id, client_mac=mac)
        message.set_option(DhcpOption.MESSAGE_TYPE, bytes([DhcpMessageType.DISCOVER]))
        message.set_option(DhcpOption.CLIENT_ID, b"\x01" + MacAddress(mac).packed)
        if hostname is not None:
            message.set_option(DhcpOption.HOSTNAME, hostname.encode("utf-8"))
        if vendor_class is not None:
            message.set_option(DhcpOption.VENDOR_CLASS, vendor_class.encode("utf-8"))
        if parameter_request:
            message.set_option(DhcpOption.PARAMETER_REQUEST_LIST, bytes(parameter_request))
        return message

    @classmethod
    def request(
        cls,
        mac,
        transaction_id: int,
        requested_ip: str,
        server_ip: str,
        hostname: str = None,
        vendor_class: str = None,
        parameter_request: List[int] = None,
    ) -> "DhcpMessage":
        message = cls(op=1, transaction_id=transaction_id, client_mac=mac)
        message.set_option(DhcpOption.MESSAGE_TYPE, bytes([DhcpMessageType.REQUEST]))
        message.set_option(DhcpOption.CLIENT_ID, b"\x01" + MacAddress(mac).packed)
        message.set_option(
            DhcpOption.REQUESTED_IP, ipaddress.IPv4Address(requested_ip).packed
        )
        message.set_option(DhcpOption.SERVER_ID, ipaddress.IPv4Address(server_ip).packed)
        if hostname is not None:
            message.set_option(DhcpOption.HOSTNAME, hostname.encode("utf-8"))
        if vendor_class is not None:
            message.set_option(DhcpOption.VENDOR_CLASS, vendor_class.encode("utf-8"))
        if parameter_request:
            message.set_option(DhcpOption.PARAMETER_REQUEST_LIST, bytes(parameter_request))
        return message

    @classmethod
    def reply(
        cls,
        to: "DhcpMessage",
        message_type: DhcpMessageType,
        your_ip: str,
        server_ip: str,
        router: str,
        subnet_mask: str = "255.255.255.0",
        dns_server: str = None,
        lease_time: int = 86400,
    ) -> "DhcpMessage":
        message = cls(
            op=2,
            transaction_id=to.transaction_id,
            client_mac=to.client_mac,
            your_ip=your_ip,
            server_ip=server_ip,
        )
        message.set_option(DhcpOption.MESSAGE_TYPE, bytes([message_type]))
        message.set_option(DhcpOption.SERVER_ID, ipaddress.IPv4Address(server_ip).packed)
        message.set_option(DhcpOption.LEASE_TIME, struct.pack("!I", lease_time))
        message.set_option(DhcpOption.SUBNET_MASK, ipaddress.IPv4Address(subnet_mask).packed)
        message.set_option(DhcpOption.ROUTER, ipaddress.IPv4Address(router).packed)
        if dns_server:
            message.set_option(DhcpOption.DNS_SERVER, ipaddress.IPv4Address(dns_server).packed)
        return message
