"""SSDP / UPnP discovery codec.

SSDP is HTTP-like text over UDP 1900.  §5.1: 32% of devices use it; 26
of 30 send M-SEARCH, 7 send NOTIFY, 9 respond to multicast searches.
Devices expose UUIDs, OS versions, and UPnP stack versions in the
SERVER/USN headers, and the device-description XML (fetched over HTTP
from the LOCATION URL) carries friendly names and serial numbers — the
Table 5 Amcrest example puts the MAC address in ``<serialNumber>``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional
from repro.net.guard import guarded_decode

SSDP_PORT = 1900
SSDP_GROUP_V4 = "239.255.255.250"

ST_ALL = "ssdp:all"
ST_ROOT_DEVICE = "upnp:rootdevice"
ST_IGD = "urn:schemas-upnp-org:device:InternetGatewayDevice:1"
ST_MEDIA_RENDERER = "urn:schemas-upnp-org:device:MediaRenderer:1"
ST_BASIC_DEVICE = "urn:schemas-upnp-org:device:Basic:1"
ST_DIAL = "urn:dial-multiscreen-org:service:dial:1"


class SsdpMethod(enum.Enum):
    MSEARCH = "M-SEARCH"
    NOTIFY = "NOTIFY"
    RESPONSE = "RESPONSE"


@dataclass
class SsdpMessage:
    """An SSDP M-SEARCH, NOTIFY, or 200 OK response."""

    method: SsdpMethod
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        if self.method is SsdpMethod.RESPONSE:
            start_line = "HTTP/1.1 200 OK"
        else:
            start_line = f"{self.method.value} * HTTP/1.1"
        lines = [start_line]
        lines.extend(f"{key}: {value}" for key, value in self.headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("utf-8")

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "SsdpMessage":
        text = data.decode("utf-8", "replace")
        lines = text.split("\r\n")
        if not lines or not lines[0]:
            raise ValueError("empty SSDP message")
        start = lines[0].strip()
        if start.startswith("M-SEARCH"):
            method = SsdpMethod.MSEARCH
        elif start.startswith("NOTIFY"):
            method = SsdpMethod.NOTIFY
        elif start.startswith("HTTP/1.1 200"):
            method = SsdpMethod.RESPONSE
        else:
            raise ValueError(f"not an SSDP message: {start!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line.strip():
                break
            key, sep, value = line.partition(":")
            if sep:
                headers[key.strip().upper()] = value.strip()
        return cls(method=method, headers=headers)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def msearch(cls, search_target: str = ST_ALL, mx: int = 3, user_agent: str = None) -> "SsdpMessage":
        headers = {
            "HOST": f"{SSDP_GROUP_V4}:{SSDP_PORT}",
            "MAN": '"ssdp:discover"',
            "MX": str(mx),
            "ST": search_target,
        }
        if user_agent:
            headers["USER-AGENT"] = user_agent
        return cls(SsdpMethod.MSEARCH, headers)

    @classmethod
    def notify(
        cls,
        location: str,
        notification_type: str,
        usn: str,
        server: str,
        host: str = f"{SSDP_GROUP_V4}:{SSDP_PORT}",
    ) -> "SsdpMessage":
        return cls(
            SsdpMethod.NOTIFY,
            {
                "HOST": host,
                "CACHE-CONTROL": "max-age=1800",
                "LOCATION": location,
                "NT": notification_type,
                "NTS": "ssdp:alive",
                "SERVER": server,
                "USN": usn,
            },
        )

    @classmethod
    def response(cls, location: str, search_target: str, usn: str, server: str) -> "SsdpMessage":
        return cls(
            SsdpMethod.RESPONSE,
            {
                "CACHE-CONTROL": "max-age=1800",
                "EXT": "",
                "LOCATION": location,
                "SERVER": server,
                "ST": search_target,
                "USN": usn,
            },
        )

    @property
    def search_target(self) -> Optional[str]:
        return self.headers.get("ST") or self.headers.get("NT")

    @property
    def usn(self) -> Optional[str]:
        return self.headers.get("USN")

    @property
    def server(self) -> Optional[str]:
        return self.headers.get("SERVER")

    @property
    def location(self) -> Optional[str]:
        return self.headers.get("LOCATION")

    def uuid(self) -> Optional[str]:
        """Extract the uuid:... token from the USN header, if present."""
        usn = self.usn
        if not usn or "uuid:" not in usn:
            return None
        token = usn.split("uuid:", 1)[1]
        return token.split(":", 1)[0]


def device_description_xml(
    friendly_name: str,
    manufacturer: str,
    model_name: str,
    udn: str,
    serial_number: str = "",
    services: List[str] = (),
    presentation_url: str = "",
) -> str:
    """Render the UPnP device-description document served at LOCATION.

    Matches the structure of the Table 5 Amcrest SSDP example, where the
    MAC address appears verbatim in ``<serialNumber>``.
    """
    service_xml = "\n".join(
        f"    <service><serviceType>{service}</serviceType></service>" for service in services
    )
    presentation = (
        f"  <presentationURL>{presentation_url}</presentationURL>\n" if presentation_url else ""
    )
    return (
        '<?xml version="1.0" ?>\n'
        '<root xmlns="urn:schemas-upnp-org:device-1-0">\n'
        " <device>\n"
        f"  <friendlyName>{friendly_name}</friendlyName>\n"
        f"  <manufacturer>{manufacturer}</manufacturer>\n"
        f"  <modelName>{model_name}</modelName>\n"
        f"  <serialNumber>{serial_number}</serialNumber>\n"
        f"  <UDN>uuid:{udn}</UDN>\n"
        f"{presentation}"
        "  <serviceList>\n"
        f"{service_xml}\n"
        "  </serviceList>\n"
        " </device>\n"
        "</root>\n"
    )
