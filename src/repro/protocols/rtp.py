"""RTP codec (RFC 3550).

RTP is used by 10% of devices for "real-time data exchanges and device
synchronization" — Amazon Echo's multi-room music runs RTP over
UDP:55444 (§4.1).  Appendix C.2 notes RTP is often misclassified because
it has no standard port and a binary payload; our nDPI-like classifier
reproduces that by using behavioural detection on the version bits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from repro.net.guard import guarded_decode

ECHO_MULTIROOM_PORT = 55444


@dataclass
class RtpPacket:
    """An RTP packet (version 2, no CSRC, no extensions)."""

    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    payload: bytes = b""
    marker: bool = False

    def encode(self) -> bytes:
        first = 0x80  # version 2, no padding, no extension, no CSRC
        second = (0x80 if self.marker else 0) | (self.payload_type & 0x7F)
        return (
            struct.pack(
                "!BBHII",
                first,
                second,
                self.sequence & 0xFFFF,
                self.timestamp & 0xFFFFFFFF,
                self.ssrc & 0xFFFFFFFF,
            )
            + self.payload
        )

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "RtpPacket":
        if len(data) < 12:
            raise ValueError(f"truncated RTP packet: {len(data)} bytes")
        first, second, sequence, timestamp, ssrc = struct.unpack_from("!BBHII", data)
        version = first >> 6
        if version != 2:
            raise ValueError(f"not RTPv2 (version={version})")
        csrc_count = first & 0x0F
        offset = 12 + csrc_count * 4
        return cls(
            payload_type=second & 0x7F,
            sequence=sequence,
            timestamp=timestamp,
            ssrc=ssrc,
            payload=data[offset:],
            marker=bool(second & 0x80),
        )


def looks_like_rtp(payload: bytes) -> bool:
    """Heuristic RTP detection (the behavioural check nDPI-style tools use)."""
    if len(payload) < 12:
        return False
    version_ok = payload[0] >> 6 == 2
    no_padding = not payload[0] & 0x20
    few_csrc = (payload[0] & 0x0F) <= 2
    # Static types 0-34 plus the dynamic range 96-111 (RFC 3551).
    payload_type = payload[1] & 0x7F
    pt_ok = payload_type <= 34 or 96 <= payload_type <= 111
    return version_ok and no_padding and few_csrc and pt_ok
