"""TLS record/handshake metadata codec.

§5.2 analyzes local TLS without decrypting it: protocol versions
(Google/Amazon use 1.2, Apple 1.3), certificate lifetimes (Google leaf
certs valid 20 years, Amazon self-signed 3 months with IP-address
common names, D-Link/SmartThings/Philips 20-28 years), mutual
authentication, and weak 64-122-bit keys on port 8009 (SWEET32).

We encode real TLS record framing (content type 22/23, version bytes)
and ClientHello/ServerHello version negotiation.  Certificates travel
as a compact JSON body inside the Certificate handshake message — the
*metadata* (issuer, subject, validity, key bits) is exactly what the
passive analysis needs, without reimplementing X.509 DER.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass, field, asdict
from typing import List, Optional
from repro.net.guard import guarded_decode


class TlsVersion(enum.IntEnum):
    TLS_1_0 = 0x0301
    TLS_1_1 = 0x0302
    TLS_1_2 = 0x0303
    TLS_1_3 = 0x0304

    @property
    def dotted(self) -> str:
        return {"TLS_1_0": "1.0", "TLS_1_1": "1.1", "TLS_1_2": "1.2", "TLS_1_3": "1.3"}[self.name]


class ContentType(enum.IntEnum):
    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


class HandshakeType(enum.IntEnum):
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    CERTIFICATE = 11


@dataclass
class CertificateInfo:
    """The certificate metadata the passive TLS analysis extracts."""

    subject_cn: str
    issuer_cn: str
    not_before: float  # unix seconds
    not_after: float
    key_bits: int = 2048
    self_signed: bool = False

    @property
    def validity_days(self) -> float:
        return (self.not_after - self.not_before) / 86400.0

    @property
    def validity_years(self) -> float:
        return self.validity_days / 365.25

    def to_der_like(self) -> bytes:
        return json.dumps(asdict(self), sort_keys=True).encode("utf-8")

    @classmethod
    def from_der_like(cls, data: bytes) -> "CertificateInfo":
        return cls(**json.loads(data.decode("utf-8")))


@dataclass
class TlsHandshake:
    """A ClientHello, ServerHello, or Certificate handshake message."""

    handshake_type: HandshakeType
    version: TlsVersion = TlsVersion.TLS_1_2
    certificates: List[CertificateInfo] = field(default_factory=list)

    def encode(self) -> bytes:
        if self.handshake_type is HandshakeType.CERTIFICATE:
            body = b"".join(
                struct.pack("!H", len(der := cert.to_der_like())) + der
                for cert in self.certificates
            )
        else:
            # legacy_version + 32-byte random (zeroed: content is irrelevant
            # to passive metadata analysis)
            body = struct.pack("!H", int(self.version)) + bytes(32)
        return struct.pack("!B", int(self.handshake_type)) + struct.pack("!I", len(body))[1:] + body

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "TlsHandshake":
        if len(data) < 4:
            raise ValueError("truncated TLS handshake")
        handshake_type = HandshakeType(data[0])
        length = int.from_bytes(data[1:4], "big")
        body = data[4 : 4 + length]
        if handshake_type is HandshakeType.CERTIFICATE:
            certificates = []
            offset = 0
            while offset + 2 <= len(body):
                (cert_len,) = struct.unpack_from("!H", body, offset)
                offset += 2
                certificates.append(CertificateInfo.from_der_like(body[offset : offset + cert_len]))
                offset += cert_len
            return cls(handshake_type, certificates=certificates)
        if len(body) < 2:
            raise ValueError("truncated hello body")
        (version,) = struct.unpack_from("!H", body)
        return cls(handshake_type, version=TlsVersion(version))


@dataclass
class TlsRecord:
    """A TLS record: 5-byte header + fragment."""

    content_type: ContentType
    version: TlsVersion
    fragment: bytes = b""

    def encode(self) -> bytes:
        return (
            struct.pack("!BHH", int(self.content_type), int(self.version), len(self.fragment))
            + self.fragment
        )

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "TlsRecord":
        if len(data) < 5:
            raise ValueError(f"truncated TLS record: {len(data)} bytes")
        content_type, version, length = struct.unpack_from("!BHH", data)
        return cls(
            content_type=ContentType(content_type),
            version=TlsVersion(version),
            fragment=data[5 : 5 + length],
        )

    @classmethod
    def client_hello(cls, version: TlsVersion) -> "TlsRecord":
        # Record-layer version stays 1.2 for TLS 1.3 (RFC 8446 §5.1).
        record_version = min(version, TlsVersion.TLS_1_2)
        return cls(
            ContentType.HANDSHAKE,
            record_version,
            TlsHandshake(HandshakeType.CLIENT_HELLO, version).encode(),
        )

    @classmethod
    def server_hello(cls, version: TlsVersion) -> "TlsRecord":
        record_version = min(version, TlsVersion.TLS_1_2)
        return cls(
            ContentType.HANDSHAKE,
            record_version,
            TlsHandshake(HandshakeType.SERVER_HELLO, version).encode(),
        )

    @classmethod
    def certificate(cls, certificates: List[CertificateInfo], version: TlsVersion) -> "TlsRecord":
        record_version = min(version, TlsVersion.TLS_1_2)
        return cls(
            ContentType.HANDSHAKE,
            record_version,
            TlsHandshake(HandshakeType.CERTIFICATE, version, list(certificates)).encode(),
        )

    @classmethod
    def application_data(cls, size: int, version: TlsVersion = TlsVersion.TLS_1_2) -> "TlsRecord":
        record_version = min(version, TlsVersion.TLS_1_2)
        return cls(ContentType.APPLICATION_DATA, record_version, bytes(size))

    def handshake(self) -> Optional[TlsHandshake]:
        if self.content_type is not ContentType.HANDSHAKE:
            return None
        try:
            return TlsHandshake.decode(self.fragment)
        except (ValueError, KeyError):
            return None


def iter_records(data: bytes):
    """Iterate TLS records in a reassembled TCP payload."""
    offset = 0
    while offset + 5 <= len(data):
        try:
            record = TlsRecord.decode(data[offset:])
        except ValueError:
            return
        yield record
        offset += 5 + len(record.fragment)
