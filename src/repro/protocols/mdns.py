"""mDNS (RFC 6762) helpers on top of the DNS codec.

mDNS is the workhorse of §5.1: 44% of testbed devices use it; hostnames
are "often constructed by appending unique identifiers such as MAC
addresses, device IDs, serial numbers", which is exactly what the §6.3
entropy analysis mines.  This module builds queries, responses, and full
service advertisements (PTR + SRV + TXT + A), including the
paper-documented naming schemes (Philips Hue embedding its MAC, Spotify
Connect ZeroConf URLs embedding MAC + device ID + session UUIDs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.mac import MacAddress
from repro.protocols.dns import DnsMessage, DnsQuestion, DnsRecord, DnsType

MDNS_PORT = 5353
MDNS_GROUP_V4 = "224.0.0.251"
MDNS_GROUP_V6 = "ff02::fb"

#: Service types observed in the testbed (§5.1): casting, printing,
#: platform services, streaming, IoT standards, networking protocols.
WELL_KNOWN_SERVICES = {
    "googlecast": "_googlecast._tcp.local",
    "viziocast": "_viziocast._tcp.local",
    "airplay": "_airplay._tcp.local",
    "raop": "_raop._tcp.local",
    "homekit": "_hap._tcp.local",
    "spotify-connect": "_spotify-connect._tcp.local",
    "ipp": "_ipp._tcp.local",
    "alexa": "_amzn-alexa._tcp.local",
    "matter": "_matter._tcp.local",
    "matter-commissionable": "_matterc._udp.local",
    "thread": "_meshcop._udp.local",
    "sleep-proxy": "_sleep-proxy._udp.local",
    "hue": "_hue._tcp.local",
    "companion-link": "_companion-link._tcp.local",
    "workstation": "_workstation._tcp.local",
}


def mdns_query(
    service_types: List[str],
    unicast_response: bool = False,
    transaction_id: int = 0,
) -> DnsMessage:
    """Build an mDNS PTR query for one or more service types."""
    message = DnsMessage(transaction_id=transaction_id)
    for service in service_types:
        message.questions.append(
            DnsQuestion(service, DnsType.PTR, unicast_response=unicast_response)
        )
    return message


@dataclass
class ServiceAdvertisement:
    """A complete mDNS service instance advertisement.

    ``instance_name`` is the (potentially identifier-bearing) instance
    label, e.g. ``Philips Hue - 685F61``; ``hostname`` is the A-record
    owner, e.g. ``Philips-hue.local``.
    """

    service_type: str
    instance_name: str
    hostname: str
    port: int
    address: str
    txt: Dict[str, str] = field(default_factory=dict)
    address_v6: Optional[str] = None

    @property
    def full_instance(self) -> str:
        return f"{self.instance_name}.{self.service_type}"

    def to_response(self, transaction_id: int = 0) -> DnsMessage:
        """Render as an authoritative mDNS response message."""
        message = DnsMessage(transaction_id=transaction_id, is_response=True, authoritative=True)
        message.answers.append(DnsRecord.ptr(self.service_type, self.full_instance))
        message.answers.append(DnsRecord.srv(self.full_instance, self.hostname, self.port))
        message.answers.append(DnsRecord.txt(self.full_instance, self.txt))
        message.additionals.append(DnsRecord.a(self.hostname, self.address))
        if self.address_v6:
            message.additionals.append(DnsRecord.aaaa(self.hostname, self.address_v6))
        return message

    @classmethod
    def from_response(cls, message: DnsMessage) -> List["ServiceAdvertisement"]:
        """Parse advertisements back out of a response message."""
        advertisements: List[ServiceAdvertisement] = []
        srv_by_name = {}
        txt_by_name = {}
        addr_by_host = {}
        addr6_by_host = {}
        for record in message.all_records:
            if record.rtype == DnsType.SRV:
                srv_by_name[record.name] = record.srv_target()
            elif record.rtype == DnsType.TXT:
                txt_by_name[record.name] = record.txt_entries()
            elif record.rtype == DnsType.A:
                addr_by_host[record.name] = record.address()
            elif record.rtype == DnsType.AAAA:
                addr6_by_host[record.name] = record.address()
        for record in message.all_records:
            if record.rtype != DnsType.PTR:
                continue
            instance = record.ptr_target()
            srv = srv_by_name.get(instance)
            if instance is None or srv is None:
                continue
            hostname, port = srv
            service_type = record.name
            label = instance[: -(len(service_type) + 1)] if instance.endswith(service_type) else instance
            advertisements.append(
                cls(
                    service_type=service_type,
                    instance_name=label,
                    hostname=hostname,
                    port=port,
                    address=addr_by_host.get(hostname, "0.0.0.0"),
                    txt=txt_by_name.get(instance, {}),
                    address_v6=addr6_by_host.get(hostname),
                )
            )
        return advertisements


def mdns_response(advertisements: List[ServiceAdvertisement]) -> DnsMessage:
    """Merge several advertisements into one response message."""
    message = DnsMessage(is_response=True, authoritative=True)
    for advertisement in advertisements:
        part = advertisement.to_response()
        message.answers.extend(part.answers)
        message.additionals.extend(part.additionals)
    return message


# -- paper-documented hostname construction schemes ---------------------------


def hue_instance_name(mac) -> str:
    """Philips Hue reveals its MAC in mDNS names: ``Philips Hue - 685F61``."""
    return f"Philips Hue - {MacAddress(mac).nic_suffix.replace(':', '').upper()}"


def spotify_connect_path(mac, device_id: str, session_uuid: str) -> str:
    """Spotify Connect ZeroConf .local URL embedding MAC + IDs (§5.1)."""
    compact = MacAddress(mac).compact()
    return f"/zc/{compact}/{device_id}/{session_uuid}"


def reverse_v6_name(mac) -> str:
    """The ip6.arpa reverse name derived from a MAC via EUI-64.

    Table 5 shows Philips Hue advertising
    ``1.6.F.5.8.6.E.F.F.F.8.8.7.1.2.0...ip6.arpa`` — the MAC nibbles
    reversed inside the SLAAC address.
    """
    from repro.net.ipv6 import link_local_from_mac
    import ipaddress

    address = ipaddress.IPv6Address(link_local_from_mac(mac))
    nibbles = address.exploded.replace(":", "")
    return ".".join(reversed(nibbles.upper())) + ".ip6.arpa"
