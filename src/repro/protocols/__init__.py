"""Application-layer protocol codecs.

Each module implements the real wire format (or, for proprietary
protocols, the format documented by the reverse-engineering projects the
paper cites: softScheck's TP-Link dissector, TinyTuya) so that captures
produced by the simulator can be classified and mined for identifier
exposure exactly like real traffic.
"""

from repro.protocols.dns import DnsMessage, DnsQuestion, DnsRecord, DnsType
from repro.protocols.mdns import (
    MDNS_GROUP_V4,
    MDNS_PORT,
    mdns_query,
    mdns_response,
    ServiceAdvertisement,
)
from repro.protocols.ssdp import SsdpMessage, SSDP_GROUP_V4, SSDP_PORT
from repro.protocols.dhcp import DhcpMessage, DhcpMessageType, DhcpOption
from repro.protocols.coap import CoapMessage, CoapCode, CoapType
from repro.protocols.netbios import NetbiosNsQuery, encode_netbios_name, decode_netbios_name
from repro.protocols.tplink_shp import (
    tplink_decrypt,
    tplink_encrypt,
    TplinkShpMessage,
    TPLINK_SHP_PORT,
)
from repro.protocols.tuyalp import TuyaLpMessage, TUYA_PORTS
from repro.protocols.http import HttpRequest, HttpResponse
from repro.protocols.tls import TlsRecord, TlsHandshake, CertificateInfo
from repro.protocols.rtp import RtpPacket
from repro.protocols.stun import StunMessage

__all__ = [
    "DnsMessage",
    "DnsQuestion",
    "DnsRecord",
    "DnsType",
    "MDNS_GROUP_V4",
    "MDNS_PORT",
    "mdns_query",
    "mdns_response",
    "ServiceAdvertisement",
    "SsdpMessage",
    "SSDP_GROUP_V4",
    "SSDP_PORT",
    "DhcpMessage",
    "DhcpMessageType",
    "DhcpOption",
    "CoapMessage",
    "CoapCode",
    "CoapType",
    "NetbiosNsQuery",
    "encode_netbios_name",
    "decode_netbios_name",
    "tplink_decrypt",
    "tplink_encrypt",
    "TplinkShpMessage",
    "TPLINK_SHP_PORT",
    "TuyaLpMessage",
    "TUYA_PORTS",
    "HttpRequest",
    "HttpResponse",
    "TlsRecord",
    "TlsHandshake",
    "CertificateInfo",
    "RtpPacket",
    "StunMessage",
]
