"""UPnP SOAP control (the HTTP.SOAP bar of Figure 2).

§5.2: "we detect 17 devices related to SSDP/UPnP services, which offer
control such as multi-screen casting, and could reveal user activities
within the home."  Control runs as SOAP-over-HTTP POSTs to the control
URL from the device description; the classic casting action is
AVTransport's ``SetAVTransportURI`` — whose body carries the media URL,
i.e. *what the household is watching*.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.protocols.http import HttpRequest, HttpResponse

AVTRANSPORT = "urn:schemas-upnp-org:service:AVTransport:1"
_ENVELOPE = (
    '<?xml version="1.0"?>\n'
    '<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/" '
    's:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/">\n'
    " <s:Body>\n{body}\n </s:Body>\n"
    "</s:Envelope>\n"
)
_ACTION_RE = re.compile(r"<u:(\w+)\s+xmlns:u=\"([^\"]+)\"")
_ARG_RE = re.compile(r"<(\w+)>([^<]*)</\1>")


@dataclass
class SoapAction:
    """One UPnP action invocation (or its response)."""

    service: str
    action: str
    arguments: Dict[str, str] = field(default_factory=dict)
    is_response: bool = False

    def body_xml(self) -> str:
        tag = f"{self.action}Response" if self.is_response else self.action
        args = "".join(
            f"\n   <{name}>{value}</{name}>" for name, value in self.arguments.items()
        )
        return f'  <u:{tag} xmlns:u="{self.service}">{args}\n  </u:{tag}>'

    def to_http_request(self, control_path: str = "/AVTransport/control") -> HttpRequest:
        body = _ENVELOPE.format(body=self.body_xml()).encode("utf-8")
        return HttpRequest(
            "POST",
            control_path,
            {
                "Content-Type": 'text/xml; charset="utf-8"',
                "SOAPACTION": f'"{self.service}#{self.action}"',
            },
            body,
        )

    def to_http_response(self) -> HttpResponse:
        response = SoapAction(self.service, self.action, dict(self.arguments), is_response=True)
        body = _ENVELOPE.format(body=response.body_xml()).encode("utf-8")
        return HttpResponse(200, "OK", {"Content-Type": 'text/xml; charset="utf-8"',
                                        "Server": "UPnP/1.0"}, body)

    @classmethod
    def from_http(cls, message) -> "SoapAction":
        """Parse an action out of an HttpRequest or HttpResponse."""
        text = message.body.decode("utf-8", "replace")
        match = _ACTION_RE.search(text)
        if match is None:
            raise ValueError("no SOAP action element in body")
        action, service = match.group(1), match.group(2)
        is_response = action.endswith("Response")
        if is_response:
            action = action[: -len("Response")]
        arguments = {
            name: value
            for name, value in _ARG_RE.findall(text)
            if name not in ("Envelope", "Body")
        }
        return cls(service=service, action=action, arguments=arguments,
                   is_response=is_response)


def set_av_transport_uri(media_url: str, instance_id: int = 0) -> SoapAction:
    """The casting action: tells a renderer what to play (§5.2's
    user-activity leak — the URL is the content being watched)."""
    return SoapAction(
        AVTRANSPORT,
        "SetAVTransportURI",
        {
            "InstanceID": str(instance_id),
            "CurrentURI": media_url,
            "CurrentURIMetaData": "",
        },
    )


def play(instance_id: int = 0) -> SoapAction:
    return SoapAction(AVTRANSPORT, "Play", {"InstanceID": str(instance_id), "Speed": "1"})


def extract_media_url(request: HttpRequest) -> Optional[str]:
    """What an on-path observer learns from a casting SOAP request."""
    if not request.is_soap:
        return None
    try:
        action = SoapAction.from_http(request)
    except ValueError:
        return None
    if action.action == "SetAVTransportURI":
        return action.arguments.get("CurrentURI")
    return None
