"""Minimal HTTP/1.1 request/response codec.

Plaintext HTTP is the most popular application-layer protocol in the
testbed (40% of devices, Fig. 2); §5.2 mines HTTP metadata: User-Agent
strings (only Google products and the LG TV send one), SOAP control
requests for SSDP/UPnP services, and server banners that identify
exploitable software versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from repro.net.guard import guarded_decode


def _encode_headers(headers: Dict[str, str]) -> str:
    return "".join(f"{key}: {value}\r\n" for key, value in headers.items())


def _decode_head(text: str) -> Tuple[str, Dict[str, str], str]:
    head, _, body = text.partition("\r\n\r\n")
    lines = head.split("\r\n")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        key, sep, value = line.partition(":")
        if sep:
            headers[key.strip().title()] = value.strip()
    return lines[0], headers, body


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def encode(self) -> bytes:
        headers = dict(self.headers)
        if self.body and "Content-Length" not in headers:
            headers["Content-Length"] = str(len(self.body))
        start = f"{self.method} {self.path} {self.version}\r\n"
        return (start + _encode_headers(headers) + "\r\n").encode("utf-8") + self.body

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "HttpRequest":
        text = data.decode("utf-8", "replace")
        start, headers, body = _decode_head(text)
        parts = start.split(" ", 2)
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError(f"not an HTTP request: {start!r}")
        return cls(
            method=parts[0],
            path=parts[1],
            headers=headers,
            body=body.encode("utf-8"),
            version=parts[2],
        )

    @property
    def user_agent(self) -> Optional[str]:
        return self.headers.get("User-Agent")

    @property
    def is_soap(self) -> bool:
        """True for UPnP SOAP control requests (SOAPACTION header)."""
        return any(key.upper() == "SOAPACTION" for key in self.headers)


@dataclass
class HttpResponse:
    status: int = 200
    reason: str = "OK"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def encode(self) -> bytes:
        headers = dict(self.headers)
        if "Content-Length" not in headers:
            headers["Content-Length"] = str(len(self.body))
        start = f"{self.version} {self.status} {self.reason}\r\n"
        return (start + _encode_headers(headers) + "\r\n").encode("utf-8") + self.body

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "HttpResponse":
        text = data.decode("utf-8", "replace")
        start, headers, body = _decode_head(text)
        parts = start.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ValueError(f"not an HTTP response: {start!r}")
        return cls(
            status=int(parts[1]),
            reason=parts[2] if len(parts) > 2 else "",
            headers=headers,
            body=body.encode("utf-8"),
            version=parts[0],
        )

    @property
    def server_banner(self) -> Optional[str]:
        """The Server header — what Nessus banner-grabbing collects (§5.2)."""
        return self.headers.get("Server")
