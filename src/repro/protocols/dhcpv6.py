"""DHCPv6 codec (RFC 8415) — Solicit/Advertise and the client-id leak.

Figure 2 shows DHCPv6 among the multicast protocols; IPv6-capable
devices solicit on ff02::1:2 and expose a DUID that commonly embeds the
MAC address (DUID-LL / DUID-LLT) — one more persistent-identifier leak.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.mac import MacAddress
from repro.net.guard import guarded_decode

DHCPV6_CLIENT_PORT = 546
DHCPV6_SERVER_PORT = 547
ALL_DHCP_RELAY_AGENTS = "ff02::1:2"


class Dhcpv6MessageType(enum.IntEnum):
    SOLICIT = 1
    ADVERTISE = 2
    REQUEST = 3
    REPLY = 7
    INFORMATION_REQUEST = 11


class Dhcpv6Option(enum.IntEnum):
    CLIENT_ID = 1
    SERVER_ID = 2
    ORO = 6  # option request option
    ELAPSED_TIME = 8
    DNS_SERVERS = 23
    FQDN = 39


def duid_ll(mac) -> bytes:
    """DUID-LL: type 3, hardware type 1 (Ethernet), the raw MAC."""
    return struct.pack("!HH", 3, 1) + MacAddress(mac).packed


def mac_from_duid(duid: bytes) -> Optional[MacAddress]:
    """Recover the MAC from a DUID-LL / DUID-LLT, if it embeds one."""
    if len(duid) < 4:
        return None
    duid_type, hardware = struct.unpack_from("!HH", duid)
    if hardware != 1:
        return None
    if duid_type == 3 and len(duid) >= 10:  # DUID-LL
        return MacAddress(duid[4:10])
    if duid_type == 1 and len(duid) >= 14:  # DUID-LLT (4-byte time first)
        return MacAddress(duid[8:14])
    return None


@dataclass
class Dhcpv6Message:
    """A DHCPv6 message: 1-byte type, 3-byte transaction id, TLV options."""

    message_type: Dhcpv6MessageType
    transaction_id: int  # 24 bits
    options: Dict[int, bytes] = field(default_factory=dict)

    def encode(self) -> bytes:
        out = bytearray(struct.pack("!I", (int(self.message_type) << 24) | (self.transaction_id & 0xFFFFFF)))
        for code, value in self.options.items():
            out += struct.pack("!HH", code, len(value)) + value
        return bytes(out)

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "Dhcpv6Message":
        if len(data) < 4:
            raise ValueError(f"truncated DHCPv6 message: {len(data)} bytes")
        (head,) = struct.unpack_from("!I", data)
        try:
            message_type = Dhcpv6MessageType(head >> 24)
        except ValueError as error:
            raise ValueError(f"unknown DHCPv6 message type {head >> 24}") from error
        message = cls(message_type=message_type, transaction_id=head & 0xFFFFFF)
        offset = 4
        while offset + 4 <= len(data):
            code, length = struct.unpack_from("!HH", data, offset)
            offset += 4
            if offset + length > len(data):
                raise ValueError("truncated DHCPv6 option")
            message.options[code] = data[offset : offset + length]
            offset += length
        if offset != len(data):
            raise ValueError("trailing bytes after DHCPv6 options")
        return message

    @classmethod
    def solicit(cls, mac, transaction_id: int, fqdn: str = "") -> "Dhcpv6Message":
        message = cls(Dhcpv6MessageType.SOLICIT, transaction_id & 0xFFFFFF)
        message.options[Dhcpv6Option.CLIENT_ID] = duid_ll(mac)
        message.options[Dhcpv6Option.ELAPSED_TIME] = b"\x00\x00"
        message.options[Dhcpv6Option.ORO] = struct.pack("!H", Dhcpv6Option.DNS_SERVERS)
        if fqdn:
            message.options[Dhcpv6Option.FQDN] = b"\x00" + fqdn.encode("utf-8")
        return message

    @property
    def client_mac(self) -> Optional[MacAddress]:
        duid = self.options.get(Dhcpv6Option.CLIENT_ID)
        return mac_from_duid(duid) if duid else None

    @property
    def fqdn(self) -> Optional[str]:
        raw = self.options.get(Dhcpv6Option.FQDN)
        return raw[1:].decode("utf-8", "replace") if raw and len(raw) > 1 else None
