"""RTSP codec (RFC 2326) with a minimal SDP body.

Cameras in the testbed expose RTSP on 554/8554 (§4.2's open-service
census and Figure 2's HTTP.RTSP bar); streaming interactions run a
DESCRIBE/SETUP/PLAY exchange followed by RTP media.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional
from repro.net.guard import guarded_decode

RTSP_PORT = 554

_METHODS = ("OPTIONS", "DESCRIBE", "SETUP", "PLAY", "PAUSE", "TEARDOWN")


def _encode_headers(headers: Dict[str, str]) -> str:
    return "".join(f"{key}: {value}\r\n" for key, value in headers.items())


def _decode_head(text: str):
    head, _, body = text.partition("\r\n\r\n")
    lines = head.split("\r\n")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        key, sep, value = line.partition(":")
        if sep:
            headers[key.strip().title()] = value.strip()
    return lines[0], headers, body


@dataclass
class RtspRequest:
    """An RTSP request (DESCRIBE rtsp://... RTSP/1.0)."""

    method: str
    url: str
    cseq: int = 1
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        headers = {"CSeq": str(self.cseq), **self.headers}
        start = f"{self.method} {self.url} RTSP/1.0\r\n"
        return (start + _encode_headers(headers) + "\r\n").encode("utf-8")

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "RtspRequest":
        start, headers, _body = _decode_head(data.decode("utf-8", "replace"))
        parts = start.split(" ", 2)
        if len(parts) != 3 or parts[2] != "RTSP/1.0" or parts[0] not in _METHODS:
            raise ValueError(f"not an RTSP request: {start!r}")
        cseq = int(headers.pop("Cseq", "1"))
        return cls(method=parts[0], url=parts[1], cseq=cseq, headers=headers)


@dataclass
class RtspResponse:
    """An RTSP response, optionally carrying an SDP description."""

    status: int = 200
    reason: str = "OK"
    cseq: int = 1
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        headers = {"CSeq": str(self.cseq), **self.headers}
        if self.body:
            headers.setdefault("Content-Type", "application/sdp")
            headers["Content-Length"] = str(len(self.body))
        start = f"RTSP/1.0 {self.status} {self.reason}\r\n"
        return (start + _encode_headers(headers) + "\r\n").encode("utf-8") + self.body

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "RtspResponse":
        start, headers, body = _decode_head(data.decode("utf-8", "replace"))
        parts = start.split(" ", 2)
        if len(parts) < 2 or parts[0] != "RTSP/1.0":
            raise ValueError(f"not an RTSP response: {start!r}")
        cseq = int(headers.pop("Cseq", "1"))
        return cls(status=int(parts[1]), reason=parts[2] if len(parts) > 2 else "",
                   cseq=cseq, headers=headers, body=body.encode("utf-8"))

    @classmethod
    def describe_reply(cls, cseq: int, camera_name: str, address: str) -> "RtspResponse":
        """A DESCRIBE reply whose SDP names the camera (one more leak)."""
        sdp = (
            "v=0\r\n"
            f"o=- 0 0 IN IP4 {address}\r\n"
            f"s={camera_name}\r\n"
            f"c=IN IP4 {address}\r\n"
            "m=video 0 RTP/AVP 96\r\n"
            "a=rtpmap:96 H264/90000\r\n"
        )
        return cls(cseq=cseq, body=sdp.encode("utf-8"))

    @property
    def sdp_session_name(self) -> Optional[str]:
        for line in self.body.decode("utf-8", "replace").splitlines():
            if line.startswith("s="):
                return line[2:]
        return None
