"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The registry is deliberately small and deterministic: metric families
are stored in insertion order, label sets are sorted tuples, and
histograms use *fixed* bucket edges chosen at creation time, so two
runs with the same seed export byte-identical JSON (modulo wall-clock
valued metrics, which instrumented code keeps out of the default set).

Naming follows the Prometheus conventions (``subsystem_name_unit``,
counters end in ``_total``); see ``docs/observability.md``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelValues = Tuple[Tuple[str, str], ...]

#: Default histogram bucket edges, in seconds — tuned for event-callback
#: and stage latencies (100ns .. 60s).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
)


def _freeze_labels(labels: Mapping[str, str]) -> LabelValues:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double-quote, and line feed must be escaped."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for char in it:
        if char != "\\":
            out.append(char)
            continue
        escaped = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(escaped, "\\" + escaped))
    return "".join(out)


def _format_labels(labels: LabelValues) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


class _Metric:
    """Shared family machinery: one named metric with labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def _sample_items(self) -> List[Tuple[LabelValues, object]]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _freeze_labels(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_freeze_labels(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def _sample_items(self):
        return sorted(self._values.items())


class Gauge(_Metric):
    """A value that can go up and down (queue depths, pool sizes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_freeze_labels(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _freeze_labels(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_freeze_labels(labels), 0.0)

    def _sample_items(self):
        return sorted(self._values.items())


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets  # per-edge, non-cumulative
        self.count = 0
        self.sum = 0.0


class Histogram(_Metric):
    """A fixed-bucket histogram with Prometheus ``le`` semantics.

    A sample lands in the first bucket whose upper edge is >= the value
    (edges are inclusive); values above the last edge only count toward
    the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        edges = tuple(float(edge) for edge in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram {name}: buckets must be sorted and unique")
        self.buckets = edges
        self._series: Dict[LabelValues, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _freeze_labels(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.sum += value
        for index, edge in enumerate(self.buckets):
            if value <= edge:
                series.bucket_counts[index] += 1
                break

    def count(self, **labels: str) -> int:
        series = self._series.get(_freeze_labels(labels))
        return series.count if series else 0

    def sum(self, **labels: str) -> float:
        series = self._series.get(_freeze_labels(labels))
        return series.sum if series else 0.0

    def cumulative_buckets(self, **labels: str) -> List[Tuple[float, int]]:
        """``[(edge, cumulative_count), ..., (inf, total)]``."""
        series = self._series.get(_freeze_labels(labels))
        if series is None:
            return [(edge, 0) for edge in self.buckets] + [(math.inf, 0)]
        out, running = [], 0
        for edge, bucket in zip(self.buckets, series.bucket_counts):
            running += bucket
            out.append((edge, running))
        out.append((math.inf, series.count))
        return out

    def _sample_items(self):
        return sorted(self._series.items())


class MetricsRegistry:
    """Holds metric families; supports child scoping and two exporters."""

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._metrics: Dict[str, _Metric] = {}

    # -- creation -----------------------------------------------------------------

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}_{name}" if self.prefix else name

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        qualified = self._qualify(name)
        existing = self._metrics.get(qualified)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {qualified!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(qualified, help, **kwargs)
        self._metrics[qualified] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def scoped(self, prefix: str) -> "MetricsRegistry":
        """A child view that prefixes names but stores into this registry."""
        child = MetricsRegistry.__new__(MetricsRegistry)
        child.prefix = self._qualify(prefix)
        child._metrics = self._metrics  # shared storage
        return child

    # -- access -------------------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterable[_Metric]:
        return iter(self._metrics.values())

    # -- JSON export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe snapshot keyed by metric name."""
        out: Dict[str, Dict[str, object]] = {}
        for metric in self._metrics.values():
            entry: Dict[str, object] = {"type": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["series"] = [
                    {
                        "labels": dict(labels),
                        "bucket_counts": list(series.bucket_counts),
                        "count": series.count,
                        "sum": series.sum,
                    }
                    for labels, series in metric._sample_items()
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(labels), "value": value}
                    for labels, value in metric._sample_items()
                ]
            out[metric.name] = entry
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, object]]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output (for round-trips)."""
        registry = cls()
        for name, entry in data.items():
            kind = entry.get("type")
            if kind == "counter":
                metric = registry.counter(name, str(entry.get("help", "")))
                for sample in entry.get("samples", []):
                    metric.inc(float(sample["value"]), **sample.get("labels", {}))
            elif kind == "gauge":
                metric = registry.gauge(name, str(entry.get("help", "")))
                for sample in entry.get("samples", []):
                    metric.set(float(sample["value"]), **sample.get("labels", {}))
            elif kind == "histogram":
                metric = registry.histogram(
                    name, str(entry.get("help", "")), buckets=entry["buckets"]
                )
                for series in entry.get("series", []):
                    key = _freeze_labels(series.get("labels", {}))
                    rebuilt = _HistogramSeries(len(metric.buckets))
                    rebuilt.bucket_counts = list(series["bucket_counts"])
                    rebuilt.count = int(series["count"])
                    rebuilt.sum = float(series["sum"])
                    metric._series[key] = rebuilt
        return registry

    # -- cross-registry merge -------------------------------------------------------

    def merge(self, other: "MetricsRegistry",
              extra_labels: Optional[Mapping[str, str]] = None) -> "MetricsRegistry":
        """Fold ``other``'s samples into this registry, exactly.

        The merge is **additive** for counters and histograms (values,
        bucket counts, counts and sums add per label set) and
        **last-write-wins** for gauges (``other``'s value replaces
        ours).  A metric present in both registries must agree on kind
        and — for histograms — bucket edges; anything else raises
        ``ValueError`` instead of silently mixing schemas.

        ``extra_labels`` are appended to every incoming sample's label
        set (the fleet uses ``{"from_cache": "true"}`` when replaying a
        snapshot served from the shard cache).  Merging is associative
        and commutative over counters and histograms, with the empty
        registry as identity — the property the fleet's any-worker-count
        equivalence rests on.
        """
        extra = _freeze_labels(extra_labels or {})
        for theirs in other._metrics.values():
            mine = self._metrics.get(theirs.name)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = Histogram(theirs.name, theirs.help, buckets=theirs.buckets)
                else:
                    mine = type(theirs)(theirs.name, theirs.help)
                self._metrics[theirs.name] = mine
            elif mine.kind != theirs.kind:
                raise ValueError(
                    f"cannot merge metric {theirs.name!r}: "
                    f"{mine.kind} != {theirs.kind}")
            if isinstance(theirs, Histogram):
                assert isinstance(mine, Histogram)
                if mine.buckets != theirs.buckets:
                    raise ValueError(
                        f"cannot merge histogram {theirs.name!r}: "
                        f"bucket edges differ ({mine.buckets} != {theirs.buckets})")
                for labels, series in theirs._series.items():
                    key = tuple(sorted(labels + extra))
                    target = mine._series.get(key)
                    if target is None:
                        target = mine._series[key] = _HistogramSeries(len(mine.buckets))
                    for index, bucket in enumerate(series.bucket_counts):
                        target.bucket_counts[index] += bucket
                    target.count += series.count
                    target.sum += series.sum
            elif isinstance(theirs, Gauge):
                for labels, value in theirs._values.items():
                    mine._values[tuple(sorted(labels + extra))] = value
            else:  # Counter
                for labels, value in theirs._values.items():
                    key = tuple(sorted(labels + extra))
                    mine._values[key] = mine._values.get(key, 0.0) + value
        return self

    # -- Prometheus text export -----------------------------------------------------

    def to_prometheus_text(self) -> str:
        """The classic ``# HELP`` / ``# TYPE`` exposition format."""
        lines: List[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for labels, series in metric._sample_items():
                    running = 0
                    for edge, bucket in zip(metric.buckets, series.bucket_counts):
                        running += bucket
                        le = _format_labels(labels + (("le", repr(edge)),))
                        lines.append(f"{metric.name}_bucket{le} {running}")
                    le = _format_labels(labels + (("le", "+Inf"),))
                    lines.append(f"{metric.name}_bucket{le} {series.count}")
                    suffix = _format_labels(labels)
                    lines.append(f"{metric.name}_sum{suffix} {series.sum!r}")
                    lines.append(f"{metric.name}_count{suffix} {series.count}")
            else:
                for labels, value in metric._sample_items():
                    lines.append(f"{metric.name}{_format_labels(labels)} {value!r}")
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Dict[LabelValues, float]]:
    """Parse exposition text back into ``{name: {labels: value}}``.

    Supports exactly what :meth:`MetricsRegistry.to_prometheus_text`
    emits — enough for lossless counter/gauge round-trip tests.  Label
    values are unescaped, so hostile values (backslashes, quotes,
    newlines, commas) survive the round trip.
    """
    import re

    pair_re = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')
    samples: Dict[str, Dict[LabelValues, float]] = {}
    for line in text.split("\n"):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, label_part = name_part.partition("{")
            label_part = label_part.rstrip("}")
            labels = [
                (match.group(1), _unescape_label_value(match.group(2)))
                for match in pair_re.finditer(label_part)
            ]
            key = tuple(sorted(labels))
        else:
            name, key = name_part, ()
        samples.setdefault(name, {})[key] = float(value_part)
    return samples
