"""The live event stream: schema-versioned NDJSON progress records.

Metrics answer "how much", traces answer "where did the time go" — the
event bus answers "what is happening *right now*".  Long runs (a
multi-hour fleet, a continuous-monitoring study) emit one JSON object
per line to a file or to stderr, so an operator can ``tail -f`` a
household run the way the paper's crowdsourced deployment demands:

.. code-block:: bash

    repro fleet --events-out events.ndjson     # file
    repro study --events-out -                 # stream to stderr

Every record carries ``{"v": SCHEMA_VERSION, "seq": N, "event": NAME,
"wall": unix-seconds, "pid": ...}`` plus event-specific fields; see
``docs/observability.md`` for the full schema.  Events emitted today:

* ``run_start`` / ``run_end`` — one pair per CLI run; ``run_end``
  always carries ``outcome`` (``ok`` / ``failed`` / ``interrupted``)
* ``stage_start`` / ``stage_end`` — per :data:`StudyPipeline.STAGES` entry
* ``shard_queued`` / ``shard_running`` / ``shard_cached`` /
  ``shard_done`` / ``shard_failed`` — the fleet shard lifecycle
* ``shard_retry`` / ``shard_quarantined`` / ``watchdog_timeout`` /
  ``run_interrupted`` — the fleet supervision lifecycle (retries,
  poison quarantine, hung-worker reaping, graceful shutdown)
* ``fault_injected`` — one per chaos action (kind-labelled)
* ``analysis_failed`` — one per isolated analysis crash
* ``heartbeat`` — periodic liveness with RSS/CPU from ``/proc/self``

In-process consumers (the ``repro fleet`` progress line) subscribe with
:meth:`EventBus.subscribe`; the NDJSON sink and subscribers see the
same records.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, TextIO

#: Bump when a record's required fields change shape.
SCHEMA_VERSION = 1

#: Minimum wall seconds between two heartbeat records (anti-spam: the
#: simulator hook fires every few thousand events, which can be far
#: more often than once a second on a fast run).
HEARTBEAT_MIN_INTERVAL = float(os.environ.get("REPRO_HEARTBEAT_SECONDS", "1.0"))


def process_stats() -> Dict[str, float]:
    """Best-effort RSS (current + peak) and CPU of the current process.

    Reads ``/proc/self/status`` (``VmRSS`` current, ``VmHWM`` peak) and
    ``/proc/self/stat`` (utime+stime) on Linux; falls back to
    ``resource.getrusage`` elsewhere.  ``ru_maxrss`` is a *peak*, so the
    fallback reports it as ``rss_peak_bytes`` — never as the current
    ``rss_bytes``, which stays 0.0 when unknowable.  Always returns all
    three keys.
    """
    rss_bytes = 0.0
    rss_peak_bytes = 0.0
    cpu_seconds = 0.0
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    rss_bytes = float(line.split()[1]) * 1024.0
                elif line.startswith("VmHWM:"):
                    rss_peak_bytes = float(line.split()[1]) * 1024.0
        with open("/proc/self/stat", "r", encoding="ascii") as handle:
            # Field 2 is ``(comm)`` and may contain spaces; split after
            # the closing paren.  utime/stime are fields 14/15 (1-based).
            fields = handle.read().rpartition(")")[2].split()
            ticks = float(fields[11]) + float(fields[12])
            cpu_seconds = ticks / os.sysconf("SC_CLK_TCK")
    except (OSError, IndexError, ValueError):
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF)
            # ru_maxrss is kilobytes on Linux, bytes on macOS.
            scale = 1.0 if sys.platform == "darwin" else 1024.0
            rss_peak_bytes = float(usage.ru_maxrss) * scale
            cpu_seconds = usage.ru_utime + usage.ru_stime
        except Exception:  # pragma: no cover - platform without resource
            pass
    return {"rss_bytes": rss_bytes, "rss_peak_bytes": rss_peak_bytes,
            "cpu_seconds": cpu_seconds}


class EventBus:
    """Emits schema-versioned progress records to a sink + subscribers.

    Thread-safe: the fleet's completion callbacks and the pipeline's
    analysis fan-out may emit concurrently; ``seq`` is totally ordered
    and each NDJSON line is written atomically under the bus lock.
    """

    enabled = True

    def __init__(self, sink: Optional[TextIO] = None, *,
                 owns_sink: bool = False,
                 clock: Callable[[], float] = time.time):
        self._sink = sink
        self._owns_sink = owns_sink
        self._clock = clock
        self._subscribers: List[Callable[[Dict[str, object]], None]] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._last_heartbeat = 0.0
        self.closed = False
        #: Filesystem path behind the sink, when there is one — set by
        #: :func:`open_event_stream` so the fleet can hand the same
        #: NDJSON file to worker processes (append mode).
        self.path: Optional[str] = None

    def subscribe(self, callback: Callable[[Dict[str, object]], None]) -> None:
        """Register an in-process consumer; called with each record."""
        self._subscribers.append(callback)

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        """Emit one record; returns it (useful in tests)."""
        with self._lock:
            self._seq += 1
            record: Dict[str, object] = {
                "v": SCHEMA_VERSION,
                "seq": self._seq,
                "event": event,
                "wall": round(self._clock(), 6),
                "pid": os.getpid(),
            }
            record.update(fields)
            if self._sink is not None and not self.closed:
                try:
                    self._sink.write(json.dumps(record, sort_keys=True,
                                                default=str) + "\n")
                    self._sink.flush()
                except (OSError, ValueError):
                    # A closed/full sink must never take the run down.
                    self._sink = None
        for callback in self._subscribers:
            callback(record)
        return record

    def heartbeat(self, **fields: object) -> Optional[Dict[str, object]]:
        """A throttled liveness record with process RSS/CPU attached.

        Returns ``None`` when suppressed by the minimum interval.  The
        throttle check-and-update runs under the bus lock so concurrent
        emitters cannot both pass the interval gate.
        """
        now = self._clock()
        with self._lock:
            if now - self._last_heartbeat < HEARTBEAT_MIN_INTERVAL:
                return None
            self._last_heartbeat = now
        stats = process_stats()
        stats.update(fields)
        return self.emit("heartbeat", **stats)

    def close(self) -> None:
        """Flush and (when owned) close the sink; further emits drop."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            if self._sink is not None:
                try:
                    self._sink.flush()
                    if self._owns_sink:
                        self._sink.close()
                except (OSError, ValueError):
                    pass
                self._sink = None


class NullEventBus:
    """API-compatible bus that records nothing (observability off)."""

    enabled = False
    closed = True

    def subscribe(self, callback) -> None:
        return None

    def emit(self, event: str, **fields: object) -> None:
        return None

    def heartbeat(self, **fields: object) -> None:
        return None

    def close(self) -> None:
        return None


#: The do-nothing bus installed on :data:`repro.obs.NULL_OBS`.
NULL_EVENT_BUS = NullEventBus()


def open_event_stream(path: Optional[str], append: bool = False) -> EventBus:
    """An :class:`EventBus` writing NDJSON to ``path``.

    ``"-"`` streams to stderr (shared with logs — records are
    line-atomic, so the interleaving stays parseable); any other path
    is opened for writing and owned (closed) by the bus.  ``None``
    yields a sink-less bus: records still reach subscribers.

    ``append=True`` opens the file in append mode — how fleet *worker*
    processes join the parent's stream: each flushed line is one small
    ``O_APPEND`` write, so lines from different pids interleave whole.
    ``seq`` is per-bus (restarts in each worker); order records across
    processes by ``wall`` + ``pid``, not ``seq``.
    """
    if path is None:
        return EventBus()
    if path == "-":
        return EventBus(sink=sys.stderr, owns_sink=False)
    if not append:
        # Truncate, then reopen with O_APPEND: the parent's own writes
        # must also be append-positioned, or a worker's appended lines
        # would sit past the parent's file offset and be overwritten by
        # the parent's next record.
        open(path, "w", encoding="utf-8").close()
    bus = EventBus(sink=open(path, "a", encoding="utf-8"), owns_sink=True)
    bus.path = path
    return bus
