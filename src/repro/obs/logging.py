"""Structured logging: key=value or JSON lines, per-subsystem levels.

Deliberately not the stdlib ``logging`` module: the simulator needs a
logger whose timestamps can follow the *simulated* clock, whose output
is deterministic enough to diff between runs, and whose disabled path
is a single integer comparison.

Levels are configured from the environment or the CLI:

* ``REPRO_LOG_LEVEL=debug`` — the default level for every subsystem;
* ``REPRO_LOG=sim=debug,scan=warning`` — per-subsystem overrides.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Dict, Optional, TextIO

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 99}
LEVEL_NAMES = {value: name for name, value in LEVELS.items()}


def _parse_level(name: str) -> int:
    try:
        return LEVELS[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r}; choose from {', '.join(LEVELS)}"
        ) from None


class LogManager:
    """Owns the sink, the format, and every subsystem's threshold."""

    def __init__(
        self,
        default_level: str = "warning",
        fmt: str = "kv",
        stream: Optional[TextIO] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if fmt not in ("kv", "json"):
            raise ValueError(f"unknown log format {fmt!r} (use 'kv' or 'json')")
        self.default_level = _parse_level(default_level)
        self.fmt = fmt
        self.stream = stream
        self.clock = clock
        self._levels: Dict[str, int] = {}
        self._loggers: Dict[str, StructuredLogger] = {}

    @classmethod
    def from_env(cls, default_level: Optional[str] = None, **kwargs) -> "LogManager":
        level = default_level or os.environ.get("REPRO_LOG_LEVEL", "warning")
        manager = cls(default_level=level, **kwargs)
        spec = os.environ.get("REPRO_LOG", "")
        for item in spec.split(","):
            if not item.strip():
                continue
            subsystem, _, name = item.partition("=")
            if name:
                manager.set_level(name.strip(), subsystem.strip())
        return manager

    def set_level(self, level: str, subsystem: Optional[str] = None) -> None:
        threshold = _parse_level(level)
        if subsystem is None:
            self.default_level = threshold
        else:
            self._levels[subsystem] = threshold

    def level_of(self, subsystem: str) -> int:
        return self._levels.get(subsystem, self.default_level)

    def logger(self, subsystem: str) -> "StructuredLogger":
        existing = self._loggers.get(subsystem)
        if existing is None:
            existing = self._loggers[subsystem] = StructuredLogger(subsystem, self)
        return existing

    # -- emission -------------------------------------------------------------------

    def emit(self, subsystem: str, level: int, event: str, fields: Dict[str, object]) -> None:
        stream = self.stream if self.stream is not None else sys.stderr
        timestamp = self.clock() if self.clock is not None else None
        if self.fmt == "json":
            record = {"level": LEVEL_NAMES.get(level, str(level)),
                      "subsystem": subsystem, "event": event}
            if timestamp is not None:
                record["sim_time"] = round(timestamp, 6)
            record.update(fields)
            stream.write(json.dumps(record, sort_keys=True, default=str) + "\n")
            return
        parts = [LEVEL_NAMES.get(level, str(level)).upper(), subsystem, event]
        if timestamp is not None:
            parts.insert(0, f"t={timestamp:.3f}")
        for key in sorted(fields):
            value = fields[key]
            text = str(value)
            if " " in text or "=" in text:
                text = json.dumps(text)
            parts.append(f"{key}={text}")
        stream.write(" ".join(parts) + "\n")


class StructuredLogger:
    """A named logger; all state lives in the manager."""

    __slots__ = ("subsystem", "manager")

    def __init__(self, subsystem: str, manager: LogManager):
        self.subsystem = subsystem
        self.manager = manager

    def is_enabled(self, level: str) -> bool:
        return _parse_level(level) >= self.manager.level_of(self.subsystem)

    def _log(self, level: int, event: str, fields: Dict[str, object]) -> None:
        if level >= self.manager.level_of(self.subsystem):
            self.manager.emit(self.subsystem, level, event, fields)

    def debug(self, event: str, **fields: object) -> None:
        self._log(10, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log(20, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log(30, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log(40, event, fields)


class NullLogger:
    """Logger handed out when observability is off: every call no-ops."""

    __slots__ = ()

    def is_enabled(self, level: str) -> bool:
        return False

    def debug(self, event: str, **fields: object) -> None:
        return None

    info = warning = error = debug


class NullLogManager:
    """Manager that only ever hands out :class:`NullLogger`."""

    _NULL = NullLogger()

    def logger(self, subsystem: str) -> NullLogger:
        return self._NULL

    def set_level(self, level: str, subsystem: Optional[str] = None) -> None:
        return None
