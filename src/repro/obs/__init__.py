"""``repro.obs`` — the observability layer: metrics, traces, logs.

Quick start::

    from repro import obs

    context = obs.enable_observability(log_level="info", install=True)
    pipeline = StudyPipeline(obs=context)
    report = pipeline.run()
    context.metrics.to_json()                  # metrics snapshot
    context.tracer.write_chrome_trace("t.json")  # chrome://tracing file

Everything defaults to the no-op null backend; see
``docs/observability.md`` for conventions and the instrumentation map.
"""

from repro.obs.context import (
    NULL_OBS,
    NullMetricsRegistry,
    Observability,
    enable_observability,
    get_obs,
    set_obs,
    use_obs,
)
from repro.obs.events import (
    NULL_EVENT_BUS,
    EventBus,
    NullEventBus,
    open_event_stream,
    process_stats,
)
from repro.obs.instrument import counted, timed
from repro.obs.logging import LogManager, NullLogger, StructuredLogger
from repro.obs.profile import (
    DEFAULT_PROFILE_HZ,
    NULL_PROFILER,
    NullProfiler,
    Profile,
    ProfileError,
    SamplingProfiler,
    SpanResourceProbe,
    span_resource_table,
    write_profile_outputs,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.snapshot import ObsSnapshot, ObsSnapshotError
from repro.obs.tracing import NullTracer, Span, Tracer

__all__ = [
    "NULL_EVENT_BUS",
    "EventBus",
    "NullEventBus",
    "ObsSnapshot",
    "ObsSnapshotError",
    "open_event_stream",
    "process_stats",
    "NULL_OBS",
    "NullMetricsRegistry",
    "Observability",
    "enable_observability",
    "get_obs",
    "set_obs",
    "use_obs",
    "counted",
    "timed",
    "LogManager",
    "NullLogger",
    "StructuredLogger",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "DEFAULT_PROFILE_HZ",
    "NULL_PROFILER",
    "NullProfiler",
    "Profile",
    "ProfileError",
    "SamplingProfiler",
    "SpanResourceProbe",
    "span_resource_table",
    "write_profile_outputs",
    "NullTracer",
    "Span",
    "Tracer",
]
