"""Span-based tracing over the simulated *and* the wall clock.

Every span records two time axes:

* **sim time** — ``Simulator.now`` at entry/exit, so a trace shows where
  the virtual campaign spent its simulated hours, and
* **wall time** — ``time.perf_counter()`` at entry/exit, so the same
  trace shows where the host CPU actually went.

Spans nest via a context-manager API::

    with tracer.span("passive_capture", device="echo-1"):
        ...

and export either as a JSON tree (deterministic when wall fields are
excluded) or as a Chrome ``trace_event`` file loadable in
``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional


class Span:
    """One timed operation; forms a tree through ``parent``/``children``."""

    __slots__ = (
        "name", "attrs", "parent", "children",
        "sim_start", "sim_end", "wall_start", "wall_end", "status",
    )

    def __init__(self, name: str, attrs: Dict[str, object], parent: Optional["Span"],
                 sim_start: Optional[float], wall_start: float):
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.children: List["Span"] = []
        self.sim_start = sim_start
        self.sim_end: Optional[float] = None
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None
        self.status = "ok"

    @property
    def sim_duration(self) -> Optional[float]:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> Optional[float]:
        if self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def to_dict(self, include_wall: bool = True) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "attrs": dict(self.attrs),
            "status": self.status,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "sim_duration": self.sim_duration,
            "children": [child.to_dict(include_wall) for child in self.children],
        }
        if include_wall:
            out["wall_start"] = self.wall_start
            out["wall_end"] = self.wall_end
            out["wall_duration"] = self.wall_duration
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object],
                  parent: Optional["Span"] = None) -> "Span":
        """Rebuild a span (sub)tree from :meth:`to_dict` output."""
        span = cls(
            name=str(data["name"]),
            attrs=dict(data.get("attrs", {})),
            parent=parent,
            sim_start=data.get("sim_start"),
            wall_start=float(data.get("wall_start") or 0.0),
        )
        span.sim_end = data.get("sim_end")
        span.wall_end = data.get("wall_end")
        span.status = str(data.get("status", "ok"))
        span.children = [
            cls.from_dict(child, parent=span)
            for child in data.get("children", [])
        ]
        return span


class Tracer:
    """Records a forest of spans; one instance per observed run.

    Thread-aware: the open-span stack is thread-local, so concurrent
    workers (e.g. ``StudyPipeline``'s analysis fan-out) can each open
    spans without corrupting one another's nesting.  A worker span nests
    under a span owned by another thread by passing it explicitly as
    ``_parent``.
    """

    enabled = True

    def __init__(self, sim_clock: Optional[Callable[[], float]] = None,
                 wall_clock: Callable[[], float] = time.perf_counter):
        self._sim_clock = sim_clock
        self._wall_clock = wall_clock
        self._wall_epoch = wall_clock()
        self.roots: List[Span] = []
        self._local = threading.local()
        self._roots_lock = threading.Lock()
        #: thread ident -> that thread's open-span stack (the same list
        #: object as its ``_local.stack``); lets the sampling profiler
        #: attribute another thread's samples to its innermost span.
        self._thread_stacks: Dict[int, List[Span]] = {}
        #: Optional per-span resource accounting hook (see
        #: :class:`repro.obs.profile.SpanResourceProbe`); ``None`` — the
        #: default — leaves span entry/exit byte-identical to an
        #: unprofiled build.
        self.resource_probe = None

    def set_sim_clock(self, sim_clock: Optional[Callable[[], float]]) -> None:
        """Late-bind the simulated clock (the Simulator is often built
        after the tracer, e.g. inside ``StudyPipeline.build``)."""
        self._sim_clock = sim_clock

    def _sim_now(self) -> Optional[float]:
        return self._sim_clock() if self._sim_clock is not None else None

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            self._thread_stacks[threading.get_ident()] = stack
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span *on the calling thread*."""
        stack = self._stack
        return stack[-1] if stack else None

    def active_span_name(self, thread_id: int) -> Optional[str]:
        """The innermost open span's name on ``thread_id``, or ``None``.

        Called from the profiler's sampler thread; reading another
        thread's stack is a GIL-atomic list peek, never a mutation.
        """
        stack = self._thread_stacks.get(thread_id)
        if not stack:
            return None
        try:
            return stack[-1].name
        except IndexError:  # pragma: no cover - popped between checks
            return None

    @contextmanager
    def span(self, name: str, _parent: Optional[Span] = None,
             **attrs: object) -> Iterator[Span]:
        """Open a span nested under the calling thread's current span.

        ``_parent`` overrides the implicit nesting — used by worker
        threads to attach their spans under a coordinator-owned span.
        """
        parent = _parent if _parent is not None else self.current
        record = Span(name, dict(attrs), parent, self._sim_now(), self._wall_clock())
        if parent is None:
            with self._roots_lock:
                self.roots.append(record)
        else:
            parent.children.append(record)  # list.append is atomic (GIL)
        stack = self._stack
        stack.append(record)
        probe = self.resource_probe
        token = probe.enter() if probe is not None else None
        try:
            yield record
        except BaseException:
            record.status = "error"
            raise
        finally:
            record.sim_end = self._sim_now()
            # A span opened before the sim clock was installed (e.g. the
            # pipeline's build stage, which creates the Simulator that
            # *becomes* the clock) is attributed zero sim time up to the
            # clock's appearance rather than staying clockless.
            if record.sim_start is None and record.sim_end is not None:
                record.sim_start = record.sim_end
            record.wall_end = self._wall_clock()
            if token is not None:
                try:
                    probe.exit(token, record)
                except Exception:  # noqa: BLE001 - accounting never kills work
                    pass
            stack.pop()

    # -- queries ------------------------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        """All finished-or-open spans, depth-first in start order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> List[Span]:
        return [span for span in self.iter_spans() if span.name == name]

    # -- export / absorb ----------------------------------------------------------

    def to_tree(self, include_wall: bool = True) -> List[Dict[str, object]]:
        return [root.to_dict(include_wall) for root in self.roots]

    def export_spans(self, include_wall: bool = True) -> List[Dict[str, object]]:
        """The span forest as plain dicts — the ``ObsSnapshot`` payload
        a fleet worker ships back across the process boundary."""
        return self.to_tree(include_wall)

    def absorb(self, spans: List[Dict[str, object]],
               parent: Optional[Span] = None,
               extra_attrs: Optional[Dict[str, object]] = None) -> List[Span]:
        """Graft exported span trees into this tracer.

        Rebuilt roots attach under ``parent`` when given (the fleet
        nests worker spans under its ``fleet.run`` span), else become
        new roots.  ``extra_attrs`` are stamped onto each absorbed root
        (e.g. ``shard`` index, ``from_cache``).  Wall timestamps keep
        the exporting process's ``perf_counter`` epoch; compare
        durations, not absolute wall positions, across processes.
        """
        absorbed: List[Span] = []
        for data in spans:
            span = Span.from_dict(data, parent=parent)
            if extra_attrs:
                span.attrs.update(extra_attrs)
            if parent is None:
                with self._roots_lock:
                    self.roots.append(span)
            else:
                parent.children.append(span)
            absorbed.append(span)
        return absorbed

    def to_json(self, include_wall: bool = True, indent: int = 2) -> str:
        return json.dumps(self.to_tree(include_wall), indent=indent, sort_keys=True)

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome ``trace_event`` "complete" (ph=X) events, wall-clock
        timeline, with sim-time bounds attached as event args."""
        events: List[Dict[str, object]] = []
        for span in self.iter_spans():
            wall_end = span.wall_end if span.wall_end is not None else self._wall_clock()
            args = dict(span.attrs)
            args["sim_start"] = span.sim_start
            args["sim_end"] = span.sim_end
            args["status"] = span.status
            events.append({
                "name": span.name,
                "ph": "X",
                "cat": "repro",
                "pid": 1,
                "tid": 1,
                "ts": (span.wall_start - self._wall_epoch) * 1e6,
                "dur": (wall_end - span.wall_start) * 1e6,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2)

    def write_json(self, path, include_wall: bool = True) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(include_wall))


class NullSpan:
    """The do-nothing span the null tracer hands out."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, object] = {}
    children: List[Span] = []
    status = "ok"
    sim_duration = None
    wall_duration = None

    def set_attr(self, key: str, value: object) -> None:
        return None


_NULL_SPAN = NullSpan()


class NullTracer:
    """API-compatible tracer that records nothing (observability off)."""

    enabled = False
    roots: List[Span] = []
    resource_probe = None

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[NullSpan]:
        yield _NULL_SPAN

    def set_sim_clock(self, sim_clock) -> None:
        return None

    def active_span_name(self, thread_id: int) -> None:
        return None

    @property
    def current(self) -> None:
        return None

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []

    def to_tree(self, include_wall: bool = True) -> List[Dict[str, object]]:
        return []

    def export_spans(self, include_wall: bool = True) -> List[Dict[str, object]]:
        return []

    def absorb(self, spans, parent=None, extra_attrs=None) -> List[Span]:
        return []

    def to_chrome_trace(self) -> Dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
