"""Continuous profiling: span-attributed sampling + per-span resources.

Two instruments, one question — *which frames burned the time and which
stage allocated the memory*:

* :class:`SamplingProfiler` — a background timer thread walking
  ``sys._current_frames()`` at a configurable rate (default
  :data:`DEFAULT_PROFILE_HZ`).  Every sample is attributed to the
  tracer span currently open **on the sampled thread** (via
  :meth:`Tracer.active_span_name`), so the resulting profile is grouped
  by pipeline stage / analysis / shard out of the box.  Samples
  accumulate into a :class:`Profile`, which exports as collapsed-stack
  flamegraph text (``flamegraph.pl`` / ``inferno`` input) and as
  speedscope JSON (https://www.speedscope.app).

* :class:`SpanResourceProbe` — deterministic per-span resource
  accounting hooked into :meth:`Tracer.span`: thread CPU time
  (``time.thread_time``), GC collection counts, and — when tracemalloc
  accounting is enabled via ``REPRO_PROFILE_MALLOC=1`` — allocation
  delta and peak, all recorded as span attributes
  (``cpu_seconds``, ``gc_collections``, ``mem_alloc_bytes``,
  ``mem_peak_bytes``).

The overhead contract: with profiling **off** (the default) nothing in
this module runs — no probe on the tracer, no sampler thread, no
``profile`` key in any snapshot — so every artifact stays byte-identical
to an unprofiled build.  With profiling **on**, the sampler costs one
frame walk per tick and the probe a few clock reads per span; tracemalloc
(the expensive part) stays opt-in.  ``benchmarks/bench_decode_throughput
--smoke --profile`` pins the slowdown bound in CI.

Fleet integration: a worker's :class:`Profile` rides home inside its
:class:`~repro.obs.snapshot.ObsSnapshot` and merges additively into the
parent's profiler in shard-index order, so a multi-process fleet run
produces one fleet-wide hot-path table — and cache hits replay their
stored profile exactly, the same way cached metrics replay.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

#: Default sampling rate (samples/second).  Prime, so the sampler does
#: not phase-lock with second-aligned periodic work.
DEFAULT_PROFILE_HZ = 97.0

#: Bump when the serialized profile payload changes shape.
PROFILE_SCHEMA_VERSION = 1

#: Span bucket for samples taken on threads with no open span.
UNATTRIBUTED = "(no-span)"

#: Frames kept per sampled stack (leaf-most frames win on overflow).
MAX_STACK_DEPTH = 64


class ProfileError(ValueError):
    """A profile payload that cannot be interpreted (wrong schema)."""


_frame_labels: Dict[Tuple[str, str], str] = {}


def _frame_label(code) -> str:
    """``path/under/repro.py:function`` for one code object, cached."""
    key = (code.co_filename, code.co_name)
    label = _frame_labels.get(key)
    if label is None:
        parts = code.co_filename.replace("\\", "/").split("/")
        if "repro" in parts:
            short = "/".join(parts[parts.index("repro"):])
        else:
            short = parts[-1] if parts else code.co_filename
        label = f"{short}:{code.co_name}"
        _frame_labels[key] = label
    return label


def collect_stack(frame, max_depth: int = MAX_STACK_DEPTH) -> List[str]:
    """Root-first frame labels for one thread's current frame."""
    leaf_first: List[str] = []
    while frame is not None and len(leaf_first) < max_depth:
        leaf_first.append(_frame_label(frame.f_code))
        frame = frame.f_back
    if frame is not None:
        leaf_first.append("(truncated)")
    leaf_first.reverse()
    return leaf_first


@dataclass
class Profile:
    """Accumulated samples: ``span -> collapsed stack -> count``.

    The merge is a plain per-key addition — exact, associative,
    commutative, with the empty profile as identity — so shard profiles
    folded in index order produce the same bytes at any worker count,
    and replaying a cached profile is indistinguishable from having
    computed it.
    """

    hz: float = 0.0
    samples: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(self, span: Optional[str], stack: List[str]) -> None:
        bucket = self.samples.setdefault(span or UNATTRIBUTED, {})
        key = ";".join(stack) if stack else "(idle)"
        bucket[key] = bucket.get(key, 0) + 1

    @property
    def total_samples(self) -> int:
        return sum(sum(stacks.values()) for stacks in self.samples.values())

    def span_sample_counts(self) -> Dict[str, int]:
        """``span -> sample count``, sorted by span name."""
        return {span: sum(stacks.values())
                for span, stacks in sorted(self.samples.items())}

    def merge(self, other: "Profile") -> "Profile":
        for span, stacks in other.samples.items():
            bucket = self.samples.setdefault(span, {})
            for stack, count in stacks.items():
                bucket[stack] = bucket.get(stack, 0) + count
        if not self.hz:
            self.hz = other.hz
        return self

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "hz": self.hz,
            "samples": {span: dict(sorted(stacks.items()))
                        for span, stacks in sorted(self.samples.items())},
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "Profile":
        if not isinstance(raw, Mapping):
            raise ProfileError(f"profile must be a mapping, got {type(raw)!r}")
        schema = raw.get("schema")
        if schema != PROFILE_SCHEMA_VERSION:
            raise ProfileError(
                f"profile schema {schema!r} != supported {PROFILE_SCHEMA_VERSION}")
        samples = raw.get("samples", {})
        if not isinstance(samples, Mapping):
            raise ProfileError("profile 'samples' must be a mapping")
        return cls(
            hz=float(raw.get("hz", 0.0)),
            samples={str(span): {str(stack): int(count)
                                 for stack, count in dict(stacks).items()}
                     for span, stacks in samples.items()},
        )

    # -- exports ------------------------------------------------------------------

    def to_collapsed(self) -> str:
        """Collapsed-stack flamegraph text: ``span;root;...;leaf count``."""
        lines = []
        for span, stacks in sorted(self.samples.items()):
            for stack, count in sorted(stacks.items()):
                lines.append(f"{span};{stack} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, name: str = "repro") -> Dict[str, object]:
        """The speedscope file format: one sampled profile per span."""
        frame_index: Dict[str, int] = {}

        def index_of(label: str) -> int:
            if label not in frame_index:
                frame_index[label] = len(frame_index)
            return frame_index[label]

        profiles: List[Dict[str, object]] = []
        for span, stacks in sorted(self.samples.items()):
            samples: List[List[int]] = []
            weights: List[int] = []
            for stack, count in sorted(stacks.items()):
                samples.append([index_of(label) for label in stack.split(";")])
                weights.append(count)
            profiles.append({
                "type": "sampled",
                "name": span,
                "unit": "none",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            })
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.profile",
            "shared": {"frames": [{"name": label} for label in frame_index]},
            "profiles": profiles,
        }

    def top_frames(self, span: Optional[str] = None,
                   top: int = 10) -> List[Tuple[str, int, int]]:
        """Hottest frames as ``(frame, self_count, inclusive_count)``.

        *self* counts a frame when it is the sampled leaf; *inclusive*
        counts it when it appears anywhere on the stack (once per
        sample, recursion deduplicated).  ``span=None`` aggregates all
        spans.  Sorted by self count, then inclusive, then name.
        """
        self_counts: Dict[str, int] = {}
        incl_counts: Dict[str, int] = {}
        for name, stacks in self.samples.items():
            if span is not None and name != span:
                continue
            for stack, count in stacks.items():
                frames = stack.split(";")
                self_counts[frames[-1]] = self_counts.get(frames[-1], 0) + count
                for frame in set(frames):
                    incl_counts[frame] = incl_counts.get(frame, 0) + count
        ranked = sorted(
            ((frame, self_counts.get(frame, 0), incl)
             for frame, incl in incl_counts.items()),
            key=lambda row: (-row[1], -row[2], row[0]),
        )
        return ranked[:top]


class SamplingProfiler:
    """The background sampler; one instance per profiled run.

    ``tracer`` (bindable later via :meth:`bind`) supplies the
    span-attribution lookup; without one, every sample lands in the
    :data:`UNATTRIBUTED` bucket.  ``start``/``stop`` manage the daemon
    timer thread; :meth:`sample_once` is the single-tick core, exposed
    for deterministic tests.
    """

    enabled = True

    def __init__(self, hz: float = DEFAULT_PROFILE_HZ, tracer=None,
                 max_depth: int = MAX_STACK_DEPTH):
        if hz <= 0:
            raise ValueError(f"profile hz must be positive, got {hz}")
        self.hz = float(hz)
        self.tracer = tracer
        self.max_depth = max_depth
        self.profile = Profile(hz=self.hz)
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def bind(self, tracer) -> None:
        """Late-bind the tracer whose spans attribute the samples."""
        self.tracer = tracer

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop_event.wait(interval):
            self.sample_once()

    def sample_once(self) -> int:
        """Walk every thread's current frame; returns samples recorded."""
        own = threading.get_ident()
        sampler_tid = self._thread.ident if self._thread is not None else None
        tracer = self.tracer
        recorded = 0
        for tid, frame in sys._current_frames().items():
            if tid == own or tid == sampler_tid:
                continue
            stack = collect_stack(frame, self.max_depth)
            span = None
            if tracer is not None:
                span = tracer.active_span_name(tid)
            with self._lock:
                self.profile.record(span, stack)
            recorded += 1
        return recorded

    def merge(self, raw: Mapping[str, object]) -> None:
        """Fold a serialized :class:`Profile` (e.g. a fleet worker's
        snapshot payload) into this profiler's accumulated profile."""
        incoming = Profile.from_dict(raw)
        with self._lock:
            self.profile.merge(incoming)

    def snapshot(self) -> Optional[Dict[str, object]]:
        """The profile as plain data, or ``None`` when empty — so an
        unprofiled (or zero-sample) run adds no key to its snapshot."""
        with self._lock:
            if not self.profile.samples:
                return None
            return self.profile.to_dict()


class NullProfiler:
    """API-compatible profiler that records nothing (profiling off)."""

    enabled = False
    running = False
    hz = 0.0
    profile = Profile()

    def bind(self, tracer) -> None:
        return None

    def start(self) -> None:
        return None

    def stop(self) -> None:
        return None

    def sample_once(self) -> int:
        return 0

    def merge(self, raw) -> None:
        return None

    def snapshot(self) -> None:
        return None


#: The do-nothing profiler installed on every default context.
NULL_PROFILER = NullProfiler()


def _env_malloc_enabled() -> bool:
    raw = os.environ.get("REPRO_PROFILE_MALLOC", "")
    return raw.strip().lower() in ("1", "true", "yes", "on")


class SpanResourceProbe:
    """Per-span resource accounting, installed as ``tracer.resource_probe``.

    On span entry/exit it records, as span attributes:

    * ``cpu_seconds`` — ``time.thread_time()`` delta (the opening
      thread's CPU time; spans open and close on one thread);
    * ``gc_collections`` — GC collections (all generations) observed
      during the span (process-global, so nested spans each see the
      collections that happened inside them);
    * ``mem_alloc_bytes`` / ``mem_peak_bytes`` — tracemalloc current
      delta and peak above the entry level.  Tracemalloc multiplies
      allocation cost, so it is **opt-in**: ``malloc=True`` or
      ``REPRO_PROFILE_MALLOC=1``.

    The probe that started tracemalloc stops it again on
    :meth:`close`.
    """

    def __init__(self, malloc: Optional[bool] = None):
        self.malloc = _env_malloc_enabled() if malloc is None else bool(malloc)
        self._started_tracemalloc = False
        if self.malloc:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True

    @staticmethod
    def _gc_collections() -> int:
        return sum(stat.get("collections", 0) for stat in gc.get_stats())

    def enter(self) -> Dict[str, float]:
        token: Dict[str, float] = {
            "cpu": time.thread_time(),
            "gc": self._gc_collections(),
        }
        if self.malloc:
            import tracemalloc

            token["mem"] = tracemalloc.get_traced_memory()[0]
        return token

    def exit(self, token: Dict[str, float], span) -> None:
        span.set_attr("cpu_seconds",
                      round(time.thread_time() - token["cpu"], 6))
        span.set_attr("gc_collections",
                      int(self._gc_collections() - token["gc"]))
        if self.malloc:
            import tracemalloc

            current, peak = tracemalloc.get_traced_memory()
            span.set_attr("mem_alloc_bytes", int(current - token["mem"]))
            span.set_attr("mem_peak_bytes", int(max(0, peak - token["mem"])))

    def close(self) -> None:
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False


#: Span attributes the probe writes — the byte-equivalence tests assert
#: these are absent when profiling is off.
RESOURCE_ATTRS = ("cpu_seconds", "gc_collections",
                  "mem_alloc_bytes", "mem_peak_bytes")


def span_resource_table(tracer) -> Dict[str, Dict[str, float]]:
    """Aggregate probe attributes per span name over a tracer's forest.

    Returns ``{span_name: {count, wall_seconds, cpu_seconds,
    gc_collections, mem_alloc_bytes, mem_peak_bytes}}`` — sums except
    ``mem_peak_bytes``, which is the max.  Spans without probe attrs
    still contribute count/wall so the table covers the whole run.
    """
    table: Dict[str, Dict[str, float]] = {}
    for span in tracer.iter_spans():
        row = table.setdefault(span.name, {
            "count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0,
            "gc_collections": 0, "mem_alloc_bytes": 0, "mem_peak_bytes": 0,
        })
        row["count"] += 1
        if span.wall_duration is not None:
            row["wall_seconds"] += span.wall_duration
        row["cpu_seconds"] += float(span.attrs.get("cpu_seconds", 0.0))
        row["gc_collections"] += int(span.attrs.get("gc_collections", 0))
        row["mem_alloc_bytes"] += int(span.attrs.get("mem_alloc_bytes", 0))
        row["mem_peak_bytes"] = max(row["mem_peak_bytes"],
                                    int(span.attrs.get("mem_peak_bytes", 0)))
    return dict(sorted(table.items()))


#: File names ``write_profile_outputs`` produces inside ``--profile-out``.
FLAMEGRAPH_NAME = "flame.txt"
SPEEDSCOPE_NAME = "profile.speedscope.json"
RESOURCES_NAME = "span_resources.json"


def write_profile_outputs(profile: Profile, out_dir,
                          tracer=None) -> List[Path]:
    """Write the per-run profile artifacts into ``out_dir``.

    * ``flame.txt`` — collapsed stacks (``flamegraph.pl`` input, and
      what ``tools/profile_top.py`` summarizes);
    * ``profile.speedscope.json`` — load at https://www.speedscope.app;
    * ``span_resources.json`` — the per-span resource table (only when
      a tracer is supplied).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    flame = out / FLAMEGRAPH_NAME
    flame.write_text(profile.to_collapsed(), encoding="utf-8")
    written.append(flame)

    speedscope = out / SPEEDSCOPE_NAME
    with open(speedscope, "w", encoding="utf-8") as handle:
        json.dump(profile.to_speedscope(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    written.append(speedscope)

    if tracer is not None:
        resources = out / RESOURCES_NAME
        with open(resources, "w", encoding="utf-8") as handle:
            json.dump(span_resource_table(tracer), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        written.append(resources)
    return written
