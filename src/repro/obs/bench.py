"""Perf-trajectory recording: ``BENCH_*.json`` files at the repo root.

ROADMAP calls for "recording results to BENCH_fleet.json so the perf
trajectory becomes visible across PRs".  This module is that record: a
:class:`BenchTrajectory` is an append-only JSON file of benchmark
entries, each stamped with the date (passed in — workflow-style code
never reads the wall clock itself) and an **environment fingerprint**
(Python version, CPU count, the fleet ``code_version()`` source
digest), so entries from different machines or code states are never
compared as if they were the same experiment.

Regression checking (:func:`check_regression`,
``tools/check_bench_regression.py``) compares the newest entry against
the *median* of earlier entries with the **same fingerprint** under a
tolerance — medians shrug off one noisy CI run, and fingerprint
matching keeps a laptop's numbers from failing a container.  With no
comparable history the check passes with a note: the first entry on any
machine only seeds the trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

#: Bump when the trajectory file layout changes shape.
SCHEMA_VERSION = 1

#: Allowed relative slowdown before the regression gate fails (25%).
DEFAULT_TOLERANCE = 0.25

#: The per-entry memory column the gate watches (lower is better).
#: Stamped by ``tools/bench_record.py`` from
#: :func:`repro.obs.events.process_stats`; entries recorded before the
#: column existed (or on platforms where it reads 0) are skipped, so
#: old history never trips the gate.
MEMORY_METRIC = "rss_peak_bytes"

#: Allowed relative peak-RSS growth before the gate fails (50%) —
#: looser than the time tolerance because RSS is quantized by the
#: allocator and swings more between runs than wall time does.
DEFAULT_MEMORY_TOLERANCE = 0.5

#: Secondary throughput columns gated per trajectory file (always
#: higher-is-better, same tolerance as the primary leg).  The decode
#: trajectory's ``columnar_packets_per_second`` column tracks raw
#: table-ingest throughput separately from the primary cold
#: ingest+index number; entries recorded before the columnar store
#: existed lack the column and are skipped, so the first post-columnar
#: entry seeds that leg.
SECONDARY_METRICS: Mapping[str, tuple] = {
    "BENCH_decode.json": ("columnar_packets_per_second",),
}


def env_fingerprint() -> Dict[str, object]:
    """What kind of machine/code produced a benchmark number.

    Two entries are comparable exactly when their fingerprints are
    equal.  The ``code_version`` component is the fleet's source digest
    — editing the generator/analysis invalidates old numbers the same
    way it invalidates cached shards.
    """
    from repro.fleet.spec import code_version

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "code_version": code_version(),
    }


@dataclass
class BenchEntry:
    """One recorded benchmark run."""

    date: str  # ISO date, supplied by the caller
    fingerprint: Dict[str, object]
    metrics: Dict[str, float]
    notes: str = ""

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "date": self.date,
            "fingerprint": self.fingerprint,
            "metrics": self.metrics,
        }
        if self.notes:
            out["notes"] = self.notes
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "BenchEntry":
        return cls(
            date=str(raw.get("date", "")),
            fingerprint=dict(raw.get("fingerprint", {})),
            metrics={k: float(v) for k, v in dict(raw.get("metrics", {})).items()},
            notes=str(raw.get("notes", "")),
        )


@dataclass
class BenchTrajectory:
    """An append-only series of :class:`BenchEntry` for one benchmark.

    ``primary_metric`` names the entry metric the regression gate
    watches; ``higher_is_better`` orients the comparison (throughput
    vs latency).
    """

    name: str
    primary_metric: str
    higher_is_better: bool = True
    entries: List[BenchEntry] = field(default_factory=list)
    path: Optional[Path] = None

    @classmethod
    def load(cls, path, name: str = "", primary_metric: str = "",
             higher_is_better: bool = True) -> "BenchTrajectory":
        """Read a trajectory file; a missing file yields an empty one."""
        path = Path(path)
        if not path.exists():
            return cls(name=name or path.stem, primary_metric=primary_metric,
                       higher_is_better=higher_is_better, path=path)
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        if not isinstance(raw, dict) or raw.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{path}: not a schema-{SCHEMA_VERSION} bench trajectory")
        return cls(
            name=str(raw.get("name", name or path.stem)),
            primary_metric=str(raw.get("primary_metric", primary_metric)),
            higher_is_better=bool(raw.get("higher_is_better", higher_is_better)),
            entries=[BenchEntry.from_dict(entry)
                     for entry in raw.get("entries", [])],
            path=path,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "primary_metric": self.primary_metric,
            "higher_is_better": self.higher_is_better,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def append(self, entry: BenchEntry) -> None:
        self.entries.append(entry)

    def save(self, path=None) -> Path:
        """Atomically write the trajectory (temp file + ``os.replace``)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path to save the trajectory to")
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(target.parent),
                                   prefix=f".tmp-{target.stem}-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.path = target
        return target

    # -- queries --------------------------------------------------------------------

    @property
    def latest(self) -> Optional[BenchEntry]:
        return self.entries[-1] if self.entries else None

    def comparable_history(self, entry: BenchEntry) -> List[BenchEntry]:
        """Earlier entries whose fingerprint matches ``entry``'s."""
        history = [previous for previous in self.entries
                   if previous is not entry
                   and previous.fingerprint == entry.fingerprint]
        return history

    def baseline_median(self, entry: BenchEntry,
                        metric: Optional[str] = None) -> Optional[float]:
        """Median value of ``metric`` (default: the primary metric) over
        ``entry``'s comparable history; entries lacking it are skipped."""
        metric = metric if metric is not None else self.primary_metric
        values = [previous.metrics[metric]
                  for previous in self.comparable_history(entry)
                  if metric in previous.metrics]
        return statistics.median(values) if values else None


@dataclass
class RegressionVerdict:
    """The gate's decision for one trajectory."""

    name: str
    ok: bool
    detail: str
    latest: Optional[float] = None
    baseline: Optional[float] = None


def _check_memory(trajectory: BenchTrajectory, entry: BenchEntry,
                  memory_tolerance: float) -> Optional[str]:
    """The memory leg of the gate; returns a failure detail or ``None``.

    Skips silently when the latest entry has no (or a zero)
    :data:`MEMORY_METRIC` column, or when no comparable history carries
    one — pre-column trajectories must keep passing unchanged.
    """
    value = entry.metrics.get(MEMORY_METRIC)
    if not value:
        return None
    baseline = trajectory.baseline_median(entry, metric=MEMORY_METRIC)
    if not baseline:
        return None
    limit = baseline * (1.0 + memory_tolerance)
    if value > limit:
        return (f"MEMORY REGRESSION: {MEMORY_METRIC}={value:.4g} vs median "
                f"{baseline:.4g} (limit {limit:.4g}, "
                f"{memory_tolerance:.0%} tolerance) — above the limit")
    return None


def _check_secondary(trajectory: BenchTrajectory, entry: BenchEntry,
                     metric: str, tolerance: float) -> Optional[str]:
    """A secondary higher-is-better leg; returns a failure detail or ``None``.

    Mirrors :func:`_check_memory`'s skip rules: entries recorded before
    the column existed (latest or history) never trip the gate — the
    first entry carrying the column seeds its own baseline.
    """
    value = entry.metrics.get(metric)
    if not value:
        return None
    baseline = trajectory.baseline_median(entry, metric=metric)
    if not baseline:
        return None
    limit = baseline * (1.0 - tolerance)
    if value < limit:
        return (f"SECONDARY REGRESSION: {metric}={value:.4g} vs median "
                f"{baseline:.4g} (limit {limit:.4g}, "
                f"{tolerance:.0%} tolerance) — below the limit")
    return None


def check_regression(
    trajectory: BenchTrajectory,
    tolerance: float = DEFAULT_TOLERANCE,
    memory_tolerance: float = DEFAULT_MEMORY_TOLERANCE,
    secondary_metrics: tuple = (),
) -> RegressionVerdict:
    """Newest entry vs same-fingerprint trajectory median, under tolerance.

    * No entries → fail (an empty trajectory means the recorder never
      ran — the gate would otherwise pass vacuously forever).
    * No comparable history (first run on this machine/code) → pass,
      noting the entry only seeds the trajectory.
    * Otherwise fail when the primary metric regressed by more than
      ``tolerance`` relative to the median (direction per
      ``higher_is_better``), when the entry's :data:`MEMORY_METRIC`
      column (always lower-is-better) grew past ``memory_tolerance``
      over its own history median, or when one of ``secondary_metrics``
      (always higher-is-better, e.g. the decode trajectory's
      ``columnar_packets_per_second``) fell below its history median by
      more than ``tolerance``.
    """
    entry = trajectory.latest
    if entry is None:
        return RegressionVerdict(
            name=trajectory.name, ok=False,
            detail="trajectory has no entries (recorder never ran)")
    value = entry.metrics.get(trajectory.primary_metric)
    if value is None:
        return RegressionVerdict(
            name=trajectory.name, ok=False,
            detail=f"latest entry lacks metric {trajectory.primary_metric!r}")
    baseline = trajectory.baseline_median(entry)
    if baseline is None:
        return RegressionVerdict(
            name=trajectory.name, ok=True, latest=value,
            detail="no comparable history for this fingerprint; entry seeds "
                   "the trajectory")
    if trajectory.higher_is_better:
        limit = baseline * (1.0 - tolerance)
        regressed = value < limit
    else:
        limit = baseline * (1.0 + tolerance)
        regressed = value > limit
    direction = "below" if trajectory.higher_is_better else "above"
    detail = (f"{trajectory.primary_metric}={value:.4g} vs median "
              f"{baseline:.4g} (limit {limit:.4g}, {tolerance:.0%} tolerance, "
              f"{len(trajectory.comparable_history(entry))} comparable entries)")
    if regressed:
        return RegressionVerdict(
            name=trajectory.name, ok=False, latest=value, baseline=baseline,
            detail=f"REGRESSION: {detail} — {direction} the limit")
    memory_failure = _check_memory(trajectory, entry, memory_tolerance)
    if memory_failure is not None:
        return RegressionVerdict(
            name=trajectory.name, ok=False, latest=value, baseline=baseline,
            detail=f"{memory_failure} (time leg ok: {detail})")
    for metric in secondary_metrics:
        secondary_failure = _check_secondary(trajectory, entry, metric,
                                             tolerance)
        if secondary_failure is not None:
            return RegressionVerdict(
                name=trajectory.name, ok=False, latest=value,
                baseline=baseline,
                detail=f"{secondary_failure} (primary leg ok: {detail})")
    return RegressionVerdict(name=trajectory.name, ok=True, latest=value,
                             baseline=baseline, detail=detail)
