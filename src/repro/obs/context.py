"""The observability context: one bundle of metrics + tracing + logging.

Instrumented code never imports concrete backends; it asks for the
*current* :class:`Observability` via :func:`get_obs` at construction
time and guards hot paths with the ``enabled`` flag::

    obs = get_obs()
    ...
    if obs.enabled:
        obs.metrics.counter("lan_frames_total").inc(protocol=label)

The default context is :data:`NULL_OBS`, whose backends are no-op
singletons, so an uninstrumented run pays one attribute check per hot
path — nothing else.  :func:`use_obs` installs a real context for the
duration of a ``with`` block (the pattern ``StudyPipeline`` uses so the
``Simulator``/``Lan`` it builds pick the context up automatically).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Union

from repro.obs.events import NULL_EVENT_BUS, EventBus, NullEventBus
from repro.obs.logging import LogManager, NullLogManager
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import NULL_PROFILER, NullProfiler, SamplingProfiler
from repro.obs.tracing import NullTracer, Tracer


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0, **labels: str) -> None:
        return None


class _NullGauge(Gauge):
    def set(self, value: float, **labels: str) -> None:
        return None

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        return None


class _NullHistogram(Histogram):
    def observe(self, value: float, **labels: str) -> None:
        return None


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose metrics swallow every write and export empty."""

    _COUNTER = _NullCounter("null")
    _GAUGE = _NullGauge("null")
    _HISTOGRAM = _NullHistogram("null")

    def counter(self, name: str, help: str = "") -> Counter:
        return self._COUNTER

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._GAUGE

    def histogram(self, name: str, help: str = "", buckets=None) -> Histogram:
        return self._HISTOGRAM

    def scoped(self, prefix: str) -> "NullMetricsRegistry":
        return self

    def merge(self, other, extra_labels=None) -> "NullMetricsRegistry":
        return self

    def to_dict(self):
        return {}


class Observability:
    """Everything an instrumented subsystem needs, in one handle."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        tracer: Union[Tracer, NullTracer],
        logs: Union[LogManager, NullLogManager],
        enabled: bool = True,
        events: Union[EventBus, NullEventBus] = NULL_EVENT_BUS,
        profiler: Union[SamplingProfiler, NullProfiler] = NULL_PROFILER,
    ):
        self.metrics = metrics
        self.tracer = tracer
        self.logs = logs
        self.enabled = enabled
        #: The live event stream (``NULL_EVENT_BUS`` unless installed);
        #: see :mod:`repro.obs.events`.
        self.events = events
        #: The sampling profiler (``NULL_PROFILER`` unless installed);
        #: see :mod:`repro.obs.profile`.  Also the merge target for
        #: fleet workers' :class:`~repro.obs.profile.Profile` payloads.
        self.profiler = profiler

    def logger(self, subsystem: str):
        return self.logs.logger(subsystem)

    def set_sim_clock(self, sim_clock: Optional[Callable[[], float]]) -> None:
        """Point the tracer (and kv-log timestamps) at a simulated clock."""
        self.tracer.set_sim_clock(sim_clock)
        if isinstance(self.logs, LogManager):
            self.logs.clock = sim_clock


#: The do-nothing context installed by default.
NULL_OBS = Observability(
    metrics=NullMetricsRegistry(),
    tracer=NullTracer(),
    logs=NullLogManager(),
    enabled=False,
)

_current: Observability = NULL_OBS


def get_obs() -> Observability:
    """The active observability context (``NULL_OBS`` unless installed)."""
    return _current


def set_obs(obs: Optional[Observability]) -> Observability:
    """Install ``obs`` globally; pass ``None`` to reset to the null context."""
    global _current
    _current = obs if obs is not None else NULL_OBS
    return _current


@contextmanager
def use_obs(obs: Observability) -> Iterator[Observability]:
    """Install ``obs`` for the duration of the block, then restore."""
    global _current
    previous = _current
    _current = obs
    try:
        yield obs
    finally:
        _current = previous


def enable_observability(
    log_level: Optional[str] = None,
    log_format: str = "kv",
    log_stream=None,
    install: bool = False,
    events: Optional[Union[EventBus, NullEventBus]] = None,
    profiler: Optional[Union[SamplingProfiler, NullProfiler]] = None,
) -> Observability:
    """Build a live context (real registry, tracer, env-configured logs).

    With ``install=True`` the context also becomes the process-global
    one, so code that reads :func:`get_obs` at construction time — the
    ``Simulator``, the ``Lan`` — starts reporting immediately.  Pass an
    :class:`~repro.obs.events.EventBus` as ``events`` (e.g. from
    :func:`~repro.obs.events.open_event_stream`) to attach the live
    NDJSON event stream.  Pass a
    :class:`~repro.obs.profile.SamplingProfiler` as ``profiler`` to
    attach continuous profiling; the profiler is bound to the new
    tracer, but starting it (and installing a
    :class:`~repro.obs.profile.SpanResourceProbe`) stays with the
    caller.
    """
    obs = Observability(
        metrics=MetricsRegistry(),
        tracer=Tracer(),
        logs=LogManager.from_env(default_level=log_level, fmt=log_format,
                                 stream=log_stream),
        enabled=True,
        events=events if events is not None else NULL_EVENT_BUS,
        profiler=profiler if profiler is not None else NULL_PROFILER,
    )
    if profiler is not None and profiler.enabled:
        profiler.bind(obs.tracer)
    if install:
        set_obs(obs)
    return obs
