"""``ObsSnapshot``: a worker process's telemetry, serialized for merge.

Since the fleet shards run in a process pool, their metrics, spans and
error counts die with the worker unless they travel home with the shard
result.  An :class:`ObsSnapshot` is that travel form: the worker's
:class:`~repro.obs.metrics.MetricsRegistry` dict export, its span
forest, and the decode-error / fault tallies, under a schema version so
cached snapshots from older code are rejected instead of misread.

The parent applies a snapshot with :meth:`ObsSnapshot.apply`, which
merges metrics additively (:meth:`MetricsRegistry.merge`) and grafts
the spans under a parent span (:meth:`Tracer.absorb`).  Snapshots
served from the shard cache are applied with
``extra_labels={"from_cache": "true"}`` so replayed telemetry stays
distinguishable from freshly computed work while keeping counter totals
exact.

When the worker ran with profiling on, its sampled
:class:`~repro.obs.profile.Profile` travels under the optional
``"profile"`` key and merges additively into the parent's profiler —
absent entirely on unprofiled runs, so their snapshot bytes are
unchanged from pre-profiling builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.obs.context import Observability
from repro.obs.metrics import MetricsRegistry

#: Bump when the snapshot payload changes shape.
SCHEMA_VERSION = 1


class ObsSnapshotError(ValueError):
    """A snapshot payload that cannot be interpreted (wrong schema)."""


@dataclass
class ObsSnapshot:
    """One process's observability state, as plain JSON-able data."""

    metrics: Dict[str, object] = field(default_factory=dict)
    spans: List[Dict[str, object]] = field(default_factory=list)
    #: ``reason -> count`` from the capture's quarantine log.
    decode_errors: Dict[str, int] = field(default_factory=dict)
    #: ``kind -> count`` from the fault injector.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Optional :meth:`repro.obs.profile.Profile.to_dict` payload; absent
    #: (and absent from :meth:`to_dict`) when the run was unprofiled, so
    #: unprofiled snapshot bytes never change.
    profile: Optional[Dict[str, object]] = None
    schema: int = SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        obs: Observability,
        decode_errors: Optional[Mapping[str, int]] = None,
        fault_counts: Optional[Mapping[str, int]] = None,
    ) -> "ObsSnapshot":
        """Snapshot ``obs``'s registry and span forest right now."""
        return cls(
            metrics=obs.metrics.to_dict(),
            spans=obs.tracer.export_spans(),
            decode_errors=dict(decode_errors or {}),
            fault_counts=dict(fault_counts or {}),
            profile=obs.profiler.snapshot(),
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema": self.schema,
            "metrics": self.metrics,
            "spans": self.spans,
            "decode_errors": self.decode_errors,
            "fault_counts": self.fault_counts,
        }
        if self.profile is not None:
            out["profile"] = self.profile
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "ObsSnapshot":
        if not isinstance(raw, Mapping):
            raise ObsSnapshotError(f"snapshot must be a mapping, got {type(raw)!r}")
        schema = raw.get("schema")
        if schema != SCHEMA_VERSION:
            raise ObsSnapshotError(
                f"snapshot schema {schema!r} != supported {SCHEMA_VERSION}")
        profile = raw.get("profile")
        return cls(
            metrics=dict(raw.get("metrics", {})),
            spans=list(raw.get("spans", [])),
            decode_errors=dict(raw.get("decode_errors", {})),
            fault_counts=dict(raw.get("fault_counts", {})),
            profile=dict(profile) if profile is not None else None,
            schema=int(schema),
        )

    @property
    def is_empty(self) -> bool:
        return not (self.metrics or self.spans or self.decode_errors
                    or self.fault_counts or self.profile)

    def apply(
        self,
        obs: Observability,
        extra_labels: Optional[Mapping[str, str]] = None,
        span_parent=None,
        span_attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Fold this snapshot into a live observability context.

        * metrics merge exactly (counters/histograms add, gauges
          last-write-wins), with ``extra_labels`` on every sample;
        * spans graft under ``span_parent`` with ``span_attrs`` stamped
          on each absorbed root;
        * decode-error and fault tallies re-count into the standard
          ``capture_decode_quarantined_total{reason}`` /
          ``faults_injected_total{kind}`` counters so a merged run's
          chaos accounting covers the workers;
        * the worker's sampled profile (when present) adds into the
          parent's profiler — sample counts are plain sums, so the merge
          is associative/commutative and shard order cannot change it.
        """
        if not obs.enabled:
            return
        if self.metrics:
            obs.metrics.merge(MetricsRegistry.from_dict(self.metrics),
                              extra_labels=extra_labels)
        if self.spans:
            obs.tracer.absorb(self.spans, parent=span_parent,
                              extra_attrs=span_attrs)
        if self.profile:
            profiler = getattr(obs, "profiler", None)
            if profiler is not None and profiler.enabled:
                profiler.merge(self.profile)
        labels = dict(extra_labels or {})
        for reason, count in sorted(self.decode_errors.items()):
            obs.metrics.counter(
                "capture_decode_quarantined_total",
                "malformed frames quarantined by the total decode",
            ).inc(count, reason=reason, **labels)
        for kind, count in sorted(self.fault_counts.items()):
            obs.metrics.counter(
                "faults_injected_total", "faults injected into the LAN, per kind",
            ).inc(count, kind=kind, **labels)
