"""Decorator-level instrumentation: ``@timed`` and ``@counted``.

Both decorators resolve the observability context *per call* via
:func:`repro.obs.get_obs`, so the same decorated function is live when
a context is installed and effectively free when it is not — the
disabled path is one global read plus one attribute check.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Optional, Sequence, TypeVar

from repro.obs.context import get_obs
from repro.obs.metrics import DEFAULT_BUCKETS

F = TypeVar("F", bound=Callable)


def timed(metric: str, help: str = "",
          buckets: Sequence[float] = DEFAULT_BUCKETS,
          span: Optional[str] = None) -> Callable[[F], F]:
    """Record wall-clock duration of each call into a histogram.

    With ``span=`` set, each call also opens a tracer span of that name,
    so decorated stages show up in the trace tree without boilerplate.
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            obs = get_obs()
            if not obs.enabled:
                return func(*args, **kwargs)
            if span is not None:
                with obs.tracer.span(span):
                    started = time.perf_counter()
                    result = func(*args, **kwargs)
            else:
                started = time.perf_counter()
                result = func(*args, **kwargs)
            obs.metrics.histogram(metric, help, buckets=buckets).observe(
                time.perf_counter() - started
            )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def counted(metric: str, help: str = "", **labels: str) -> Callable[[F], F]:
    """Count calls (and errors, under an ``outcome`` label).

    Successful calls increment ``metric`` with ``outcome="ok"``; calls
    that raise increment it with ``outcome="error"`` and re-raise.
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            obs = get_obs()
            if not obs.enabled:
                return func(*args, **kwargs)
            counter = obs.metrics.counter(metric, help)
            try:
                result = func(*args, **kwargs)
            except BaseException:
                counter.inc(outcome="error", **labels)
                raise
            counter.inc(outcome="ok", **labels)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
