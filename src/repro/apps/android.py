"""The Android permission model relevant to local network data (§2.1).

Encodes the access-control matrix the paper demonstrates with its PoC
app: SSID/BSSID access requires location permissions (Android 9-12) or
NEARBY_WIFI_DEVICES (13+), while NsdManager mDNS/SSDP discovery needs
only INTERNET + CHANGE_WIFI_MULTICAST_STATE — neither of which is a
"dangerous" permission, which is precisely the side channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Set


class AndroidPermission(str, enum.Enum):
    INTERNET = "android.permission.INTERNET"
    CHANGE_WIFI_MULTICAST_STATE = "android.permission.CHANGE_WIFI_MULTICAST_STATE"
    ACCESS_WIFI_STATE = "android.permission.ACCESS_WIFI_STATE"
    ACCESS_COARSE_LOCATION = "android.permission.ACCESS_COARSE_LOCATION"
    ACCESS_FINE_LOCATION = "android.permission.ACCESS_FINE_LOCATION"
    NEARBY_WIFI_DEVICES = "android.permission.NEARBY_WIFI_DEVICES"


#: Permissions that require explicit user consent at runtime.
DANGEROUS_PERMISSIONS = {
    AndroidPermission.ACCESS_COARSE_LOCATION,
    AndroidPermission.ACCESS_FINE_LOCATION,
    AndroidPermission.NEARBY_WIFI_DEVICES,
}


class AndroidApi(str, enum.Enum):
    """Permission-protected APIs the instrumented runtime tracks."""

    WIFI_INFO_GET_SSID = "WifiInfo.getSSID"
    WIFI_INFO_GET_BSSID = "WifiInfo.getBSSID"
    WIFI_INFO_GET_MAC = "WifiInfo.getMacAddress"
    NSD_DISCOVER_SERVICES = "NsdManager.discoverServices"
    MULTICAST_LOCK = "WifiManager.MulticastLock.acquire"
    LOCATION_GET_LAST = "FusedLocation.getLastLocation"
    ADVERTISING_ID = "AdvertisingIdClient.getAdvertisingIdInfo"
    RAW_SOCKET = "socket(AF_PACKET)"


class AndroidVersion(enum.IntEnum):
    PIE = 9  # the instrumented AppCensus build (§3.2)
    TIRAMISU = 13  # the PoC build (§2.1)


class PermissionDenied(Exception):
    """Raised when an API call lacks the required runtime permission."""

    def __init__(self, api: AndroidApi, required: List[AndroidPermission]):
        self.api = api
        self.required = required
        names = ", ".join(permission.name for permission in required)
        super().__init__(f"{api.value} requires one of: {names}")


@dataclass
class PermissionModel:
    """API -> required permissions for a given Android version."""

    version: AndroidVersion = AndroidVersion.PIE

    def required_for(self, api: AndroidApi) -> List[List[AndroidPermission]]:
        """Permission alternatives (outer list = OR, inner = AND)."""
        if api in (AndroidApi.WIFI_INFO_GET_SSID, AndroidApi.WIFI_INFO_GET_BSSID):
            if self.version >= AndroidVersion.TIRAMISU:
                return [[AndroidPermission.NEARBY_WIFI_DEVICES]]
            return [
                [AndroidPermission.ACCESS_WIFI_STATE, AndroidPermission.ACCESS_COARSE_LOCATION],
                [AndroidPermission.ACCESS_WIFI_STATE, AndroidPermission.ACCESS_FINE_LOCATION],
            ]
        if api is AndroidApi.WIFI_INFO_GET_MAC:
            # Returns 02:00:00:00:00:00 since Android 6 regardless; the
            # real MAC is only reachable via side channels.
            return [[AndroidPermission.ACCESS_WIFI_STATE]]
        if api is AndroidApi.NSD_DISCOVER_SERVICES:
            # The §2.1 PoC: neither permission is "dangerous".
            return [[AndroidPermission.INTERNET, AndroidPermission.CHANGE_WIFI_MULTICAST_STATE]]
        if api is AndroidApi.MULTICAST_LOCK:
            return [[AndroidPermission.CHANGE_WIFI_MULTICAST_STATE]]
        if api is AndroidApi.LOCATION_GET_LAST:
            return [
                [AndroidPermission.ACCESS_COARSE_LOCATION],
                [AndroidPermission.ACCESS_FINE_LOCATION],
            ]
        if api is AndroidApi.ADVERTISING_ID:
            return [[]]  # no permission required (resettable ad ID)
        if api is AndroidApi.RAW_SOCKET:
            return [[AndroidPermission.INTERNET]]  # and root, modeled as denied
        return [[]]

    def check(self, api: AndroidApi, granted: Set[AndroidPermission]) -> bool:
        alternatives = self.required_for(api)
        return any(all(permission in granted for permission in group) for group in alternatives)

    def enforce(self, api: AndroidApi, granted: Set[AndroidPermission]) -> None:
        if api is AndroidApi.RAW_SOCKET:
            # Raw packet access needs root regardless of permissions (§4.3).
            raise PermissionDenied(api, [AndroidPermission.INTERNET])
        if not self.check(api, granted):
            flattened = [p for group in self.required_for(api) for p in group]
            raise PermissionDenied(api, flattened)

    @staticmethod
    def is_dangerous(permission: AndroidPermission) -> bool:
        return permission in DANGEROUS_PERMISSIONS
