"""The iOS local-network access model (§2.1).

The paper's iOS 16.7 PoC confirms that local multicast needs BOTH the
Apple-approved ``com.apple.developer.networking.multicast`` entitlement
and the ``NSLocalNetworkUsageDescription``-gated runtime permission,
which requires explicit user consent — unlike Android, where NsdManager
discovery needs no dangerous permission at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Set


class IosCapability(str, enum.Enum):
    MULTICAST_ENTITLEMENT = "com.apple.developer.networking.multicast"
    LOCAL_NETWORK_USAGE_DESCRIPTION = "NSLocalNetworkUsageDescription"


class LocalNetworkDenied(Exception):
    """Raised when an iOS app may not touch the local network."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


@dataclass
class IosApp:
    """The iOS-side visibility of an app: entitlements + consent state."""

    bundle_id: str
    entitlements: Set[IosCapability] = field(default_factory=set)
    has_usage_description: bool = False
    user_granted_local_network: bool = False


@dataclass
class IosPermissionModel:
    """iOS 14+ local-network gatekeeping (per the §2.1 PoC)."""

    version: int = 16

    def check_multicast(self, app: IosApp) -> None:
        """Raise unless the app may open multicast sockets."""
        if IosCapability.MULTICAST_ENTITLEMENT not in app.entitlements:
            raise LocalNetworkDenied(
                "multicast entitlement missing (must be explicitly approved by Apple)"
            )
        self.check_local_network(app)

    def check_local_network(self, app: IosApp) -> None:
        """Raise unless the app may talk to local hosts (even unicast)."""
        if not app.has_usage_description:
            raise LocalNetworkDenied(
                "NSLocalNetworkUsageDescription missing from the app manifest"
            )
        if not app.user_granted_local_network:
            raise LocalNetworkDenied("user has not granted the Local Network permission")

    def can_scan(self, app: IosApp) -> bool:
        try:
            self.check_multicast(app)
        except LocalNetworkDenied:
            return False
        return True


def contrast_with_android() -> List[str]:
    """The §2.1 asymmetry, as data (used by docs and tests)."""
    return [
        "Android: mDNS/SSDP scanning needs only INTERNET + "
        "CHANGE_WIFI_MULTICAST_STATE — neither is a dangerous permission",
        "iOS: multicast needs an Apple-approved entitlement AND an "
        "NSLocalNetworkUsageDescription AND explicit user consent",
    ]
