"""Declarative models of mobile apps and embedded third-party SDKs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class AppCategory(str, enum.Enum):
    IOT = "iot"
    REGULAR = "regular"


class Identifier(str, enum.Enum):
    """Identifier classes apps harvest and upload (§6.1)."""

    DEVICE_MAC = "device_mac"  # MACs of IoT devices on the LAN
    ROUTER_MAC = "router_mac"  # the Wi-Fi AP / BSSID
    ROUTER_SSID = "router_ssid"
    WIFI_MAC = "wifi_mac"  # the phone's own Wi-Fi MAC
    DEVICE_UUID = "device_uuid"
    DEVICE_MODEL = "device_model"
    GEOLOCATION = "geolocation"
    AAID = "aaid"  # Android Advertising ID
    ANDROID_ID = "android_id"
    TPLINK_IDS = "tplink_ids"  # deviceId / hwId / oemId from TPLINK-SHP
    HOSTNAMES = "hostnames"
    SCREEN_DEVICE_LIST = "screen_device_list"  # UPnP devices with screens


class ScanProtocol(str, enum.Enum):
    MDNS = "mdns"
    SSDP = "ssdp"
    NETBIOS = "netbios"
    ARP = "arp"
    TPLINK_SHP = "tplink_shp"


@dataclass
class ExfilRule:
    """One upload behaviour: these identifiers go to that endpoint."""

    endpoint: str  # e.g. "gw.innotechworld.com"
    identifiers: List[Identifier]
    party: str = "third"  # "first" or "third"
    sdk: Optional[str] = None  # SDK responsible, None = app's own code
    encode_base64: bool = False  # AppDynamics-style URL parameters


@dataclass
class SdkModel:
    """A third-party SDK embedded in host apps.

    SDKs "inherit the same privileges as the host app" (§2.1), so scan
    behaviours execute regardless of what the app developer intended.
    """

    name: str
    vendor: str
    purpose: str  # "analytics", "advertising", "monetization", "apm"
    scan_protocols: List[ScanProtocol] = field(default_factory=list)
    exfil: List[ExfilRule] = field(default_factory=list)
    #: innosdk: the scan payload is generated algorithmically rather
    #: than stored as a constant, "perhaps to avoid being detected as
    #: obvious malware" (§6.2).
    algorithmic_payload: bool = False
    #: innosdk: probes every IP in 192.168.0.0/24 regardless of liveness.
    scans_entire_prefix: bool = False


@dataclass
class AppModel:
    """One Play-Store app in the dataset."""

    package: str
    name: str
    category: AppCategory
    permissions: List[str] = field(default_factory=list)
    sdks: List[SdkModel] = field(default_factory=list)
    scan_protocols: List[ScanProtocol] = field(default_factory=list)
    #: Vendors whose devices this app is a companion for (pairing scope).
    companion_vendors: List[str] = field(default_factory=list)
    exfil: List[ExfilRule] = field(default_factory=list)
    uses_tls_to_devices: bool = False
    #: Apps that *receive* device MACs in downlink traffic (§6.1: 13
    #: companion apps got MACs of other LAN devices from cloud).
    receives_downlink_macs: bool = False

    @property
    def all_scan_protocols(self) -> List[ScanProtocol]:
        protocols = list(self.scan_protocols)
        for sdk in self.sdks:
            for protocol in sdk.scan_protocols:
                if protocol not in protocols:
                    protocols.append(protocol)
        return protocols

    @property
    def all_exfil_rules(self) -> List[ExfilRule]:
        rules = list(self.exfil)
        for sdk in self.sdks:
            rules.extend(sdk.exfil)
        return rules

    def has_sdk(self, name: str) -> bool:
        return any(sdk.name == name for sdk in self.sdks)
