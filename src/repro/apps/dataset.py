"""The 2,335-app dataset (§3.2): named case studies + synthetic population.

The named apps are modeled from the paper's case studies; the rest of
the population is generated with the behaviour rates the paper reports:
9% of apps scan the home network (mDNS 6.0%, SSDP 4.0%, NetBIOS 0.5% —
10 apps, only 2 of them IoT), 25% use TLS with local devices, 28 apps
upload the router MAC, 36 the router SSID, 15 the phone's Wi-Fi MAC,
and 6 IoT apps relay IoT-device MACs to the cloud (§6.1).
"""

from __future__ import annotations

import random
from typing import List

from repro.apps.appmodel import (
    AppCategory,
    AppModel,
    ExfilRule,
    Identifier,
    ScanProtocol,
)
from repro.apps.android import AndroidPermission
from repro.apps.sdks import sdk_by_name

DATASET_SIZE = 2335
IOT_APP_COUNT = 987
REGULAR_APP_COUNT = 1348

_BASE_PERMISSIONS = [
    AndroidPermission.INTERNET.value,
    AndroidPermission.ACCESS_WIFI_STATE.value,
]
_MULTICAST = AndroidPermission.CHANGE_WIFI_MULTICAST_STATE.value
_LOCATION = AndroidPermission.ACCESS_COARSE_LOCATION.value


def named_case_study_apps() -> List[AppModel]:
    """The apps the paper discusses by name."""
    return [
        AppModel(
            package="com.amazon.dee.app",
            name="Amazon Alexa",
            category=AppCategory.IOT,
            permissions=_BASE_PERMISSIONS + [_MULTICAST, _LOCATION],
            scan_protocols=[ScanProtocol.MDNS, ScanProtocol.SSDP, ScanProtocol.TPLINK_SHP],
            companion_vendors=["Amazon", "TP-Link", "Philips", "Meross"],
            uses_tls_to_devices=True,
            receives_downlink_macs=True,
            exfil=[
                # §6.1: collects MACs of devices configured on Alexa, the
                # Philips Bridge ID, and the MAC of the *unpaired* Meross
                # plug; also TP-Link device/OEM ids from TPLINK-SHP.
                ExfilRule("device-metrics-us.amazon.com",
                          [Identifier.DEVICE_MAC, Identifier.DEVICE_UUID,
                           Identifier.TPLINK_IDS, Identifier.DEVICE_MODEL],
                          party="first"),
            ],
        ),
        AppModel(
            package="com.tuya.smart",
            name="Tuya Smart",
            category=AppCategory.IOT,
            permissions=_BASE_PERMISSIONS + [_MULTICAST],
            sdks=[sdk_by_name("TuyaSmartSDK")],
            scan_protocols=[ScanProtocol.MDNS],
            companion_vendors=["Tuya"],
            uses_tls_to_devices=True,
            receives_downlink_macs=True,
        ),
        AppModel(
            package="com.tplink.kasa_android",
            name="TP-Link Kasa",
            category=AppCategory.IOT,
            permissions=_BASE_PERMISSIONS + [_MULTICAST, _LOCATION],
            scan_protocols=[ScanProtocol.TPLINK_SHP],
            companion_vendors=["TP-Link"],
            uses_tls_to_devices=True,
            exfil=[
                # §6.1: uploads TPLINK-SHP identifiers plus the
                # geolocation of the plug and the mobile device.
                ExfilRule("use1-api.tplinkra.com",
                          [Identifier.TPLINK_IDS, Identifier.GEOLOCATION,
                           Identifier.DEVICE_MAC],
                          party="first"),
            ],
        ),
        AppModel(
            package="com.blueair.android",
            name="Blueair Friend",
            category=AppCategory.IOT,
            permissions=_BASE_PERMISSIONS + [_MULTICAST, _LOCATION],
            scan_protocols=[ScanProtocol.MDNS],
            companion_vendors=["Blueair"],
            uses_tls_to_devices=True,
            exfil=[
                # §6.1: purifier MAC + coarse geolocation + AAID — linking
                # a persistent ID to a resettable one defeats resets.
                ExfilRule("api.blueair.io",
                          [Identifier.DEVICE_MAC, Identifier.GEOLOCATION, Identifier.AAID],
                          party="first"),
            ],
        ),
        AppModel(
            package="com.google.android.apps.chromecast.app",
            name="Google Home",
            category=AppCategory.IOT,
            permissions=_BASE_PERMISSIONS + [_MULTICAST, _LOCATION],
            scan_protocols=[ScanProtocol.MDNS, ScanProtocol.SSDP, ScanProtocol.TPLINK_SHP],
            companion_vendors=["Google", "TP-Link"],
            uses_tls_to_devices=True,
            receives_downlink_macs=True,
            exfil=[
                # §6.1: the Nest Hub shares the Wi-Fi AP MAC with the
                # Chromecast app even when app and device are not paired.
                ExfilRule("clients3.google.com", [Identifier.ROUTER_MAC], party="first"),
            ],
        ),
        AppModel(
            package="com.cnn.mobile.android.phone",
            name="CNN (v6.18.3)",
            category=AppCategory.REGULAR,
            permissions=_BASE_PERMISSIONS + [_MULTICAST],
            sdks=[sdk_by_name("AppDynamics")],
            scan_protocols=[ScanProtocol.SSDP],  # casting feature
        ),
        AppModel(
            package="com.luckyapp.winner",
            name="Lucky Time - Win Rewards Every Day",
            category=AppCategory.REGULAR,
            permissions=_BASE_PERMISSIONS,
            sdks=[sdk_by_name("innosdk")],
        ),
        AppModel(
            package="org.speedspot.speedspotspeedtest",
            name="Simple Speedcheck",
            category=AppCategory.REGULAR,
            permissions=_BASE_PERMISSIONS + [_LOCATION],
            sdks=[sdk_by_name("umlaut-insightCore")],
        ),
        AppModel(
            package="com.pzolee.networkscanner",
            name="Device Finder",
            category=AppCategory.REGULAR,
            permissions=_BASE_PERMISSIONS,
            scan_protocols=[ScanProtocol.NETBIOS, ScanProtocol.ARP],
        ),
        AppModel(
            package="com.myprog.netscan",
            name="Network Scanner",
            category=AppCategory.REGULAR,
            permissions=_BASE_PERMISSIONS,
            scan_protocols=[ScanProtocol.NETBIOS, ScanProtocol.ARP],
        ),
    ]


def generate_app_dataset(seed: int = 11) -> List[AppModel]:
    """Generate all 2,335 apps deterministically."""
    rng = random.Random(seed)
    apps = named_case_study_apps()
    iot_count = sum(1 for app in apps if app.category is AppCategory.IOT)
    regular_count = len(apps) - iot_count

    # Behaviour quotas for the synthetic remainder (paper marginals
    # minus what the named apps already contribute).
    mdns_quota = round(DATASET_SIZE * 0.06) - sum(
        1 for app in apps if ScanProtocol.MDNS in app.all_scan_protocols
    )
    ssdp_quota = round(DATASET_SIZE * 0.04) - sum(
        1 for app in apps if ScanProtocol.SSDP in app.all_scan_protocols
    )
    netbios_quota = 10 - sum(
        1 for app in apps if ScanProtocol.NETBIOS in app.all_scan_protocols
    )
    tls_quota = round(DATASET_SIZE * 0.25) - sum(1 for app in apps if app.uses_tls_to_devices)
    router_mac_quota = 28 - sum(
        1 for app in apps
        if any(Identifier.ROUTER_MAC in rule.identifiers for rule in app.all_exfil_rules)
    )
    router_ssid_quota = 36 - sum(
        1 for app in apps
        if any(Identifier.ROUTER_SSID in rule.identifiers for rule in app.all_exfil_rules)
    )
    wifi_mac_quota = 15
    device_mac_iot_quota = 6 - sum(
        1 for app in apps
        if app.category is AppCategory.IOT
        and any(Identifier.DEVICE_MAC in rule.identifiers for rule in app.all_exfil_rules)
    )
    downlink_quota = 13 - sum(1 for app in apps if app.receives_downlink_macs)
    mytracker_quota = 4  # "non-IoT apps from the same developer" (§6.1)
    amplitude_quota = 3

    iot_vendor_pool = [
        "Amazon", "Google", "TP-Link", "Tuya", "Philips", "Ring", "Wyze",
        "Meross", "Samsung", "LG", "Arlo", "D-Link", "Sengled", "Wiz",
        "Yeelight", "SmartThings", "Belkin", "IKEA", "Aqara",
    ]
    iot_words = ["smart", "home", "cam", "plug", "light", "hub", "sense", "air", "secure"]
    regular_words = ["chat", "news", "game", "photo", "fitness", "music", "shop", "weather", "social"]

    index = 0
    while len(apps) < DATASET_SIZE:
        index += 1
        is_iot = iot_count < IOT_APP_COUNT and (
            regular_count >= REGULAR_APP_COUNT or rng.random() < 0.42
        )
        if is_iot:
            iot_count += 1
            vendor = rng.choice(iot_vendor_pool)
            word = rng.choice(iot_words)
            app = AppModel(
                package=f"com.{vendor.lower().replace('-', '')}.{word}{index}",
                name=f"{vendor} {word.title()} {index}",
                category=AppCategory.IOT,
                permissions=list(_BASE_PERMISSIONS),
                companion_vendors=[vendor],
            )
        else:
            regular_count += 1
            word = rng.choice(regular_words)
            app = AppModel(
                package=f"io.app{index}.{word}",
                name=f"{word.title()} App {index}",
                category=AppCategory.REGULAR,
                permissions=list(_BASE_PERMISSIONS),
            )

        # Assign scan behaviours until quotas drain.  Companion apps are
        # likelier to scan (their service requires discovery, §6.1).
        scan_bias = 2.5 if app.category is AppCategory.IOT else 1.0
        remaining = DATASET_SIZE - len(apps)
        if mdns_quota > 0 and rng.random() < scan_bias * mdns_quota / max(remaining, 1):
            app.scan_protocols.append(ScanProtocol.MDNS)
            app.permissions.append(_MULTICAST)
            mdns_quota -= 1
        if ssdp_quota > 0 and rng.random() < scan_bias * ssdp_quota / max(remaining, 1):
            app.scan_protocols.append(ScanProtocol.SSDP)
            if _MULTICAST not in app.permissions:
                app.permissions.append(_MULTICAST)
            ssdp_quota -= 1
        if netbios_quota > 0 and app.category is AppCategory.REGULAR and rng.random() < netbios_quota / max(remaining, 1):
            app.scan_protocols.append(ScanProtocol.NETBIOS)
            netbios_quota -= 1
        if tls_quota > 0 and rng.random() < (3.0 if app.category is AppCategory.IOT else 0.4) * tls_quota / max(remaining, 1):
            app.uses_tls_to_devices = True
            tls_quota -= 1
        if router_ssid_quota > 0 and rng.random() < router_ssid_quota / max(remaining, 1):
            app.permissions.append(_LOCATION)
            app.exfil.append(
                ExfilRule(f"analytics.app{index}.io", [Identifier.ROUTER_SSID], party="third")
            )
            router_ssid_quota -= 1
        if router_mac_quota > 0 and rng.random() < router_mac_quota / max(remaining, 1):
            app.exfil.append(
                ExfilRule(f"metrics.app{index}.io", [Identifier.ROUTER_MAC], party="third")
            )
            router_mac_quota -= 1
        if wifi_mac_quota > 0 and rng.random() < wifi_mac_quota / max(remaining, 1):
            app.exfil.append(
                ExfilRule(f"ads.app{index}.io", [Identifier.WIFI_MAC], party="third")
            )
            wifi_mac_quota -= 1
        if (
            device_mac_iot_quota > 0
            and app.category is AppCategory.IOT
            and rng.random() < device_mac_iot_quota / max(remaining, 1)
        ):
            app.exfil.append(
                ExfilRule(f"cloud.{app.companion_vendors[0].lower()}.com",
                          [Identifier.DEVICE_MAC], party="first")
            )
            device_mac_iot_quota -= 1
        if downlink_quota > 0 and app.category is AppCategory.IOT and rng.random() < downlink_quota / max(remaining, 1):
            app.receives_downlink_macs = True
            downlink_quota -= 1
        if mytracker_quota > 0 and app.category is AppCategory.REGULAR and rng.random() < mytracker_quota / max(remaining, 1):
            app.sdks.append(sdk_by_name("MyTracker"))
            mytracker_quota -= 1
        if amplitude_quota > 0 and app.category is AppCategory.IOT and rng.random() < amplitude_quota / max(remaining, 1):
            app.sdks.append(sdk_by_name("Amplitude"))
            amplitude_quota -= 1
        apps.append(app)
    return apps
