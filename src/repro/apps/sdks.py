"""Faithful models of the third-party SDKs the paper names (§6.1/§6.2)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.appmodel import ExfilRule, Identifier, ScanProtocol, SdkModel


def _innosdk() -> SdkModel:
    """innosdk: NetBIOS scanner in "Lucky Time - Win Rewards Every Day".

    Sends a UDP datagram to every IP in 192.168.0.0/24 regardless of
    liveness, enumerates NetBIOS shares, harvests MACs via libarp.so,
    and ships everything to gw.innotechworld.com.  The scan payload is
    algorithmically generated, "perhaps to avoid being detected as
    obvious malware" (§6.2).
    """
    return SdkModel(
        name="innosdk",
        vendor="Innotech",
        purpose="monetization",
        scan_protocols=[ScanProtocol.NETBIOS, ScanProtocol.ARP],
        exfil=[
            ExfilRule(
                endpoint="gw.innotechworld.com",
                identifiers=[Identifier.DEVICE_MAC, Identifier.HOSTNAMES],
                party="third",
                sdk="innosdk",
            )
        ],
        algorithmic_payload=True,
        scans_entire_prefix=True,
    )


def _appdynamics() -> SdkModel:
    """AppDynamics (Cisco): APM SDK in the CNN app (§6.2).

    Wraps network-library callbacks, so it sees the app's SSDP/UPnP
    casting traffic; it tracks requests to events.claspws.tv/v1/event
    whose URL parameters include base64-encoded Wi-Fi AP SSID, Android
    device ID, IDFA, and the list of UPnP devices with screens
    (CVE-2020-0454 side channel).
    """
    return SdkModel(
        name="AppDynamics",
        vendor="Cisco",
        purpose="apm",
        scan_protocols=[],  # it piggybacks on the host app's SSDP casting
        exfil=[
            ExfilRule(
                endpoint="events.claspws.tv/v1/event",
                identifiers=[
                    Identifier.ROUTER_SSID,
                    Identifier.ANDROID_ID,
                    Identifier.AAID,
                    Identifier.SCREEN_DEVICE_LIST,
                ],
                party="third",
                sdk="AppDynamics",
                encode_base64=True,
            )
        ],
    )


def _umlaut_insightcore() -> SdkModel:
    """Umlaut insightCore: monetization SDK in Simple Speedcheck (§6.2).

    Performs SSDP discovery targeting the UPnP IGD service and uploads
    "system and network information such as the list of connected
    devices in the local network and geolocation" per its privacy
    policy.
    """
    return SdkModel(
        name="umlaut-insightCore",
        vendor="umlaut",
        purpose="monetization",
        scan_protocols=[ScanProtocol.SSDP],
        exfil=[
            ExfilRule(
                endpoint="tacs.c0nnectthed0ts.com",
                identifiers=[
                    Identifier.SCREEN_DEVICE_LIST,
                    Identifier.DEVICE_UUID,
                    Identifier.GEOLOCATION,
                ],
                party="third",
                sdk="umlaut-insightCore",
            )
        ],
    )


def _mytracker() -> SdkModel:
    """MyTracker: Russian analytics/attribution SDK (§6.1).

    Non-IoT apps embedding it scan for nearby Wi-Fi MAC addresses and
    BSSIDs and transmit them without holding location permissions.
    """
    return SdkModel(
        name="MyTracker",
        vendor="VK",
        purpose="analytics",
        scan_protocols=[ScanProtocol.ARP],
        exfil=[
            ExfilRule(
                endpoint="tracker.my.com",
                identifiers=[Identifier.ROUTER_MAC, Identifier.DEVICE_MAC],
                party="third",
                sdk="MyTracker",
            )
        ],
    )


def _amplitude() -> SdkModel:
    """Amplitude: analytics service receiving IoT device MACs (§6.1)."""
    return SdkModel(
        name="Amplitude",
        vendor="Amplitude",
        purpose="analytics",
        exfil=[
            ExfilRule(
                endpoint="api.amplitude.com",
                identifiers=[Identifier.DEVICE_MAC, Identifier.DEVICE_MODEL],
                party="third",
                sdk="Amplitude",
            )
        ],
    )


def _tuya_sdk() -> SdkModel:
    """Tuya platform SDK: relays device MACs to Tuya cloud (§6.1)."""
    return SdkModel(
        name="TuyaSmartSDK",
        vendor="Tuya",
        purpose="platform",
        scan_protocols=[ScanProtocol.TPLINK_SHP],
        exfil=[
            ExfilRule(
                endpoint="a1.tuyaus.com",
                identifiers=[Identifier.DEVICE_MAC, Identifier.DEVICE_UUID],
                party="third",
                sdk="TuyaSmartSDK",
            )
        ],
    )


SDK_REGISTRY: Dict[str, SdkModel] = {
    sdk.name: sdk
    for sdk in (
        _innosdk(),
        _appdynamics(),
        _umlaut_insightcore(),
        _mytracker(),
        _amplitude(),
        _tuya_sdk(),
    )
}


def sdk_by_name(name: str) -> Optional[SdkModel]:
    return SDK_REGISTRY.get(name)
