"""The AppCensus-style instrumented runtime (§3.2).

An :class:`InstrumentedPhone` joins the simulated LAN, executes an
:class:`AppModel` for a Monkey-style session, and records the three
observable streams the paper's analysis consumes:

* permission-protected API accesses (granted and denied),
* local network traffic the app generates (real frames on the LAN),
* decrypted cloud-bound flows (the TLS-MITM view), with the concrete
  identifier values the app harvested.
"""

from __future__ import annotations

import base64
import ipaddress
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.apps.android import (
    AndroidApi,
    AndroidPermission,
    AndroidVersion,
    PermissionDenied,
    PermissionModel,
)
from repro.apps.appmodel import AppCategory, AppModel, Identifier, ScanProtocol
from repro.devices.behaviors import DeviceNode
from repro.net.decode import DecodedPacket
from repro.obs import get_obs
from repro.protocols.dns import DnsMessage
from repro.protocols.mdns import MDNS_GROUP_V4, MDNS_PORT, ServiceAdvertisement, mdns_query
from repro.protocols.netbios import NetbiosNsQuery
from repro.protocols.ssdp import SSDP_GROUP_V4, SSDP_PORT, SsdpMessage, ST_ALL, ST_IGD
from repro.protocols.tls import TlsRecord, TlsVersion
from repro.protocols.tplink_shp import TPLINK_SHP_PORT, TplinkShpMessage
from repro.simnet.lan import Lan
from repro.simnet.node import Node


@dataclass
class ApiAccess:
    """One tracked access to a permission-protected Android API."""

    timestamp: float
    api: AndroidApi
    granted: bool
    value: str = ""
    via_side_channel: bool = False


@dataclass
class CloudFlow:
    """One decrypted cloud-bound (or cloud-originated) flow."""

    timestamp: float
    app: str
    endpoint: str
    party: str  # "first" or "third"
    sdk: Optional[str]
    payload: Dict[str, object]
    direction: str = "up"  # "up" (exfiltration) or "down" (downlink)
    encoded_base64: bool = False

    def payload_values(self) -> List[str]:
        values: List[str] = []
        for value in self.payload.values():
            if isinstance(value, (list, tuple, set)):
                values.extend(str(item) for item in value)
            else:
                values.append(str(value))
        return values


@dataclass
class AppRunResult:
    """Everything the instrumented runtime observed for one app session."""

    app: AppModel
    api_accesses: List[ApiAccess] = field(default_factory=list)
    cloud_flows: List[CloudFlow] = field(default_factory=list)
    harvested: Dict[Identifier, Set[str]] = field(default_factory=dict)
    protocols_used: Set[str] = field(default_factory=set)
    lan_packets_sent: int = 0

    def harvested_values(self, identifier: Identifier) -> Set[str]:
        return self.harvested.get(identifier, set())

    def uploads_of(self, identifier: Identifier) -> List[CloudFlow]:
        return [
            flow
            for flow in self.cloud_flows
            if flow.direction == "up" and identifier.value in flow.payload
        ]


class InstrumentedPhone(Node):
    """The Pixel 3a running AppCensus instrumentation."""

    def __init__(
        self,
        name: str = "pixel-3a",
        mac: str = "02:00:5e:00:10:01",
        android_version: AndroidVersion = AndroidVersion.PIE,
        ssid: str = "MonIoTr-Lab",
        rng: Optional[random.Random] = None,
    ):
        super().__init__(name=name, mac=mac, ip="0.0.0.0", vendor="Google")
        self.android_version = android_version
        self.permission_model = PermissionModel(android_version)
        self.ssid = ssid
        self.rng = rng if rng is not None else random.Random(0x5EED)
        self.aaid = str(__import__("uuid").UUID(int=self.rng.getrandbits(128)))
        self.android_id = f"{self.rng.getrandbits(64):016x}"
        self.latitude = 42.3376
        self.longitude = -71.0870
        self._inbox: List[DecodedPacket] = []
        self.add_raw_hook(lambda _node, packet: self._inbox.append(packet))

    # -- low-level helpers ---------------------------------------------------------

    def _drain_inbox(self) -> List[DecodedPacket]:
        packets, self._inbox = self._inbox, []
        return packets

    def _settle(self) -> None:
        """Replies in the simulated stack are delivered synchronously, so
        there is nothing to wait for; kept as an explicit sequence point
        for readers used to asynchronous socket APIs."""
        return

    # -- the app session -------------------------------------------------------------

    def run_app(self, app: AppModel, scan_rounds: int = 1) -> AppRunResult:
        """Execute one Monkey-exercised session of ``app``."""
        result = AppRunResult(app=app)
        granted = {
            AndroidPermission(value)
            for value in app.permissions
            if value in AndroidPermission._value2member_map_
        }
        self._track_api(result, AndroidApi.MULTICAST_LOCK, granted)
        if app.package in ("com.tuya.smart", "com.google.android.apps.chromecast.app"):
            # §4.3: "the Tuya and Chromecast companion apps already use
            # the Matter standard to advertise their availability".
            self._advertise_matter_commissioner(result)
        for _ in range(scan_rounds):
            self._run_scans(app, result, granted)
        self._collect_phone_identifiers(app, result, granted)
        self._tls_to_devices(app, result)
        self._emit_cloud_flows(app, result)
        self._receive_downlink(app, result)
        obs = get_obs()
        if obs.enabled:
            metrics = obs.metrics.scoped("apps")
            metrics.counter("runs_total", "app sessions executed").inc()
            metrics.counter(
                "lan_packets_total", "LAN packets sent by app sessions",
            ).inc(result.lan_packets_sent)
            flows = metrics.counter(
                "cloud_flows_total", "cloud flows observed, per SDK")
            for flow in result.cloud_flows:
                flows.inc(sdk=flow.sdk or "app-owned", direction=flow.direction)
            obs.logger("apps").debug(
                "app_run", package=app.package,
                lan_packets=result.lan_packets_sent,
                cloud_flows=len(result.cloud_flows))
        return result

    def _advertise_matter_commissioner(self, result: AppRunResult) -> None:
        advert = ServiceAdvertisement(
            service_type="_matterc._udp.local",
            instance_name=self.android_id.upper(),
            hostname=f"{self.name}.local",
            port=5540,
            address=self.ip,
            txt={"VP": "65521+32769", "CM": "1"},
        )
        self.join_group(MDNS_GROUP_V4)
        self.send_udp(MDNS_GROUP_V4, MDNS_PORT, advert.to_response().encode(), src_port=MDNS_PORT)
        result.lan_packets_sent += 1
        result.protocols_used.add("matter")

    # -- scanning --------------------------------------------------------------------

    def _run_scans(self, app: AppModel, result: AppRunResult, granted) -> None:
        protocols = app.all_scan_protocols
        if ScanProtocol.MDNS in protocols:
            self._track_api(result, AndroidApi.NSD_DISCOVER_SERVICES, granted)
            self._scan_mdns(result)
        if ScanProtocol.SSDP in protocols:
            self._scan_ssdp(app, result)
        if ScanProtocol.NETBIOS in protocols:
            self._scan_netbios(app, result)
        if ScanProtocol.ARP in protocols:
            self._scan_arp(result)
        if ScanProtocol.TPLINK_SHP in protocols:
            self._scan_tplink(result)

    def _scan_mdns(self, result: AppRunResult) -> None:
        self.join_group(MDNS_GROUP_V4)
        query = mdns_query(
            ["_googlecast._tcp.local", "_hap._tcp.local", "_hue._tcp.local",
             "_airplay._tcp.local", "_amzn-alexa._tcp.local", "_spotify-connect._tcp.local"]
        )
        self.send_udp(MDNS_GROUP_V4, MDNS_PORT, query.encode(), src_port=MDNS_PORT)
        result.lan_packets_sent += 1
        result.protocols_used.add("mdns")
        self._settle()
        for packet in self._drain_inbox():
            if packet.udp is None or packet.udp.src_port != MDNS_PORT:
                continue
            try:
                message = DnsMessage.decode(packet.udp.payload)
            except ValueError:
                continue
            if not message.is_response:
                continue
            for advert in ServiceAdvertisement.from_response(message):
                self._harvest(result, Identifier.HOSTNAMES, advert.hostname)
                self._harvest(result, Identifier.DEVICE_MODEL, advert.instance_name)
                if "id" in advert.txt:
                    self._harvest(result, Identifier.DEVICE_UUID, advert.txt["id"])
            self._harvest(result, Identifier.DEVICE_MAC, str(packet.frame.src))

    def _scan_ssdp(self, app: AppModel, result: AppRunResult) -> None:
        self.join_group(SSDP_GROUP_V4)
        targets = [ST_ALL]
        if app.has_sdk("umlaut-insightCore"):
            targets.append(ST_IGD)  # the IGD-specific discovery (§6.2)
        if app.package.startswith("com.cnn"):
            targets.append("urn:dial-multiscreen-org:service:dial:1")
        for target in targets:
            message = SsdpMessage.msearch(target)
            self.send_udp(SSDP_GROUP_V4, SSDP_PORT, message.encode(), src_port=50123)
            result.lan_packets_sent += 1
        result.protocols_used.add("ssdp")
        self._settle()
        for packet in self._drain_inbox():
            if packet.udp is None or packet.udp.src_port != SSDP_PORT:
                continue
            try:
                message = SsdpMessage.decode(packet.udp.payload)
            except ValueError:
                continue
            uuid_token = message.uuid()
            if uuid_token:
                self._harvest(result, Identifier.DEVICE_UUID, uuid_token)
            if message.server:
                self._harvest(result, Identifier.DEVICE_MODEL, message.server)
            self._harvest(result, Identifier.DEVICE_MAC, str(packet.frame.src))
            self._harvest(result, Identifier.SCREEN_DEVICE_LIST,
                          f"{packet.src_ip}:{message.location or ''}")

    def _scan_netbios(self, app: AppModel, result: AppRunResult) -> None:
        result.protocols_used.add("netbios")
        scans_everything = any(sdk.scans_entire_prefix for sdk in app.sdks)
        if scans_everything:
            # innosdk probes every IP in the /24 regardless of liveness.
            targets = [str(host) for host in ipaddress.ip_network(self.lan.subnet).hosts()]
        else:
            targets = [node.ip for node in self.lan.nodes if node is not self]
        query = NetbiosNsQuery().encode()
        for target in targets:
            self.send_udp(target, 137, query, src_port=137)
            result.lan_packets_sent += 1
        self._settle()
        self._drain_inbox()

    def _scan_arp(self, result: AppRunResult) -> None:
        result.protocols_used.add("arp")
        for host in list(ipaddress.ip_network(self.lan.subnet).hosts())[:254]:
            target = str(host)
            if target == self.ip:
                continue
            self.send_arp_request(target)
            result.lan_packets_sent += 1
        self._settle()
        for packet in self._drain_inbox():
            if packet.arp is not None and packet.arp.op == 2:
                self._harvest(result, Identifier.DEVICE_MAC, str(packet.arp.sender_mac))

    def _scan_tplink(self, result: AppRunResult) -> None:
        result.protocols_used.add("tplink_shp")
        query = TplinkShpMessage.get_sysinfo_query()
        self.send_udp("255.255.255.255", TPLINK_SHP_PORT, query.encode(), src_port=50999)
        result.lan_packets_sent += 1
        self._settle()
        for packet in self._drain_inbox():
            if packet.udp is None or packet.udp.src_port != TPLINK_SHP_PORT:
                continue
            try:
                message = TplinkShpMessage.decode(packet.udp.payload)
            except ValueError:
                continue
            info = message.sysinfo
            if not info:
                continue
            self._harvest(result, Identifier.TPLINK_IDS, info.get("deviceId", ""))
            self._harvest(result, Identifier.TPLINK_IDS, info.get("oemId", ""))
            self._harvest(result, Identifier.DEVICE_MAC, info.get("mac", ""))
            if "latitude" in info:
                self._harvest(
                    result, Identifier.GEOLOCATION,
                    f"{info['latitude']},{info['longitude']}",
                )

    # -- phone-side identifiers --------------------------------------------------------

    def _collect_phone_identifiers(self, app: AppModel, result: AppRunResult, granted) -> None:
        wanted = {
            identifier
            for rule in app.all_exfil_rules
            for identifier in rule.identifiers
        }
        if Identifier.ROUTER_SSID in wanted or Identifier.ROUTER_MAC in wanted:
            value = self._track_api(result, AndroidApi.WIFI_INFO_GET_SSID, granted)
            if value is not None:
                self._harvest(result, Identifier.ROUTER_SSID, self.ssid)
                self._harvest(result, Identifier.ROUTER_MAC, str(self.lan.ap_mac))
            elif app.all_scan_protocols:
                # The §2.1 side channel: discovery protocols reveal the
                # same network identity without any dangerous permission.
                result.api_accesses.append(
                    ApiAccess(self.now, AndroidApi.WIFI_INFO_GET_SSID, False,
                              value=self.ssid, via_side_channel=True)
                )
                self._harvest(result, Identifier.ROUTER_SSID, self.ssid)
                self._harvest(result, Identifier.ROUTER_MAC, str(self.lan.ap_mac))
        if Identifier.ROUTER_MAC in wanted and not result.harvested_values(Identifier.ROUTER_MAC):
            # Pre-Android-10 ARP-cache read: pinging the gateway then
            # reading /proc/net/arp yields the router MAC without any
            # permission — exactly the technique §6.1's 28 apps rely on.
            self.send_arp_request(self.lan.gateway_ip)
            result.lan_packets_sent += 1
            for packet in self._drain_inbox():
                if packet.arp is not None and packet.arp.op == 2:
                    self._harvest(result, Identifier.ROUTER_MAC, str(packet.arp.sender_mac))
                    result.api_accesses.append(
                        ApiAccess(self.now, AndroidApi.WIFI_INFO_GET_BSSID, False,
                                  value=str(packet.arp.sender_mac), via_side_channel=True)
                    )
        if Identifier.WIFI_MAC in wanted:
            self._track_api(result, AndroidApi.WIFI_INFO_GET_MAC, granted)
            self._harvest(result, Identifier.WIFI_MAC, str(self.mac))
        if Identifier.GEOLOCATION in wanted:
            value = self._track_api(result, AndroidApi.LOCATION_GET_LAST, granted)
            if value is not None:
                self._harvest(result, Identifier.GEOLOCATION,
                              f"{self.latitude},{self.longitude}")
        if Identifier.AAID in wanted:
            self._track_api(result, AndroidApi.ADVERTISING_ID, granted)
            self._harvest(result, Identifier.AAID, self.aaid)
        if Identifier.ANDROID_ID in wanted:
            self._harvest(result, Identifier.ANDROID_ID, self.android_id)

    def _track_api(self, result: AppRunResult, api: AndroidApi, granted) -> Optional[str]:
        try:
            self.permission_model.enforce(api, granted)
        except PermissionDenied:
            result.api_accesses.append(ApiAccess(self.now, api, granted=False))
            return None
        result.api_accesses.append(ApiAccess(self.now, api, granted=True, value="ok"))
        return "ok"

    # -- device interaction and cloud traffic ---------------------------------------------

    def _tls_to_devices(self, app: AppModel, result: AppRunResult) -> None:
        if not app.uses_tls_to_devices:
            return
        companions = [
            node
            for node in self.lan.nodes
            if isinstance(node, DeviceNode) and node.vendor in app.companion_vendors
        ]
        if not companions:
            return
        device = companions[0]
        port = device.profile.tls.port if device.profile.tls else 443
        client_hello = TlsRecord.client_hello(TlsVersion.TLS_1_2).encode()
        server_hello = TlsRecord.server_hello(TlsVersion.TLS_1_2).encode()
        self.lan.tcp_exchange(self, device, port, [client_hello], [server_hello])
        self._settle()
        result.protocols_used.add("tls")
        self._harvest(result, Identifier.DEVICE_MAC, str(device.mac))
        self._harvest(result, Identifier.DEVICE_UUID, device.uuid)

    def _emit_cloud_flows(self, app: AppModel, result: AppRunResult) -> None:
        for rule in app.all_exfil_rules:
            payload: Dict[str, object] = {}
            for identifier in rule.identifiers:
                values = sorted(result.harvested_values(identifier))
                if values:
                    payload[identifier.value] = values if len(values) > 1 else values[0]
            if not payload:
                continue
            if rule.encode_base64:
                payload = {
                    key: base64.b64encode(str(value).encode()).decode()
                    for key, value in payload.items()
                }
            result.cloud_flows.append(
                CloudFlow(
                    timestamp=self.now,
                    app=app.package,
                    endpoint=rule.endpoint,
                    party=rule.party,
                    sdk=rule.sdk,
                    payload=payload,
                    encoded_base64=rule.encode_base64,
                )
            )

    def _receive_downlink(self, app: AppModel, result: AppRunResult) -> None:
        if not app.receives_downlink_macs:
            return
        # §6.1: companion apps receive MACs of *other* LAN devices from
        # Tuya machines or AWS instances — likely captured at pairing.
        other_macs = [
            str(node.mac)
            for node in self.lan.nodes
            if isinstance(node, DeviceNode) and node.vendor not in app.companion_vendors
        ][:3]
        if not other_macs:
            return
        result.cloud_flows.append(
            CloudFlow(
                timestamp=self.now,
                app=app.package,
                endpoint="aws-iot.us-east-1.amazonaws.com",
                party="third",
                sdk=None,
                payload={Identifier.DEVICE_MAC.value: other_macs},
                direction="down",
            )
        )

    # -- shared -----------------------------------------------------------------------

    @staticmethod
    def _harvest(result: AppRunResult, identifier: Identifier, value: str) -> None:
        if value:
            result.harvested.setdefault(identifier, set()).add(value)
