"""Mobile-app dataset and instrumented-runtime analysis.

Reproduces §3.2/§4.3/§6.1/§6.2: a 2,335-app dataset (987 IoT companion
+ 1,348 regular apps), an AppCensus-style instrumented Android runtime
that records permission-protected API access, local network scanning
(mDNS/SSDP/NetBIOS/ARP over real frames on the simulated LAN), and
decrypted cloud uploads — plus faithful models of the named third-party
SDKs (innosdk, AppDynamics, Umlaut insightCore, MyTracker, Amplitude).
"""

from repro.apps.appmodel import AppModel, SdkModel, AppCategory, Identifier
from repro.apps.android import AndroidApi, AndroidPermission, AndroidVersion, PermissionDenied
from repro.apps.sdks import SDK_REGISTRY, sdk_by_name
from repro.apps.dataset import generate_app_dataset, DATASET_SIZE, IOT_APP_COUNT, REGULAR_APP_COUNT
from repro.apps.runtime import InstrumentedPhone, AppRunResult, CloudFlow, ApiAccess

__all__ = [
    "AppModel",
    "SdkModel",
    "AppCategory",
    "Identifier",
    "AndroidApi",
    "AndroidPermission",
    "AndroidVersion",
    "PermissionDenied",
    "SDK_REGISTRY",
    "sdk_by_name",
    "generate_app_dataset",
    "DATASET_SIZE",
    "IOT_APP_COUNT",
    "REGULAR_APP_COUNT",
    "InstrumentedPhone",
    "AppRunResult",
    "CloudFlow",
    "ApiAccess",
]
