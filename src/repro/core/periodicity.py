"""Appendix D.1: periodicity of discovery traffic.

"To check the periodicity of the traffic, we use an approach that
combines Discrete Fourier Transformation (DFT) and autocorrelation.  We
check periodicity for traffic from each unique (destination, protocol)
tuple...  We find that 88% of discovery protocol flows are periodic,
and we identify a total of 580 different periodic groups (destination,
protocol) across our IoT devices, averaging approximately 6.2 groups
per device."
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.classify.labels import DISCOVERY_LABELS
from repro.classify.rules import CorrectedClassifier
from repro.net.decode import DecodedPacket
from repro.net.index import CaptureIndex


@dataclass
class PeriodDetection:
    """Outcome for one (device, destination, protocol) group."""

    device: str
    destination: str
    protocol: str
    event_count: int
    is_periodic: bool
    period: Optional[float] = None  # seconds
    dft_score: float = 0.0
    autocorr_score: float = 0.0


@dataclass
class PeriodicityResult:
    """Aggregate of the Appendix D.1 analysis."""

    detections: List[PeriodDetection] = field(default_factory=list)

    @property
    def group_count(self) -> int:
        return len(self.detections)

    @property
    def periodic_groups(self) -> List[PeriodDetection]:
        return [detection for detection in self.detections if detection.is_periodic]

    @property
    def periodic_fraction(self) -> float:
        eligible = [d for d in self.detections if d.event_count >= 4]
        if not eligible:
            return 0.0
        return sum(1 for d in eligible if d.is_periodic) / len(eligible)

    def groups_per_device(self) -> float:
        devices = {detection.device for detection in self.detections}
        if not devices:
            return 0.0
        return len(self.periodic_groups) / len(devices)


def detect_period(
    timestamps: List[float],
    bin_width: float = 1.0,
    dft_threshold: float = 0.30,
    autocorr_threshold: float = 0.5,
    use_dft: bool = True,
    use_autocorr: bool = True,
) -> Tuple[bool, Optional[float], float, float]:
    """DFT + autocorrelation periodicity test on one event series.

    The series is binned into a rate signal; the DFT must concentrate
    energy in one non-DC frequency AND the autocorrelation at the
    implied lag must confirm it.  Either check can be disabled for the
    ablation benchmark.

    Returns (is_periodic, period_seconds, dft_score, autocorr_score).
    """
    if len(timestamps) < 4:
        return False, None, 0.0, 0.0
    times = np.asarray(sorted(timestamps), dtype=float)
    span = times[-1] - times[0]
    if span <= 0:
        return False, None, 0.0, 0.0
    # Choose a bin width that gives decent resolution for this span.
    bin_width = max(bin_width, span / 4096.0)
    bins = int(np.ceil(span / bin_width)) + 1
    signal, _ = np.histogram(times - times[0], bins=bins, range=(0.0, bins * bin_width))
    signal = signal.astype(float)
    signal -= signal.mean()
    if not signal.any():
        return False, None, 0.0, 0.0

    # DFT: a periodic impulse train produces a comb — energy at the
    # fundamental and its harmonics.  Score = fraction of non-DC energy
    # captured by the comb of the dominant fundamental.
    spectrum = np.abs(np.fft.rfft(signal)) ** 2
    spectrum[0] = 0.0
    total_energy = spectrum.sum()
    if total_energy <= 0:
        return False, None, 0.0, 0.0
    peak_index = int(np.argmax(spectrum))
    dft_score = 0.0
    period = None
    if peak_index > 0:
        comb = 0.0
        harmonic = peak_index
        while harmonic < len(spectrum):
            lo = max(harmonic - 1, 1)
            comb += spectrum[lo : harmonic + 2].sum()
            harmonic += peak_index
        dft_score = float(min(comb / total_energy, 1.0))
        period = (bins * bin_width) / peak_index

    # Autocorrelation confirmation: the mean inter-event gap implies a
    # candidate lag; score the normalized autocorrelation there (+-1 bin).
    gaps = np.diff(times)
    candidate_period = float(np.median(gaps)) if len(gaps) else None
    autocorr_score = 0.0
    best_lag_period = None
    for candidate in {period, candidate_period} - {None}:
        lag = int(round(candidate / bin_width))
        for trial in (lag - 1, lag, lag + 1):
            if 0 < trial < len(signal):
                a, b = signal[:-trial], signal[trial:]
                denominator = np.sqrt((a * a).sum() * (b * b).sum())
                if denominator > 0:
                    score = float((a * b).sum() / denominator)
                    if score > autocorr_score:
                        autocorr_score = score
                        best_lag_period = trial * bin_width

    checks = []
    if use_dft:
        checks.append(dft_score >= dft_threshold)
    if use_autocorr:
        checks.append(autocorr_score >= autocorr_threshold)
    is_periodic = bool(checks) and all(checks)
    reported_period = best_lag_period if best_lag_period is not None else period
    return is_periodic, reported_period, dft_score, autocorr_score


def discovery_intervals(
    result: "PeriodicityResult",
    device_group: Dict[str, str],
) -> Dict[Tuple[str, str], float]:
    """§5.1 "Discovery Intervals": median period per (group, protocol).

    The paper reports, e.g., Google SSDP every 20 s vs Echo SSDP every
    2-3 h, and notes that short intervals enable temporal tracking of
    the household while costing congestion/energy.
    """
    import statistics

    samples: Dict[Tuple[str, str], List[float]] = defaultdict(list)
    for detection in result.periodic_groups:
        if detection.period is None:
            continue
        group = device_group.get(detection.device)
        if group is None:
            continue
        samples[(group, detection.protocol)].append(detection.period)
    return {
        key: float(statistics.median(values)) for key, values in samples.items()
    }


def analyze_periodicity(
    packets: "Iterable[DecodedPacket] | CaptureIndex",
    device_macs: Dict[str, str],
    classifier: Optional[CorrectedClassifier] = None,
    discovery_only: bool = True,
    min_events: int = 4,
    use_dft: bool = True,
    use_autocorr: bool = True,
) -> PeriodicityResult:
    """Group traffic by (device, destination, protocol) and test each.

    Ports are deliberately ignored ("the randomization of port number
    is prevalent on IoT devices", Appendix D.1).  Walks the index's
    chronological rows (group creation is first-seen ordered) with
    memoized labels.
    """
    index = CaptureIndex.ensure(packets)
    groups: Dict[Tuple[str, str, str], List[float]] = defaultdict(list)
    table = index.table
    ts_col = table.timestamps
    src_col, dst_col, dip_col = table.src_mac, table.dst_mac, table.dst_ip
    mac_strings, ip_strings = table.mac_strings, table.ip_strings
    device_of = [device_macs.get(mac) for mac in mac_strings]
    label_at = index.label_at
    for rid in range(len(table)):
        device = device_of[src_col[rid]]
        if device is None:
            continue
        label = label_at(rid, classifier)
        if label is None:
            continue
        if discovery_only and label not in DISCOVERY_LABELS:
            continue
        dip = dip_col[rid]
        destination = ip_strings[dip] if dip >= 0 else mac_strings[dst_col[rid]]
        groups[(device, destination, str(label))].append(ts_col[rid])
    return detect_groups(groups, min_events=min_events, use_dft=use_dft,
                         use_autocorr=use_autocorr)


def detect_groups(
    groups: "Dict[Tuple[str, str, str], List[float]]",
    min_events: int = 4,
    use_dft: bool = True,
    use_autocorr: bool = True,
) -> PeriodicityResult:
    """Run :func:`detect_period` over pre-grouped event series.

    Detection order follows the mapping's iteration (first-seen) order
    — shared by :func:`analyze_periodicity` and the incremental
    :class:`repro.monitor.state.IncrementalPeriodicity`, whose merged
    groups reproduce the batch first-seen order exactly.
    """
    result = PeriodicityResult()
    for (device, destination, protocol), timestamps in groups.items():
        if len(timestamps) < min_events:
            result.detections.append(
                PeriodDetection(device, destination, protocol, len(timestamps), False)
            )
            continue
        is_periodic, period, dft_score, autocorr_score = detect_period(
            timestamps, use_dft=use_dft, use_autocorr=use_autocorr
        )
        result.detections.append(
            PeriodDetection(
                device,
                destination,
                protocol,
                len(timestamps),
                is_periodic,
                period,
                dft_score,
                autocorr_score,
            )
        )
    return result
