"""Section 6.3 / Table 2: household fingerprintability.

A thin orchestration layer over :mod:`repro.inspector`: generate (or
accept) a crowdsourced dataset, run the identifier extraction + entropy
analysis, and render the Table 2 rows, including the OUI-validation
ablation (§6.3 filters MAC candidates against each device's OUI).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.inspector.entropy import EntropyAnalysis, analyze_dataset
from repro.inspector.generate import generate_dataset
from repro.inspector.schema import InspectorDataset


@dataclass
class FingerprintRow:
    """One rendered Table 2 row."""

    type_count: int
    identifiers: str
    products: int
    vendors: int
    devices: int
    households: int
    unique_pct: float
    entropy: float


@dataclass
class FingerprintReport:
    """Table 2 plus context statistics."""

    dataset_devices: int
    dataset_households: int
    dataset_vendors: int
    dataset_products: int
    rows: List[FingerprintRow] = field(default_factory=list)
    median_devices_per_household: float = 0.0

    def row_for(self, identifiers: str) -> Optional[FingerprintRow]:
        for row in self.rows:
            if row.identifiers == identifiers:
                return row
        return None

    def to_dict(self) -> Dict[str, object]:
        """A plain-data form of the report (rows in table order)."""
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON: sorted keys, fixed indent.

        The serial-equivalence contract of :mod:`repro.fleet` is stated
        over this serialization — a sharded run must produce the exact
        same bytes as the serial :func:`fingerprint_households` path.
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FingerprintReport":
        return cls(
            dataset_devices=raw["dataset_devices"],
            dataset_households=raw["dataset_households"],
            dataset_vendors=raw["dataset_vendors"],
            dataset_products=raw["dataset_products"],
            rows=[FingerprintRow(**row) for row in raw["rows"]],
            median_devices_per_household=raw["median_devices_per_household"],
        )

    @classmethod
    def from_analysis(
        cls,
        analysis: EntropyAnalysis,
        dataset_devices: int,
        dataset_households: int,
        dataset_vendors: int,
        dataset_products: int,
        household_device_counts: List[int],
    ) -> "FingerprintReport":
        """Render Table 2 rows from an analysis plus context counts.

        Shared by the serial path and the fleet merge so both produce
        rows through the identical arithmetic.
        """
        import statistics

        report = cls(
            dataset_devices=dataset_devices,
            dataset_households=dataset_households,
            dataset_vendors=dataset_vendors,
            dataset_products=dataset_products,
            median_devices_per_household=float(
                statistics.median(household_device_counts)
            ),
        )
        for type_count, label, row, entropy in analysis.table_rows():
            report.rows.append(
                FingerprintRow(
                    type_count=type_count,
                    identifiers=label,
                    products=len(row.products),
                    vendors=len(row.vendors),
                    devices=row.devices,
                    households=row.household_count,
                    unique_pct=100.0 * row.unique_household_fraction(),
                    entropy=entropy,
                )
            )
        return report


def fingerprint_households(
    dataset: Optional[InspectorDataset] = None,
    seed: int = 23,
    validate_oui: bool = True,
) -> FingerprintReport:
    """Run the full §6.3 pipeline; generates the dataset when not given.

    This is the serial reference path.  ``repro.fleet`` produces the
    same report (byte-identical :meth:`FingerprintReport.to_json`) by
    sharding the population across worker processes; prefer
    :func:`repro.fleet.run_fleet` for full-size populations.
    """
    if dataset is None:
        dataset = generate_dataset(seed=seed)
    analysis = analyze_dataset(dataset, validate_oui=validate_oui)
    return FingerprintReport.from_analysis(
        analysis,
        dataset_devices=dataset.device_count,
        dataset_households=dataset.household_count,
        dataset_vendors=len(dataset.vendors()),
        dataset_products=len(dataset.products()),
        household_device_counts=[h.device_count for h in dataset.households],
    )
