"""Section 6.3 / Table 2: household fingerprintability.

A thin orchestration layer over :mod:`repro.inspector`: generate (or
accept) a crowdsourced dataset, run the identifier extraction + entropy
analysis, and render the Table 2 rows, including the OUI-validation
ablation (§6.3 filters MAC candidates against each device's OUI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.inspector.entropy import EntropyAnalysis, analyze_dataset
from repro.inspector.generate import generate_dataset
from repro.inspector.schema import InspectorDataset


@dataclass
class FingerprintRow:
    """One rendered Table 2 row."""

    type_count: int
    identifiers: str
    products: int
    vendors: int
    devices: int
    households: int
    unique_pct: float
    entropy: float


@dataclass
class FingerprintReport:
    """Table 2 plus context statistics."""

    dataset_devices: int
    dataset_households: int
    dataset_vendors: int
    dataset_products: int
    rows: List[FingerprintRow] = field(default_factory=list)
    median_devices_per_household: float = 0.0

    def row_for(self, identifiers: str) -> Optional[FingerprintRow]:
        for row in self.rows:
            if row.identifiers == identifiers:
                return row
        return None


def fingerprint_households(
    dataset: Optional[InspectorDataset] = None,
    seed: int = 23,
    validate_oui: bool = True,
) -> FingerprintReport:
    """Run the full §6.3 pipeline; generates the dataset when not given."""
    import statistics

    if dataset is None:
        dataset = generate_dataset(seed=seed)
    analysis = analyze_dataset(dataset, validate_oui=validate_oui)
    report = FingerprintReport(
        dataset_devices=dataset.device_count,
        dataset_households=dataset.household_count,
        dataset_vendors=len(dataset.vendors()),
        dataset_products=len(dataset.products()),
        median_devices_per_household=float(
            statistics.median(h.device_count for h in dataset.households)
        ),
    )
    for type_count, label, row, entropy in analysis.table_rows():
        report.rows.append(
            FingerprintRow(
                type_count=type_count,
                identifiers=label,
                products=len(row.products),
                vendors=len(row.vendors),
                devices=row.devices,
                households=row.household_count,
                unique_pct=100.0 * row.unique_household_fraction(),
                entropy=entropy,
            )
        )
    return report
