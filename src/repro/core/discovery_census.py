"""§5.1 discovery-protocol censuses: DHCP options and mDNS services.

DHCP: "86 devices actively request 30 different data types from other
devices using DHCP ... including unexpected requests associated with
deprecated standards (e.g., SMTP Server, Name Server, and Root Path).
We identified hostnames for 67% of devices, and 16 unique DHCP client
versions from 40% of devices.  We find that 37 devices ... use old or
custom DHCP client versions."

mDNS: "queries and responses reveal hostnames representing the services
supported by the device, such as casting (e.g., Viziocast), printing
(e.g., IPP), platform-specific services (e.g., Alexa), commercial
streaming services (e.g., Spotify), IoT standards (e.g., Matter,
Thread), and networking protocols (e.g., Bonjour Sleep Proxy)."
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.net.decode import DecodedPacket
from repro.protocols.dhcp import DhcpMessage, DhcpOption
from repro.protocols.dns import DnsMessage, DnsType

#: Option codes from standards the paper calls deprecated/unexpected.
DEPRECATED_OPTIONS = {
    int(DhcpOption.NAME_SERVER),  # IEN-116 name server
    int(DhcpOption.ROOT_PATH),
    int(DhcpOption.SMTP_SERVER),
    int(DhcpOption.LOG_SERVER),
    int(DhcpOption.LPR_SERVER),
}

#: Client version strings considered old or custom (§5.1's 37 devices).
_OLD_PREFIXES = ("udhcp 0.", "udhcp 1.1", "udhcp 1.2", "dhcpcd-5", "dhcpcd-6")


@dataclass
class DhcpCensus:
    """The §5.1 DHCP findings for one capture."""

    requesting_devices: Set[str] = field(default_factory=set)
    requested_options: Set[int] = field(default_factory=set)
    hostnames: Dict[str, str] = field(default_factory=dict)
    client_versions: Dict[str, str] = field(default_factory=dict)
    deprecated_requesters: Set[str] = field(default_factory=set)

    @property
    def unique_client_versions(self) -> Set[str]:
        return set(self.client_versions.values())

    def old_or_custom_clients(self) -> Set[str]:
        """Devices running old/custom DHCP clients (paper: 37)."""
        old = set()
        for device, version in self.client_versions.items():
            lowered = version.lower()
            if lowered.startswith(_OLD_PREFIXES) or not lowered.startswith(("udhcp", "dhcpcd")):
                old.add(device)
        return old

    def hostname_fraction(self, total_devices: int) -> float:
        return len(self.hostnames) / total_devices if total_devices else 0.0

    def version_fraction(self, total_devices: int) -> float:
        return len(self.client_versions) / total_devices if total_devices else 0.0


def dhcp_census(packets: Iterable[DecodedPacket], device_macs: Dict[str, str]) -> DhcpCensus:
    """Mine DHCP requests for the §5.1 option/hostname/version stats."""
    census = DhcpCensus()
    for packet in packets:
        if packet.udp is None or packet.udp.dst_port != 67:
            continue
        device = device_macs.get(str(packet.frame.src))
        if device is None:
            continue
        try:
            message = DhcpMessage.decode(packet.udp.payload)
        except ValueError:
            continue
        if message.op != 1:
            continue
        parameters = message.parameter_request_list
        if parameters:
            census.requesting_devices.add(device)
            census.requested_options.update(parameters)
            if DEPRECATED_OPTIONS & set(parameters):
                census.deprecated_requesters.add(device)
        if message.hostname:
            census.hostnames[device] = message.hostname
        if message.vendor_class:
            census.client_versions[device] = message.vendor_class
    return census


#: mDNS service-type -> the §5.1 service family it reveals.
SERVICE_FAMILIES = {
    "casting": ("_googlecast.", "_viziocast.", "_airplay.", "_raop.", "_amzn-wplay."),
    "printing": ("_ipp.", "_printer.", "_pdl-datastream."),
    "platform": ("_amzn-alexa.", "_hap.", "_hue.", "_nest.", "_smartthings.",
                 "_companion-link.", "_meross-dev.", "_lg-smart-device.",
                 "_androidtvremote2.", "_arlo-video.", "_nest-cam.", "_dcp.",
                 "_rsp.", "_coap."),
    "streaming": ("_spotify-connect.",),
    "iot-standard": ("_matter.", "_matterc.", "_meshcop."),
    "networking": ("_sleep-proxy.", "_workstation.", "_dns-sd."),
}


@dataclass
class MdnsServiceCensus:
    """Which mDNS service families each device reveals."""

    by_family: Dict[str, Set[str]] = field(default_factory=lambda: defaultdict(set))
    service_types: Dict[str, Set[str]] = field(default_factory=lambda: defaultdict(set))

    def families_of(self, device: str) -> List[str]:
        return sorted(
            family for family, members in self.by_family.items() if device in members
        )

    def devices_revealing(self, family: str) -> Set[str]:
        return set(self.by_family.get(family, ()))


def classify_service(name: str) -> Optional[str]:
    for family, prefixes in SERVICE_FAMILIES.items():
        if any(prefix in name for prefix in prefixes):
            return family
    return None


def mdns_service_census(
    packets: Iterable[DecodedPacket], device_macs: Dict[str, str]
) -> MdnsServiceCensus:
    """Mine mDNS traffic for the service families devices reveal."""
    census = MdnsServiceCensus()
    for packet in packets:
        if packet.udp is None or 5353 not in (packet.udp.src_port, packet.udp.dst_port):
            continue
        device = device_macs.get(str(packet.frame.src))
        if device is None:
            continue
        try:
            message = DnsMessage.decode(packet.udp.payload)
        except ValueError:
            continue
        names: List[str] = [question.name for question in message.questions]
        for record in message.all_records:
            names.append(record.name)
            if record.rtype == DnsType.PTR:
                target = record.ptr_target()
                if target:
                    names.append(target)
        for name in names:
            family = classify_service(name)
            if family is not None:
                census.by_family[family].add(device)
                census.service_types[device].add(name.split(".")[0] if name.startswith("_") else name)
    return census
