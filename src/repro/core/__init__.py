"""The paper's analyses: each module regenerates one table or figure.

============================  =========================================
Module                        Paper artifact
============================  =========================================
``protocol_census``           Figure 2 (protocol prevalence, 3 methods)
``device_graph``              Figures 1 and 4 (device-to-device graphs)
``exposure``                  Tables 1 and 5 (identifier exposure)
``responses``                 Table 4 (discovery-response correlation)
``periodicity``               Appendix D.1 (DFT + autocorrelation)
``threat_report``             Section 5 (threat analysis)
``fingerprint``               Table 2 / Section 6.3 (entropy)
``exfiltration``              Sections 6.1/6.2 (cloud dissemination)
``mitigations``               Section 7 (countermeasures, evaluated)
``pipeline``                  end-to-end study orchestration
============================  =========================================
"""

from repro.core.protocol_census import ProtocolCensus, census_from_capture
from repro.core.device_graph import DeviceGraph, build_device_graph
from repro.core.exposure import ExposureMatrix, analyze_exposure, payload_examples
from repro.core.responses import ResponseCorrelation, correlate_responses
from repro.core.periodicity import PeriodicityResult, analyze_periodicity, detect_period
from repro.core.threat_report import ThreatReport, build_threat_report
from repro.core.fingerprint import FingerprintReport, fingerprint_households
from repro.core.exfiltration import ExfiltrationAudit, audit_app_runs
from repro.core.arp_analysis import ArpAnalysis, analyze_arp
from repro.core.discovery_census import (
    DhcpCensus,
    MdnsServiceCensus,
    dhcp_census,
    mdns_service_census,
)
from repro.core.mitigations import MitigationOutcome, evaluate_mitigations
from repro.core.patterns import CommunicationPatterns, analyze_patterns
from repro.core.propagation import PropagationReport, trace_markers
from repro.core.pipeline import StudyPipeline, StudyReport

__all__ = [
    "ProtocolCensus",
    "census_from_capture",
    "DeviceGraph",
    "build_device_graph",
    "ExposureMatrix",
    "analyze_exposure",
    "payload_examples",
    "ResponseCorrelation",
    "correlate_responses",
    "PeriodicityResult",
    "analyze_periodicity",
    "detect_period",
    "ThreatReport",
    "build_threat_report",
    "FingerprintReport",
    "fingerprint_households",
    "ExfiltrationAudit",
    "audit_app_runs",
    "ArpAnalysis",
    "analyze_arp",
    "DhcpCensus",
    "dhcp_census",
    "MdnsServiceCensus",
    "mdns_service_census",
    "CommunicationPatterns",
    "analyze_patterns",
    "PropagationReport",
    "trace_markers",
    "MitigationOutcome",
    "evaluate_mitigations",
    "StudyPipeline",
    "StudyReport",
]
