"""§7 mitigations, evaluated quantitatively.

The paper's discussion proposes mitigations but (necessarily) cannot
measure them on its own data.  The simulation can: each mitigation is a
transformation applied to the crowdsourced corpus's payloads — exactly
what a privacy-respecting firmware update would change — after which
the §6.3 entropy/uniqueness analysis is re-run.

Implemented mitigations:

* ``mac_randomization``   — per-session randomized MACs in payloads
                            (and OUI randomization, breaking vendor OUIs).
* ``id_rotation``         — UUIDs rotate per epoch instead of being
                            persistent ("ID randomization", §7).
* ``name_minimization``   — user-assigned first names removed from
                            advertised instance names ("data exposure
                            minimization", §7; Könings et al.'s naming
                            recommendation, §8).
* ``strip_identifiers``   — all three classes removed (the ETSI-style
                            baseline the paper finds too generic,
                            here taken literally).
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.fingerprint import FingerprintReport, fingerprint_households
from repro.inspector.entropy import MAC_BARE_RE, MAC_SEPARATED_RE, NAME_RE, UUID_RE
from repro.inspector.schema import InspectedDevice, InspectorDataset


def _rewrite_payloads(
    dataset: InspectorDataset,
    transform: Callable[[bytes, InspectedDevice, random.Random], bytes],
    seed: int = 97,
) -> InspectorDataset:
    """Deep-copy the dataset with every mDNS/SSDP payload transformed."""
    import copy

    rng = random.Random(seed)
    mitigated = copy.deepcopy(dataset)
    for household in mitigated.households:
        for device in household.devices:
            device.mdns_responses = [
                transform(payload, device, rng) for payload in device.mdns_responses
            ]
            device.ssdp_responses = [
                transform(payload, device, rng) for payload in device.ssdp_responses
            ]
    return mitigated


def _sub_text(payload: bytes, pattern: re.Pattern, replacer) -> bytes:
    """Regex-substitute inside a payload treated as latin-1 text.

    latin-1 is byte-transparent, so untouched bytes survive verbatim.
    """
    text = payload.decode("latin-1")
    return pattern.sub(replacer, text).encode("latin-1")


# -- the mitigations ----------------------------------------------------------------


def mac_randomization(payload: bytes, device: InspectedDevice, rng: random.Random) -> bytes:
    """Replace every advertised MAC with a per-payload random one."""

    def fresh_mac(match):
        token = match.group(0)
        randomized = bytes([0x02] + [rng.randrange(256) for _ in range(5)])
        if ":" in token or "-" in token:
            return ":".join(f"{b:02x}" for b in randomized)
        return randomized.hex()

    payload = _sub_text(payload, MAC_SEPARATED_RE, fresh_mac)
    return _sub_text(payload, MAC_BARE_RE, fresh_mac)


def id_rotation(payload: bytes, device: InspectedDevice, rng: random.Random) -> bytes:
    """Rotate UUIDs: stable within one payload epoch, unlinkable across.

    Modeled as a keyed hash of (original UUID, epoch nonce); the §6.3
    observer then sees values that never repeat across sessions, so
    they stop being *persistent* identifiers.
    """
    epoch_nonce = rng.getrandbits(64).to_bytes(8, "big")

    def rotated(match):
        digest = hashlib.sha256(epoch_nonce + match.group(0).encode()).hexdigest()
        return (f"{digest[:8]}-{digest[8:12]}-{digest[12:16]}-"
                f"{digest[16:20]}-{digest[20:32]}")

    return _sub_text(payload, UUID_RE, rotated)


def name_minimization(payload: bytes, device: InspectedDevice, rng: random.Random) -> bytes:
    """Strip user-assigned possessive names from instance labels."""
    return _sub_text(payload, NAME_RE, lambda match: "Device")


def strip_identifiers(payload: bytes, device: InspectedDevice, rng: random.Random) -> bytes:
    """All three mitigations stacked."""
    payload = mac_randomization(payload, device, rng)
    payload = id_rotation(payload, device, rng)
    return name_minimization(payload, device, rng)


MITIGATIONS: Dict[str, Callable] = {
    "baseline": None,
    "mac_randomization": mac_randomization,
    "id_rotation": id_rotation,
    "name_minimization": name_minimization,
    "strip_identifiers": strip_identifiers,
}


@dataclass
class MitigationOutcome:
    """Fingerprintability before/after one mitigation."""

    name: str
    report: FingerprintReport

    def max_entropy(self) -> float:
        return max((row.entropy for row in self.report.rows if row.type_count), default=0.0)

    def uniquely_identifiable_households(self) -> int:
        """Households uniquely identified by at least one exposure row."""
        total = 0
        for row in self.report.rows:
            if row.type_count:
                total += round(row.households * row.unique_pct / 100.0)
        return total


def evaluate_mitigations(
    dataset: Optional[InspectorDataset] = None,
    seed: int = 23,
    names: Optional[List[str]] = None,
) -> List[MitigationOutcome]:
    """Run the §6.3 analysis under each mitigation; returns outcomes.

    Note the id_rotation caveat the paper itself raises for Table 2:
    uniqueness *within one short observation window* can stay high even
    for rotated IDs — what rotation buys is unlinkability over time.
    The headline number to compare is therefore the entropy of the
    *persistent* identifier pool, which collapses when values rotate.
    """
    from repro.inspector.generate import generate_dataset

    if dataset is None:
        dataset = generate_dataset(seed=seed)
    names = names if names is not None else list(MITIGATIONS)
    outcomes = []
    for name in names:
        transform = MITIGATIONS[name]
        mitigated = dataset if transform is None else _rewrite_payloads(dataset, transform)
        report = fingerprint_households(dataset=mitigated)
        outcomes.append(MitigationOutcome(name=name, report=report))
    return outcomes
