"""Table 4 / Appendix D.2: correlating discoveries with their responses.

"We correlate multicast and broadcast discoveries with their responses
by inspecting unicast inbound traffic to the devices that initiate the
discoveries.  We search for traffic employing the same transport layer
protocol and port number within a short time period (empirically set as
3 seconds)."  ARP, DHCP, and ICMP(v6) are excluded as they are used by
almost every device.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.classify.labels import Label
from repro.classify.rules import CorrectedClassifier
from repro.net.columnar import F_UNICAST, TRANSPORT_UDP
from repro.net.decode import DecodedPacket
from repro.net.index import CaptureIndex

#: Discovery labels considered, excluding the near-universal ones.
COUNTED_DISCOVERY = {Label.MDNS, Label.SSDP, Label.TPLINK_SHP, Label.TUYALP, Label.COAP, Label.NETBIOS}


@dataclass
class DeviceResponseStats:
    """Per-device discovery/response accounting."""

    device: str
    category: str
    discovery_protocols: Set[str] = field(default_factory=set)
    protocols_with_response: Set[str] = field(default_factory=set)
    responders: Set[str] = field(default_factory=set)


@dataclass
class ResponseCorrelation:
    """Aggregated Table 4."""

    per_device: Dict[str, DeviceResponseStats] = field(default_factory=dict)

    def by_category(self) -> List[Tuple[str, float, float, float]]:
        """(category, avg #discovery protocols, avg #protocols with
        response, avg #devices responded to) — the three Table 4 columns."""
        groups: Dict[str, List[DeviceResponseStats]] = defaultdict(list)
        for stats in self.per_device.values():
            if stats.discovery_protocols:
                groups[stats.category].append(stats)
        rows = []
        for category, members in sorted(groups.items()):
            count = len(members)
            rows.append(
                (
                    category,
                    sum(len(stats.discovery_protocols) for stats in members) / count,
                    sum(len(stats.protocols_with_response) for stats in members) / count,
                    sum(len(stats.responders) for stats in members) / count,
                )
            )
        return rows


def correlate_responses(
    packets: "Iterable[DecodedPacket] | CaptureIndex",
    device_macs: Dict[str, str],
    device_category: Dict[str, str],
    window: float = 3.0,
    classifier: Optional[CorrectedClassifier] = None,
    include_multicast_responses: bool = False,
) -> ResponseCorrelation:
    """Run the Appendix D.2 correlation over a capture.

    ``include_multicast_responses`` implements the appendix's stated
    future work: "A response could also be multicast traffic such as QM
    mDNS" — when enabled, a multicast mDNS *response* within the window
    of a query is credited to every device with an outstanding query.

    Discovery candidates come from the index's chronological multicast
    bucket and responses from the unicast bucket, so pending-list and
    responder insertion orders match a full scan exactly.
    """
    index = CaptureIndex.ensure(packets)
    correlation = ResponseCorrelation()
    for name in device_macs.values():
        correlation.per_device[name] = DeviceResponseStats(
            device=name, category=device_category.get(name, "Unknown")
        )

    # Pass 1: outstanding discoveries, keyed by (initiator, transport,
    # source port): each holds the discovery timestamp and protocol
    # label.  The timestamp is stored verbatim (not as a precomputed
    # deadline) so the window check below is exact for responses that
    # share the discovery's timestamp.
    table = index.table
    timestamps = table.timestamps
    src_col, dst_col = table.src_mac, table.dst_mac
    sport_col, dport_col = table.src_port, table.dst_port
    trans_col, flags_col = table.transport, table.flags
    device_of = [device_macs.get(mac) for mac in table.mac_strings]

    def _transport(rid: int) -> str:
        return "udp" if trans_col[rid] == TRANSPORT_UDP else "tcp"

    pending: Dict[Tuple[str, str, int], List[Tuple[float, str]]] = defaultdict(list)
    for rid in index.transport_multicast.rids:
        src = device_of[src_col[rid]]
        if src is None:
            continue
        label = index.label_at(rid, classifier)
        if label not in COUNTED_DISCOVERY:
            continue
        stats = correlation.per_device[src]
        stats.discovery_protocols.add(str(label))
        pending[(src, _transport(rid), sport_col[rid])].append(
            (timestamps[rid], str(label))
        )

    # Extension pass (QM mDNS): multicast responses credited to every
    # device with an outstanding mDNS query inside the window.
    if include_multicast_responses:
        from repro.protocols.dns import DnsMessage

        mdns_queries: List[Tuple[float, str]] = [
            (discovered_at, initiator)
            for (initiator, transport, port), entries in pending.items()
            if transport == "udp" and port == 5353
            for discovered_at, label in entries
            if label == str(Label.MDNS)
        ]
        for rid in index.udp.rids:
            if flags_col[rid] & F_UNICAST or dport_col[rid] != 5353:
                continue
            responder = device_of[src_col[rid]]
            try:
                message = DnsMessage.decode(table.app_payload(rid))
            except ValueError:
                continue
            if not message.is_response:
                continue
            for discovered_at, initiator in mdns_queries:
                if 0.0 <= timestamps[rid] - discovered_at <= window:
                    stats = correlation.per_device[initiator]
                    stats.protocols_with_response.add(str(Label.MDNS))
                    if responder is not None and responder != initiator:
                        stats.responders.add(responder)

    # Pass 2: unicast inbound traffic matching transport + port within
    # the window counts as a response.
    for rid in index.transport_unicast.rids:
        dst = device_of[dst_col[rid]]
        if dst is None:
            continue
        responder = device_of[src_col[rid]]
        key = (dst, _transport(rid), dport_col[rid])
        for discovered_at, label in pending.get(key, ()):
            if 0.0 <= timestamps[rid] - discovered_at <= window:
                stats = correlation.per_device[dst]
                stats.protocols_with_response.add(label)
                if responder is not None:
                    stats.responders.add(responder)
                break
    return correlation


def category_of_profile(profile) -> str:
    """Map a DeviceProfile to the Table 4 grouping."""
    if profile.vendor == "Amazon" and profile.category == "Voice Assistant":
        return "Amazon Echo"
    if profile.vendor == "Google":
        return "Google&Nest"
    if profile.vendor == "Apple":
        return "Apple"
    if profile.vendor == "Tuya":
        return "Tuya"
    if profile.category == "Media/TV":
        return "TVs"
    if profile.category == "Surveillance":
        return "Cameras"
    if "Hub" in profile.model or "Bridge" in profile.model or "Gateway" in profile.model:
        return "Hubs"
    if profile.category == "Home Automation":
        return "Home Auto"
    if profile.category == "Home Appliance":
        return "Appliances"
    return profile.category
