"""Tables 1 and 5: information exposure via discovery protocols.

Walks a capture, parses every discovery-protocol payload with the real
codecs, and records which identifier classes each protocol exposed for
each device.  Column names match Table 1.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.decode import DecodedPacket
from repro.net.index import CaptureIndex
from repro.protocols.dhcp import DhcpMessage
from repro.protocols.dns import DnsMessage, DnsType
from repro.protocols.ssdp import SsdpMessage
from repro.protocols.tplink_shp import TplinkShpMessage
from repro.protocols.tuyalp import TuyaLpMessage

#: Table 1 column names.
EXPOSURE_TYPES = [
    "MAC",
    "Device/Model",
    "OS Version",
    "Display name",
    "UUIDs",
    "GW id",
    "Prod. Key",
    "OEM id",
    "Geolocation",
    "Outdated OS/SW",
]

#: Table 1 row names.
EXPOSURE_PROTOCOLS = ["ARP", "DHCP", "mDNS", "SSDP", "TuyaLP", "TPLINK"]

_UUID_RE = re.compile(
    r"[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}"
)
_MAC_TOKEN_RE = re.compile(r"(?:[0-9a-fA-F]{2}[:-]){5}[0-9a-fA-F]{2}|[0-9a-fA-F]{12}")
_DISPLAY_NAME_RE = re.compile(r"[A-Z][a-z]+(?:[-\s][A-Z][a-z]+)*'s")
#: DHCP vendor-class versions at or below these are "old" (§5.1).
_OLD_CLIENTS = [("udhcp", (1, 25)), ("dhcpcd", (7, 0))]


@dataclass
class ExposureMatrix:
    """protocol -> identifier type -> set of exposing devices."""

    cells: Dict[str, Dict[str, Set[str]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(set))
    )
    #: (protocol, device) -> example values, for Table 5-style reporting.
    examples: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)

    def expose(self, protocol: str, identifier_type: str, device: str, example: str = "") -> None:
        self.cells[protocol][identifier_type].add(device)
        if example:
            self.examples.setdefault((protocol, identifier_type), []).append(example)

    def exposed_types(self, protocol: str) -> List[str]:
        return [t for t in EXPOSURE_TYPES if self.cells.get(protocol, {}).get(t)]

    def devices_exposing(self, protocol: str, identifier_type: str) -> Set[str]:
        return set(self.cells.get(protocol, {}).get(identifier_type, ()))

    def as_boolean_table(self) -> Dict[str, Dict[str, bool]]:
        """The checkmark matrix of Table 1."""
        return {
            protocol: {
                identifier_type: bool(self.cells.get(protocol, {}).get(identifier_type))
                for identifier_type in EXPOSURE_TYPES
            }
            for protocol in EXPOSURE_PROTOCOLS
        }


def _is_old_client(vendor_class: str) -> bool:
    lowered = vendor_class.lower()
    for client, threshold in _OLD_CLIENTS:
        if lowered.startswith(client):
            match = re.search(r"(\d+)\.(\d+)", lowered)
            if match and (int(match.group(1)), int(match.group(2))) <= threshold:
                return True
    return "custom" in lowered or lowered.startswith(("samsung", "lg", "nintendo"))


def analyze_exposure(
    packets: "Iterable[DecodedPacket] | CaptureIndex",
    device_macs: Dict[str, str],
    arp_rids=None,
    udp_rids=None,
    matrix: Optional[ExposureMatrix] = None,
) -> ExposureMatrix:
    """Mine a capture for Table 1's exposure matrix.

    Consumes the index's chronological ARP and UDP buckets instead of
    scanning every packet; example ordering per (protocol, identifier)
    cell is unchanged because each cell draws from a single bucket.

    ``arp_rids``/``udp_rids`` override the buckets with explicit row-id
    sequences and ``matrix`` accumulates into an existing matrix — the
    hooks :class:`repro.monitor.state.IncrementalExposure` uses to run
    this exact mining pass chunk-by-chunk.
    """
    index = CaptureIndex.ensure(packets)
    matrix = matrix if matrix is not None else ExposureMatrix()
    table = index.table
    src_col = table.src_mac
    sport_col, dport_col = table.src_port, table.dst_port
    device_of = [device_macs.get(mac) for mac in table.mac_strings]
    arp_iter = index.arp.rids if arp_rids is None else arp_rids
    udp_iter = index.udp.rids if udp_rids is None else udp_rids
    for rid in arp_iter:
        device = device_of[src_col[rid]]
        if device is not None:
            matrix.expose("ARP", "MAC", device, table.arp_sender_mac(rid))
    for rid in udp_iter:
        device = device_of[src_col[rid]]
        if device is None:
            continue
        ports = (sport_col[rid], dport_col[rid])
        if 67 in ports or 68 in ports:
            _mine_dhcp(matrix, device, table.app_payload(rid))
        elif 5353 in ports:
            _mine_mdns(matrix, device, table.app_payload(rid))
        elif 1900 in ports:
            _mine_ssdp(matrix, device, table.app_payload(rid))
        elif 6666 in ports or 6667 in ports:
            _mine_tuyalp(matrix, device, table.app_payload(rid))
        elif 9999 in ports:
            _mine_tplink(matrix, device, table.app_payload(rid))
    return matrix


def _mine_dhcp(matrix: ExposureMatrix, device: str, payload: bytes) -> None:
    try:
        message = DhcpMessage.decode(payload)
    except ValueError:
        return
    if message.op != 1:
        return
    matrix.expose("DHCP", "MAC", device, str(message.client_mac))
    hostname = message.hostname
    if hostname:
        if _DISPLAY_NAME_RE.search(hostname.replace("-", " ")):
            matrix.expose("DHCP", "Display name", device, hostname)
        else:
            matrix.expose("DHCP", "Device/Model", device, hostname)
    vendor_class = message.vendor_class
    if vendor_class:
        matrix.expose("DHCP", "OS Version", device, vendor_class)
        if _is_old_client(vendor_class):
            matrix.expose("DHCP", "Outdated OS/SW", device, vendor_class)


def _mine_mdns(matrix: ExposureMatrix, device: str, payload: bytes) -> None:
    try:
        message = DnsMessage.decode(payload)
    except ValueError:
        return
    if not message.is_response:
        return
    text_chunks: List[str] = []
    for record in message.all_records:
        text_chunks.append(record.name)
        if record.rtype == DnsType.PTR:
            target = record.ptr_target()
            if target:
                text_chunks.append(target)
        elif record.rtype == DnsType.TXT:
            text_chunks.extend(f"{k}={v}" for k, v in record.txt_entries().items())
        elif record.rtype == DnsType.SRV:
            srv = record.srv_target()
            if srv:
                text_chunks.append(srv[0])
    text = " ".join(text_chunks)
    matrix.expose("mDNS", "Device/Model", device, text_chunks[0] if text_chunks else "")
    for match in _UUID_RE.finditer(text):
        matrix.expose("mDNS", "UUIDs", device, match.group(0))
    for match in _MAC_TOKEN_RE.finditer(text.replace("fffe", "")):
        token = match.group(0)
        if len(token) >= 6:
            matrix.expose("mDNS", "MAC", device, token)
    if _DISPLAY_NAME_RE.search(text.replace("-", " ")):
        matrix.expose("mDNS", "Display name", device, text[:60])


def _mine_ssdp(matrix: ExposureMatrix, device: str, payload: bytes) -> None:
    try:
        message = SsdpMessage.decode(payload)
    except ValueError:
        return
    uuid_token = message.uuid()
    if uuid_token:
        matrix.expose("SSDP", "UUIDs", device, uuid_token)
    server = message.server
    if server:
        matrix.expose("SSDP", "OS Version", device, server)
        matrix.expose("SSDP", "Device/Model", device, server)
        if "UPnP/1.0" in server:
            matrix.expose("SSDP", "Outdated OS/SW", device, server)
    usn = message.usn or ""
    for match in _MAC_TOKEN_RE.finditer(usn):
        matrix.expose("SSDP", "MAC", device, match.group(0))


def _mine_tuyalp(matrix: ExposureMatrix, device: str, payload: bytes) -> None:
    try:
        message = TuyaLpMessage.decode(payload)
    except ValueError:
        return
    if message.encrypted:
        return  # only plaintext broadcasts leak (the Jinvoo case)
    if message.gw_id:
        matrix.expose("TuyaLP", "GW id", device, message.gw_id)
    if message.product_key:
        matrix.expose("TuyaLP", "Prod. Key", device, message.product_key)


def _mine_tplink(matrix: ExposureMatrix, device: str, payload: bytes) -> None:
    try:
        message = TplinkShpMessage.decode(payload)
    except ValueError:
        return
    info = message.sysinfo
    if not info:
        return
    if "mac" in info:
        matrix.expose("TPLINK", "MAC", device, str(info["mac"]))
    if "model" in info:
        matrix.expose("TPLINK", "Device/Model", device, str(info["model"]))
    if "oemId" in info:
        matrix.expose("TPLINK", "OEM id", device, str(info["oemId"]))
    if "latitude" in info and "longitude" in info:
        matrix.expose(
            "TPLINK", "Geolocation", device, f"{info['latitude']},{info['longitude']}"
        )
    if "sw_ver" in info:
        matrix.expose("TPLINK", "Outdated OS/SW", device, str(info["sw_ver"]))


def payload_examples() -> Dict[str, str]:
    """Table 5: canonical payloads exposing device information.

    Rebuilt from the codecs (not hard-coded strings) so the examples
    stay true to what the simulator actually emits.
    """
    from repro.protocols.netbios import NetbiosNsQuery
    from repro.protocols.ssdp import device_description_xml

    ssdp_xml = device_description_xml(
        friendly_name="AMC020SC43PJ749D66",
        manufacturer="Amcrest",
        model_name="AMC020SC43PJ749D66",
        udn="device_3_0-AMC020SC43PJ749D66",
        serial_number="9c:8e:cd:0a:33:1b",
        services=["urn:schemas-upnp-org:service:AVTransport:1"],
    )
    tplink = TplinkShpMessage.sysinfo_response(
        alias="TP-Link Plug",
        device_id="8006E8E9017F556D283C850B4E29BC1F185334E5",
        hw_id="60FF6B258734EA6880E186F8C96DDC61",
        oem_id="FFF22CFF774A0B89F7624BFC6F50D5DE",
        model="HS110(US)",
        dev_name="Wi-Fi Smart Plug With Energy Monitoring",
        latitude=42.337681,
        longitude=-71.087036,
        mac="50:C7:BF:AA:BB:CC",
    )
    import json

    from repro.protocols.mdns import ServiceAdvertisement, hue_instance_name

    hue = ServiceAdvertisement(
        service_type="_hue._tcp.local",
        instance_name=hue_instance_name("00:17:88:68:5f:61"),
        hostname="Philips-hue.local",
        port=443,
        address="192.168.10.12",
        txt={"bridgeid": "001788FFFE685F61"},
    )
    netbios = NetbiosNsQuery()
    return {
        "SSDP": ssdp_xml,
        "mDNS": f"{hue.full_instance}: type TXT | PTR {hue.service_type} -> {hue.full_instance}",
        "NetBIOS": netbios.encode().hex(" "),
        "TPLINK-SHP": json.dumps(tplink.body, indent=1),
    }
