"""Figures 1 and 4: the device-to-device communication graph.

Nodes are devices, edges are unicast TCP/UDP conversations.  As in
Figure 1, multicast/broadcast discovery protocols (and their unicast
responses) are excluded, as are smartphone interactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.classify.labels import DISCOVERY_LABELS, Label
from repro.classify.rules import CorrectedClassifier
from repro.net.columnar import F_UDP, TRANSPORT_UDP
from repro.net.decode import DecodedPacket
from repro.net.index import CaptureIndex

#: Ports whose unicast traffic is a discovery response, not a
#: device-to-device conversation.
_DISCOVERY_PORTS = {53, 67, 68, 137, 1900, 5353, 5683, 6666, 6667, 9999}


@dataclass
class DeviceGraph:
    """The transport-layer communication graph."""

    graph: nx.MultiGraph
    device_vendor: Dict[str, str]

    @property
    def communicating_devices(self) -> List[str]:
        return [node for node in self.graph.nodes if self.graph.degree(node) > 0]

    def edge_transports(self, a: str, b: str) -> Set[str]:
        if not self.graph.has_edge(a, b):
            return set()
        return {data.get("transport") for data in self.graph[a][b].values()}

    def vendor_cluster(self, vendor: str, transport: Optional[str] = None) -> nx.MultiGraph:
        """The Figure 4 view: the subgraph among one vendor's devices."""
        members = [
            node for node, owner in self.device_vendor.items() if owner == vendor
        ]
        subgraph = nx.MultiGraph()
        subgraph.add_nodes_from(members)
        for a, b, data in self.graph.edges(data=True):
            if a in subgraph and b in subgraph:
                if transport is None or data.get("transport") == transport:
                    subgraph.add_edge(a, b, **data)
        return subgraph

    def coordinator_of(self, vendor: str, transport: Optional[str] = None) -> Optional[str]:
        """Highest-degree device in a vendor cluster (Fig. 4e's Echo)."""
        cluster = self.vendor_cluster(vendor, transport)
        if cluster.number_of_edges() == 0:
            return None
        return max(cluster.nodes, key=lambda node: cluster.degree(node))

    def summary(self) -> Dict[str, object]:
        pair_transports: Dict[Tuple[str, str], Set[str]] = {}
        for a, b, data in self.graph.edges(data=True):
            pair = tuple(sorted((a, b)))
            pair_transports.setdefault(pair, set()).add(data.get("transport"))
        both = sum(1 for transports in pair_transports.values() if len(transports) > 1)
        return {
            "devices_total": self.graph.number_of_nodes(),
            "devices_communicating": len(self.communicating_devices),
            "device_pairs": len(pair_transports),
            "pairs_tcp_and_udp": both,
        }


def build_device_graph(
    packets: "Iterable[DecodedPacket] | CaptureIndex",
    device_macs: Dict[str, str],
    device_vendor: Dict[str, str],
    classifier: Optional[CorrectedClassifier] = None,
) -> DeviceGraph:
    """Build the Fig. 1 graph from a capture.

    ``device_macs``: MAC -> device name for IoT devices only (so phone
    and gateway traffic is excluded, as the figure caption requires).
    Consumes the index's chronological unicast-transport bucket, so
    edge insertion order matches a full scan exactly.
    """
    index = CaptureIndex.ensure(packets)
    graph = nx.MultiGraph()
    graph.add_nodes_from(device_macs.values())
    seen: Set[Tuple[str, str, str]] = set()
    table = index.table
    src_col, dst_col = table.src_mac, table.dst_mac
    sport_col, dport_col = table.src_port, table.dst_port
    flags_col, trans_col = table.flags, table.transport
    # One device_macs lookup per interned MAC, not per packet.
    device_of = [device_macs.get(mac) for mac in table.mac_strings]
    for rid in index.transport_unicast.rids:
        src = device_of[src_col[rid]]
        dst = device_of[dst_col[rid]]
        if src is None or dst is None or src == dst:
            continue
        # Discovery responses ride unicast UDP from well-known ports;
        # TCP on the same port numbers (e.g. TPLINK-SHP control on
        # 9999) is a genuine device-to-device conversation and stays.
        if flags_col[rid] & F_UDP and (
            sport_col[rid] in _DISCOVERY_PORTS or dport_col[rid] in _DISCOVERY_PORTS
        ):
            label = index.label_at(rid, classifier)
            if label in DISCOVERY_LABELS or label is Label.DNS:
                continue
        pair = (src, dst) if src <= dst else (dst, src)
        transport = "udp" if trans_col[rid] == TRANSPORT_UDP else "tcp"
        key = (pair[0], pair[1], transport)
        if key in seen:
            continue
        seen.add(key)
        graph.add_edge(pair[0], pair[1], transport=transport)
    return DeviceGraph(graph=graph, device_vendor=device_vendor)
