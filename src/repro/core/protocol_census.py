"""Figure 2: protocol prevalence across the three measurement methods.

For each protocol, the fraction of the 93 devices observed using it
passively, the fraction with a matching open service in active scans,
and the fraction of the 2,335 apps using it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.classify.labels import Label
from repro.classify.rules import CorrectedClassifier
from repro.net.decode import DecodedPacket
from repro.net.index import CaptureIndex
from repro.net.mac import MacAddress


@dataclass
class ProtocolCensus:
    """Per-protocol usage sets, keyed by normalized label name."""

    total_devices: int
    total_apps: int = 0
    passive: Dict[str, Set[str]] = field(default_factory=lambda: defaultdict(set))
    scanned: Dict[str, Set[str]] = field(default_factory=lambda: defaultdict(set))
    apps: Dict[str, Set[str]] = field(default_factory=lambda: defaultdict(set))

    def passive_fraction(self, label: str) -> float:
        return len(self.passive.get(label, ())) / self.total_devices if self.total_devices else 0.0

    def scanned_fraction(self, label: str) -> float:
        return len(self.scanned.get(label, ())) / self.total_devices if self.total_devices else 0.0

    def app_fraction(self, label: str) -> float:
        return len(self.apps.get(label, ())) / self.total_apps if self.total_apps else 0.0

    def passive_labels(self) -> List[str]:
        """Labels observed passively, by descending prevalence."""
        return sorted(self.passive, key=lambda label: -len(self.passive[label]))

    def protocols_per_device(self) -> Dict[str, int]:
        """Distinct passive protocols per device (§4.1: average ~8)."""
        per_device: Dict[str, int] = defaultdict(int)
        for members in self.passive.values():
            for device in members:
                per_device[device] += 1
        return dict(per_device)

    def average_protocols_per_device(self) -> float:
        per_device = self.protocols_per_device()
        return sum(per_device.values()) / len(per_device) if per_device else 0.0

    def rows(self) -> List[Dict[str, object]]:
        """Figure 2 as data rows (protocol, %passive, %scan, %apps)."""
        labels = set(self.passive) | set(self.scanned) | set(self.apps)
        ordered = sorted(
            labels,
            key=lambda label: -(len(self.passive.get(label, ())) * 3
                                + len(self.scanned.get(label, ()))),
        )
        return [
            {
                "protocol": label,
                "passive_pct": 100.0 * self.passive_fraction(label),
                "scan_pct": 100.0 * self.scanned_fraction(label),
                "apps_pct": 100.0 * self.app_fraction(label),
            }
            for label in ordered
        ]


#: scan-report corrected service labels -> Figure 2 protocol names.
_SERVICE_TO_LABEL = {
    "http": "HTTP",
    "echo-http": "HTTP",
    "http-alt": "HTTP",
    "http-proxy": "HTTP.PROXY",
    "https": "HTTPS",
    "https-alt": "HTTPS-ALT",
    "echo-https": "HTTPS",
    "tls": "TLS",
    "cast-tls": "TLS",
    "telnet": "TELNET",
    "domain": "DNS",
    "dns": "DNS",
    "rtsp": "HTTP.RTSP",
    "rtsp-alt": "HTTP.RTSP",
    "socks5": "SOCKS5",
    "upnp": "SSDP",
    "zeroconf": "mDNS",
    "coap": "COAP",
    "coaps": "COAP",
    "tuyalp": "TuyaLP",
    "tuya-ctl": "TuyaLP",
    "tplink-shp": "TPLINK_SHP",
    "netbios-ns": "NETBIOS",
    "ntp": "NTP",
    "ptp-event": "PTP",
    "ptp-general": "PTP",
    "weave": "WEAVE",
    "dhcps": "DHCP",
    "dhcpc": "DHCP",
    "airplay": "TLS",
    "ezmeeting-2": "EZMEETING-2",
    "cslistener": "CSLISTENER",
    "ajp13": "AJP",
    "irc": "IRC",
    "abyss": "OTHER-TCP",
}


def census_from_capture(
    packets: "Iterable[DecodedPacket] | CaptureIndex",
    device_macs: Dict[str, str],
    classifier: Optional[CorrectedClassifier] = None,
    total_devices: Optional[int] = None,
) -> ProtocolCensus:
    """Build the passive part of the census from a capture.

    ``device_macs`` maps MAC string -> device name (the per-MAC pcap
    attribution of §3.1); frames from unknown MACs are ignored.
    Accepts a prebuilt :class:`CaptureIndex` (fast path: per-src-MAC
    buckets, memoized labels) or any iterable of decoded packets.
    """
    index = CaptureIndex.ensure(packets)
    census = ProtocolCensus(total_devices=total_devices or len(device_macs))
    # The per-device protocol sets are order-insensitive, so this walks
    # the per-src-MAC buckets: one device_macs lookup per MAC instead of
    # one per packet, and raw row ids instead of row proxies.
    label_at = index.label_at
    for mac, view in index.by_src_mac.items():
        device = device_macs.get(mac)
        if device is None:
            continue
        for rid in view.rids:
            label = label_at(rid, classifier)
            if label is None:
                continue
            census.passive[str(label)].add(device)
    return census


def add_scan_results(census: ProtocolCensus, scan_report) -> ProtocolCensus:
    """Fold a :class:`repro.scan.ScanReport` into the census (orange bars)."""
    for host in scan_report.hosts:
        for entry in host.open_ports:
            label = _SERVICE_TO_LABEL.get(entry.nmap_label)
            if label is None:
                label = "OTHER-TCP" if entry.transport == "tcp" else "OTHER-UDP"
            census.scanned[label].add(host.name)
    return census


def add_app_results(census: ProtocolCensus, app_runs, total_apps: int) -> ProtocolCensus:
    """Fold instrumented app runs into the census (green bars)."""
    protocol_to_label = {
        "mdns": "mDNS",
        "ssdp": "SSDP",
        "netbios": "NETBIOS",
        "arp": "ARP",
        "tplink_shp": "TPLINK_SHP",
        "tls": "TLS",
        "matter": "MATTER",
    }
    census.total_apps = total_apps
    for run in app_runs:
        for protocol in run.protocols_used:
            label = protocol_to_label.get(protocol, protocol.upper())
            census.apps[label].add(run.app.package)
    return census
