"""Sections 6.1/6.2: dissemination of local-network data to the cloud.

Aggregates instrumented app runs into the paper's findings: how many
apps scan with each protocol, which identifiers reach which endpoints
(first vs third party), the SDK case studies, downlink MAC receipt, and
permission side-channel bypasses.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.apps.appmodel import AppCategory, Identifier
from repro.apps.runtime import AppRunResult, CloudFlow


@dataclass
class ExfiltrationAudit:
    """The §6.1/§6.2 rollup over a set of app runs."""

    total_apps: int = 0
    scanning_apps: Dict[str, Set[str]] = field(default_factory=lambda: defaultdict(set))
    uploads: Dict[Identifier, Set[str]] = field(default_factory=lambda: defaultdict(set))
    upload_endpoints: Dict[Identifier, Set[str]] = field(default_factory=lambda: defaultdict(set))
    third_party_uploads: Dict[Identifier, Set[str]] = field(default_factory=lambda: defaultdict(set))
    sdk_flows: Dict[str, List[CloudFlow]] = field(default_factory=lambda: defaultdict(list))
    downlink_mac_apps: Set[str] = field(default_factory=set)
    side_channel_apps: Set[str] = field(default_factory=set)
    device_mac_relaying_iot_apps: Set[str] = field(default_factory=set)

    @property
    def any_scanner_count(self) -> int:
        """Apps using at least one discovery protocol (§6.1: 9%)."""
        members: Set[str] = set()
        for protocol in ("mdns", "ssdp", "netbios"):
            members |= self.scanning_apps.get(protocol, set())
        return len(members)

    def scanner_fraction(self, protocol: str) -> float:
        if not self.total_apps:
            return 0.0
        return len(self.scanning_apps.get(protocol, ())) / self.total_apps

    def apps_uploading(self, identifier: Identifier) -> int:
        return len(self.uploads.get(identifier, ()))

    def summary(self) -> Dict[str, object]:
        return {
            "total_apps": self.total_apps,
            "scanners_pct": 100.0 * self.any_scanner_count / self.total_apps if self.total_apps else 0,
            "mdns_pct": 100.0 * self.scanner_fraction("mdns"),
            "ssdp_pct": 100.0 * self.scanner_fraction("ssdp"),
            "netbios_apps": len(self.scanning_apps.get("netbios", ())),
            "router_mac_apps": self.apps_uploading(Identifier.ROUTER_MAC),
            "router_ssid_apps": self.apps_uploading(Identifier.ROUTER_SSID),
            "wifi_mac_apps": self.apps_uploading(Identifier.WIFI_MAC),
            "device_mac_relaying_iot_apps": len(self.device_mac_relaying_iot_apps),
            "downlink_mac_apps": len(self.downlink_mac_apps),
            "side_channel_apps": len(self.side_channel_apps),
        }


def audit_app_runs(runs: Iterable[AppRunResult], total_apps: Optional[int] = None) -> ExfiltrationAudit:
    """Aggregate instrumented runs into the exfiltration audit."""
    runs = list(runs)
    audit = ExfiltrationAudit(total_apps=total_apps if total_apps is not None else len(runs))
    for run in runs:
        package = run.app.package
        for protocol in run.protocols_used:
            audit.scanning_apps[protocol].add(package)
        for access in run.api_accesses:
            if access.via_side_channel:
                audit.side_channel_apps.add(package)
        for flow in run.cloud_flows:
            if flow.direction == "down":
                if Identifier.DEVICE_MAC.value in flow.payload:
                    audit.downlink_mac_apps.add(package)
                continue
            for identifier in Identifier:
                if identifier.value in flow.payload:
                    audit.uploads[identifier].add(package)
                    audit.upload_endpoints[identifier].add(flow.endpoint)
                    if flow.party == "third":
                        audit.third_party_uploads[identifier].add(package)
                    if identifier is Identifier.DEVICE_MAC and run.app.category is AppCategory.IOT:
                        audit.device_mac_relaying_iot_apps.add(package)
            if flow.sdk:
                audit.sdk_flows[flow.sdk].append(flow)
    return audit


def sdk_case_studies(audit: ExfiltrationAudit) -> Dict[str, Dict[str, object]]:
    """The §6.2 case-study table: per SDK, endpoints and identifiers."""
    studies: Dict[str, Dict[str, object]] = {}
    for sdk, flows in sorted(audit.sdk_flows.items()):
        endpoints = sorted({flow.endpoint for flow in flows})
        identifiers = sorted({key for flow in flows for key in flow.payload})
        studies[sdk] = {
            "flows": len(flows),
            "endpoints": endpoints,
            "identifiers": identifiers,
            "apps": sorted({flow.app for flow in flows}),
            "base64_encoded": any(flow.encoded_base64 for flow in flows),
        }
    return studies
