"""Local communication patterns — the paper's §4.4 future work.

"We leave further analysis of local communication patterns as future
work."  This module supplies that analysis over the same captures:
per-pair traffic volumes and protocol mixes, top talkers, temporal
activity profiles, and — for the crowdsourced corpus — the §6.3
observation that a median household has ~3 devices that "often
communicate with each other over TCP and UDP connections".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.classify.rules import CorrectedClassifier
from repro.net.decode import DecodedPacket
from repro.inspector.schema import InspectorDataset


@dataclass
class PairTraffic:
    """Aggregate traffic between one unordered device pair."""

    pair: Tuple[str, str]
    packets: int = 0
    bytes: int = 0
    protocols: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    @property
    def dominant_protocol(self) -> Optional[str]:
        if not self.protocols:
            return None
        return max(self.protocols, key=self.protocols.get)


@dataclass
class CommunicationPatterns:
    """The full pattern analysis over one capture."""

    pairs: Dict[Tuple[str, str], PairTraffic] = field(default_factory=dict)
    device_tx_bytes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    device_broadcast_bytes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: device -> per-bin packet counts (temporal activity profile)
    activity: Dict[str, List[int]] = field(default_factory=dict)
    bin_width: float = 60.0

    def top_talkers(self, count: int = 10) -> List[Tuple[str, int]]:
        """Devices by total transmitted bytes (unicast + broadcast)."""
        totals: Dict[str, int] = defaultdict(int)
        for device, tx in self.device_tx_bytes.items():
            totals[device] += tx
        for device, tx in self.device_broadcast_bytes.items():
            totals[device] += tx
        return sorted(totals.items(), key=lambda item: -item[1])[:count]

    def top_pairs(self, count: int = 10) -> List[PairTraffic]:
        return sorted(self.pairs.values(), key=lambda pair: -pair.bytes)[:count]

    def broadcast_share(self, device: str) -> float:
        """Fraction of a device's transmitted bytes that were one-to-many."""
        unicast = self.device_tx_bytes.get(device, 0)
        broadcast = self.device_broadcast_bytes.get(device, 0)
        total = unicast + broadcast
        return broadcast / total if total else 0.0

    def burstiness(self, device: str) -> float:
        """Coefficient of variation of per-bin activity (0 = uniform)."""
        bins = self.activity.get(device)
        if not bins or len(bins) < 2:
            return 0.0
        mean = sum(bins) / len(bins)
        if mean == 0:
            return 0.0
        variance = sum((value - mean) ** 2 for value in bins) / len(bins)
        return (variance ** 0.5) / mean


def analyze_patterns(
    packets: Iterable[DecodedPacket],
    device_macs: Dict[str, str],
    classifier: Optional[CorrectedClassifier] = None,
    bin_width: float = 60.0,
) -> CommunicationPatterns:
    """Compute pair volumes, talker rankings, and activity profiles."""
    classifier = classifier or CorrectedClassifier()
    patterns = CommunicationPatterns(bin_width=bin_width)
    packets = list(packets)
    if not packets:
        return patterns
    start = min(packet.timestamp for packet in packets)
    end = max(packet.timestamp for packet in packets)
    bins = max(1, int((end - start) / bin_width) + 1)
    activity: Dict[str, List[int]] = {
        name: [0] * bins for name in device_macs.values()
    }

    for packet in packets:
        src = device_macs.get(str(packet.frame.src))
        if src is None:
            continue
        size = len(packet.frame)
        index = min(int((packet.timestamp - start) / bin_width), bins - 1)
        activity[src][index] += 1
        if packet.is_unicast:
            dst = device_macs.get(str(packet.frame.dst))
            if dst is not None and dst != src:
                patterns.device_tx_bytes[src] += size
                key = tuple(sorted((src, dst)))
                pair = patterns.pairs.get(key)
                if pair is None:
                    pair = patterns.pairs[key] = PairTraffic(pair=key)
                pair.packets += 1
                pair.bytes += size
                label = classifier.classify_packet(packet)
                if label is not None:
                    pair.protocols[str(label)] += 1
            else:
                patterns.device_tx_bytes[src] += size
        else:
            patterns.device_broadcast_bytes[src] += size
    patterns.activity = activity
    return patterns


# -- crowdsourced-corpus patterns (§6.3 closing observation) -------------------------


@dataclass
class HouseholdCommunication:
    """Per-household local-communication summary from flow records."""

    user_id: str
    device_count: int
    communicating_ips: int
    tcp_flows: int
    udp_flows: int
    local_bytes: int


def household_communication(dataset: InspectorDataset) -> List[HouseholdCommunication]:
    """Summarize intra-household flows (the 'median of 3 devices that
    often communicate with each other over TCP and UDP' check)."""
    summaries = []
    for household in dataset.households:
        ips = set()
        tcp = udp = local_bytes = 0
        for flow in household.flows:
            ips.add(flow.src_ip)
            ips.add(flow.dst_ip)
            if flow.transport == "tcp":
                tcp += 1
            else:
                udp += 1
            local_bytes += flow.bytes_sent + flow.bytes_received
        summaries.append(
            HouseholdCommunication(
                user_id=household.user_id,
                device_count=household.device_count,
                communicating_ips=len(ips),
                tcp_flows=tcp,
                udp_flows=udp,
                local_bytes=local_bytes,
            )
        )
    return summaries


def median_communicating_devices(dataset: InspectorDataset) -> float:
    """Median count of devices per household seen in local flows."""
    import statistics

    counts = [
        summary.communicating_ips
        for summary in household_communication(dataset)
        if summary.communicating_ips
    ]
    return float(statistics.median(counts)) if counts else 0.0
