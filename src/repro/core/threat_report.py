"""Section 5: the consolidated threat analysis.

Combines passive captures (plaintext HTTP census, TLS posture) with the
vulnerability scanner output into the findings §5.2 reports.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.classify.labels import Label
from repro.classify.rules import CorrectedClassifier
from repro.net.decode import DecodedPacket
from repro.net.index import CaptureIndex
from repro.protocols.http import HttpRequest, HttpResponse
from repro.protocols.tls import CertificateInfo, HandshakeType, TlsVersion, iter_records
from repro.scan.vulnscan import Finding


@dataclass
class TlsPosture:
    """Per-device passive TLS observations (§5.2)."""

    device: str
    versions: Set[str] = field(default_factory=set)
    certificates: List[CertificateInfo] = field(default_factory=list)
    mutual_auth: bool = False

    @property
    def min_cert_validity_years(self) -> Optional[float]:
        if not self.certificates:
            return None
        return min(cert.validity_years for cert in self.certificates)

    @property
    def max_cert_validity_years(self) -> Optional[float]:
        if not self.certificates:
            return None
        return max(cert.validity_years for cert in self.certificates)

    @property
    def uses_self_signed(self) -> bool:
        return any(cert.self_signed for cert in self.certificates)

    @property
    def ip_common_names(self) -> bool:
        """Amazon's pattern: CN is a local IP or 0.0.0.0."""
        return any(
            cert.subject_cn == "0.0.0.0" or cert.subject_cn.startswith("192.168.")
            for cert in self.certificates
        )


@dataclass
class ThreatReport:
    """The §5 rollup."""

    plaintext_http_devices: Set[str] = field(default_factory=set)
    http_clients_only: Set[str] = field(default_factory=set)
    http_servers: Set[str] = field(default_factory=set)
    user_agents: Dict[str, Set[str]] = field(default_factory=lambda: defaultdict(set))
    tls_devices: Dict[str, TlsPosture] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def tls_device_count(self) -> int:
        return len(self.tls_devices)

    def findings_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for finding in self.findings:
            counts[finding.severity] += 1
        return dict(counts)

    def devices_with_findings(self) -> Set[str]:
        return {finding.device for finding in self.findings}

    def findings_for(self, device: str) -> List[Finding]:
        return [finding for finding in self.findings if finding.device == device]


def build_threat_report(
    packets: "Iterable[DecodedPacket] | CaptureIndex",
    device_macs: Dict[str, str],
    findings: Optional[List[Finding]] = None,
    classifier: Optional[CorrectedClassifier] = None,
) -> ThreatReport:
    """Mine passive captures + scanner findings into the §5 report.

    Only TCP packets with payload matter here, so this walks the
    index's chronological ``tcp_payload`` bucket directly.
    """
    index = CaptureIndex.ensure(packets)
    report = ThreatReport(findings=list(findings or []))
    http_roles: Dict[str, Set[str]] = defaultdict(set)

    table = index.table
    src_col = table.src_mac
    device_of = [device_macs.get(mac) for mac in table.mac_strings]
    for rid in index.tcp_payload.rids:
        device = device_of[src_col[rid]]
        if device is None:
            continue
        payload = table.app_payload(rid)
        head = payload[:8]
        if head[:4] in (b"GET ", b"POST", b"PUT ", b"HEAD"):
            report.plaintext_http_devices.add(device)
            http_roles[device].add("client")
            try:
                request = HttpRequest.decode(payload)
                if request.user_agent:
                    report.user_agents[device].add(request.user_agent)
            except ValueError:
                pass
        elif head.startswith(b"HTTP/1."):
            report.plaintext_http_devices.add(device)
            http_roles[device].add("server")
        elif payload and payload[0] == 22:  # TLS handshake record
            _mine_tls(report, device, payload)

    for device, roles in http_roles.items():
        if roles == {"client"}:
            report.http_clients_only.add(device)
        if "server" in roles:
            report.http_servers.add(device)
    return report


def _mine_tls(report: ThreatReport, device: str, payload: bytes) -> None:
    posture = report.tls_devices.setdefault(device, TlsPosture(device=device))
    saw_client_cert = False
    for record in iter_records(payload):
        handshake = record.handshake()
        if handshake is None:
            continue
        if handshake.handshake_type in (HandshakeType.CLIENT_HELLO, HandshakeType.SERVER_HELLO):
            posture.versions.add(handshake.version.dotted)
        elif handshake.handshake_type is HandshakeType.CERTIFICATE:
            posture.certificates.extend(handshake.certificates)
            saw_client_cert = True
    # Two-way auth heuristic: a *client*-originated record stream that
    # carries a certificate (Amazon's pattern, §5.2).
    if saw_client_cert and any(
        record.handshake() and record.handshake().handshake_type is HandshakeType.CLIENT_HELLO
        for record in iter_records(payload)
    ):
        posture.mutual_auth = True
