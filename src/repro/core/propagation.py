"""Information-propagation tracing via honeypot markers (§3.1).

"Given our control over these responses, the honeypots give us the
ability to track how information propagates through the IoT devices."

Every honeypot response embeds a unique marker token.  If a marker
later appears in an app's cloud-bound payloads, the harvest-and-upload
path is *proven*: the uploader could only have learned that value from
our honeypot, on the local network, via the protocol that served it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.apps.runtime import AppRunResult
from repro.honeypot.base import HoneypotLog


@dataclass
class PropagationHit:
    """One marker observed beyond the honeypot that planted it."""

    marker: str
    planted_by: str  # honeypot name
    planted_protocol: str  # protocol that served the marker
    requested_by_mac: str  # who asked the honeypot
    surfaced_in_app: str  # app package that uploaded it
    endpoint: str  # cloud endpoint that received it
    party: str
    sdk: Optional[str]


@dataclass
class PropagationReport:
    """All proven local-to-cloud propagation paths."""

    hits: List[PropagationHit] = field(default_factory=list)
    markers_planted: int = 0
    markers_surfaced: int = 0

    @property
    def surfaced_fraction(self) -> float:
        if not self.markers_planted:
            return 0.0
        return self.markers_surfaced / self.markers_planted

    def endpoints(self) -> Set[str]:
        return {hit.endpoint for hit in self.hits}

    def apps(self) -> Set[str]:
        return {hit.surfaced_in_app for hit in self.hits}

    def by_protocol(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for hit in self.hits:
            counts[hit.planted_protocol] = counts.get(hit.planted_protocol, 0) + 1
        return counts


def trace_markers(
    log: HoneypotLog,
    app_runs: Iterable[AppRunResult],
) -> PropagationReport:
    """Match honeypot markers against app cloud flows.

    A match means the concrete honeypot-served value crossed from the
    local network into a cloud payload — the §6 exfiltration path,
    demonstrated with planted ground truth rather than inference.
    """
    planted: Dict[str, object] = {}
    for event in log.events:
        if event.marker:
            planted[event.marker] = event
    report = PropagationReport(markers_planted=len(planted))
    surfaced: Set[str] = set()
    for run in app_runs:
        for flow in run.cloud_flows:
            if flow.direction != "up":
                continue
            values = " ".join(flow.payload_values())
            for marker, event in planted.items():
                if marker in values:
                    surfaced.add(marker)
                    report.hits.append(
                        PropagationHit(
                            marker=marker,
                            planted_by=event.honeypot,
                            planted_protocol=event.protocol,
                            requested_by_mac=event.src_mac,
                            surfaced_in_app=flow.app,
                            endpoint=flow.endpoint,
                            party=flow.party,
                            sdk=flow.sdk,
                        )
                    )
    report.markers_surfaced = len(surfaced)
    return report
