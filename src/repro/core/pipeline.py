"""The end-to-end study pipeline: §3's methodology as one object.

``StudyPipeline`` builds the simulated MonIoTr lab, collects the
passive dataset, deploys honeypots, runs the active scans, exercises a
sample of the app dataset on the instrumented phone, and produces a
:class:`StudyReport` holding every per-artifact analysis.
"""

from __future__ import annotations

import os
import random
import time
import traceback as _traceback
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.dataset import generate_app_dataset
from repro.apps.runtime import AppRunResult, InstrumentedPhone
from repro.classify.crossval import CrossValidation, cross_validate
from repro.core.device_graph import DeviceGraph, build_device_graph
from repro.core.exfiltration import ExfiltrationAudit, audit_app_runs
from repro.core.exposure import ExposureMatrix, analyze_exposure
from repro.core.fingerprint import FingerprintReport
from repro.core.periodicity import PeriodicityResult, analyze_periodicity
from repro.core.protocol_census import (
    ProtocolCensus,
    add_app_results,
    add_scan_results,
    census_from_capture,
)
from repro.core.responses import (
    ResponseCorrelation,
    category_of_profile,
    correlate_responses,
)
from repro.core.threat_report import ThreatReport, build_threat_report
from repro.devices.behaviors import Testbed, build_testbed
from repro.faults import FaultInjector, FaultPlan
from repro.net.index import CaptureIndex
from repro.obs import NULL_OBS, Observability, use_obs
from repro.honeypot.farm import HoneypotFarm
from repro.scan.portscan import PortScanner, ScanReport
from repro.scan.vulnscan import VulnerabilityScanner


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


@dataclass
class AnalysisFailure:
    """One analysis that raised and was isolated (keep-going mode)."""

    analysis: str
    error: str
    traceback: str = ""


@dataclass
class StudyReport:
    """Every analysis artifact the pipeline produces.

    Analysis fields are ``Optional``: in keep-going mode a failed
    analysis leaves its slot ``None`` and records an
    :class:`AnalysisFailure` in :attr:`failures` while its siblings
    complete — a partial report instead of a crashed study.
    """

    census: ProtocolCensus
    device_graph: Optional[DeviceGraph]
    exposure: Optional[ExposureMatrix]
    responses: Optional[ResponseCorrelation]
    periodicity: Optional[PeriodicityResult]
    crossval: Optional[CrossValidation]
    threat: Optional[ThreatReport]
    scan_report: ScanReport
    exfiltration: ExfiltrationAudit
    fingerprint: Optional[FingerprintReport] = None
    honeypot_contacts: int = 0
    capture_packets: int = 0
    #: Analyses that raised and were isolated instead of aborting the run.
    failures: List[AnalysisFailure] = field(default_factory=list)
    #: ``FaultInjector.summary()`` when a fault plan was installed.
    fault_summary: Optional[Dict[str, object]] = None
    #: Populated when the pipeline runs with observability enabled:
    #: ``{"stages": {...}, "metrics": {...}, "spans": [...]}``.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def complete(self) -> bool:
        return not self.failures


class StudyPipeline:
    """Orchestrates the full reproduction study.

    With an :class:`~repro.obs.Observability` context passed as ``obs``,
    every stage in :data:`STAGES` runs inside a tracer span (sim + wall
    time), stage durations land in the ``pipeline_stage_seconds``
    histogram, artifact counts in ``pipeline_artifacts_total``, and the
    finished :class:`StudyReport` carries a ``telemetry`` snapshot.
    """

    #: One span (and one ``pipeline_stage_seconds`` sample) per entry.
    STAGES = ("build", "passive_capture", "scans", "apps", "vulnscan", "analysis")

    def __init__(
        self,
        seed: int = 7,
        passive_duration: float = 1800.0,
        app_sample_size: int = 40,
        deploy_honeypots: bool = True,
        include_crowdsourced: bool = False,
        obs: Optional[Observability] = None,
        fault_plan: Optional[FaultPlan] = None,
        keep_going: bool = True,
    ):
        self.seed = seed
        self.passive_duration = passive_duration
        self.app_sample_size = app_sample_size
        self.deploy_honeypots = deploy_honeypots
        self.include_crowdsourced = include_crowdsourced
        self.obs = obs if obs is not None else NULL_OBS
        #: Validated chaos plan; None (or an empty plan) leaves the run
        #: byte-identical to an un-injected study.
        self.fault_plan = fault_plan
        #: keep_going=True isolates analysis failures into the report;
        #: False re-raises the first one (CI-style fail-fast).
        self.keep_going = keep_going
        self.injector: Optional[FaultInjector] = None
        self.testbed: Optional[Testbed] = None
        self.farm: Optional[HoneypotFarm] = None

    @property
    def faults_active(self) -> bool:
        return self.injector is not None and self.injector.active

    # -- stages ---------------------------------------------------------------------

    def build(self) -> Testbed:
        self.testbed = build_testbed(seed=self.seed)
        if self.fault_plan is not None:
            self.injector = FaultInjector(self.fault_plan, seed=self.seed)
            self.injector.install(self.testbed.lan)
        if self.deploy_honeypots:
            self.farm = HoneypotFarm.deploy(self.testbed.lan)
        if self.obs.enabled:
            simulator = self.testbed.simulator
            self.obs.set_sim_clock(lambda: simulator.now)
        return self.testbed

    def collect_passive(self) -> int:
        """Run the lab for the configured duration; returns packet count."""
        assert self.testbed is not None, "call build() first"
        events = self.obs.events
        if events.enabled:
            capture = self.testbed.lan.capture

            def beat(executed: int, sim_now: float) -> None:
                events.heartbeat(kind="study", stage="passive_capture",
                                 sim_seconds=round(sim_now, 3),
                                 sim_events=executed,
                                 packets=capture.packet_count)

            self.testbed.run(self.passive_duration, on_event=beat,
                             on_event_every=2000)
        else:
            self.testbed.run(self.passive_duration)
        return self.testbed.lan.capture.packet_count

    def device_maps(self) -> Dict[str, Dict[str, str]]:
        assert self.testbed is not None
        macs = {str(node.mac): node.name for node in self.testbed.devices}
        vendors = {node.name: node.vendor for node in self.testbed.devices}
        categories = {
            node.name: category_of_profile(node.profile) for node in self.testbed.devices
        }
        return {"macs": macs, "vendors": vendors, "categories": categories}

    def run_scans(self) -> ScanReport:
        assert self.testbed is not None
        if self.faults_active:
            # Under chaos, probes can be lost or delayed: retry silent
            # ports and let sim time advance so late replies land.
            scanner = PortScanner(max_retries=2, wait_for_replies=True)
        else:
            scanner = PortScanner()
        self.testbed.lan.attach(scanner)
        # Active scans are a separate dataset; keep them out of the
        # passive capture, like running them when the lab is closed.
        keep = self.testbed.lan.capture.keep_bytes
        self.testbed.lan.capture.keep_bytes = False
        try:
            report = scanner.sweep(targets=self.testbed.devices)
        finally:
            self.testbed.lan.capture.keep_bytes = keep
            self.testbed.lan.detach(scanner)
        return report

    def run_apps(self) -> List[AppRunResult]:
        assert self.testbed is not None
        apps = generate_app_dataset(seed=self.seed + 1)
        rng = random.Random(self.seed + 2)
        named = apps[:10]  # the case-study apps always run
        if self.app_sample_size >= len(apps):
            sample = apps
        else:
            sample = named + rng.sample(apps[10:], max(0, self.app_sample_size - len(named)))
        phone = InstrumentedPhone(rng=random.Random(self.seed + 3))
        self.testbed.lan.attach(phone)
        keep = self.testbed.lan.capture.keep_bytes
        self.testbed.lan.capture.keep_bytes = False
        try:
            results = [phone.run_app(app) for app in sample]
        finally:
            self.testbed.lan.capture.keep_bytes = keep
            self.testbed.lan.detach(phone)
        return results

    # -- observability helpers ---------------------------------------------------------

    def _stage(self, stack: ExitStack, name: str):
        """Open the tracer span + stage timer for one pipeline stage."""
        obs = self.obs
        if not obs.enabled:
            return None
        span = stack.enter_context(obs.tracer.span(f"pipeline.{name}", stage=name))
        started = time.perf_counter()

        def close_stage() -> None:
            elapsed = time.perf_counter() - started
            obs.metrics.histogram(
                "pipeline_stage_seconds", "wall-clock duration per pipeline stage",
            ).observe(elapsed, stage=name)
            obs.events.emit("stage_end", kind="study", stage=name,
                            wall_seconds=round(elapsed, 6))

        stack.callback(close_stage)
        obs.logger("pipeline").info("stage_start", stage=name)
        obs.events.emit("stage_start", kind="study", stage=name)
        return span

    def _count_artifact(self, name: str, amount: float = 1.0) -> None:
        if self.obs.enabled:
            self.obs.metrics.counter(
                "pipeline_artifacts_total", "analysis artifacts produced, per kind",
            ).inc(amount, artifact=name)

    def _telemetry_snapshot(self) -> Dict[str, object]:
        tracer = self.obs.tracer
        stages: Dict[str, Dict[str, Optional[float]]] = {}
        for span in tracer.iter_spans():
            stage = span.attrs.get("stage")
            if stage is not None:
                stages[str(stage)] = {
                    "wall_seconds": span.wall_duration,
                    "sim_seconds": span.sim_duration,
                }
        out: Dict[str, object] = {
            "stages": stages,
            "metrics": self.obs.metrics.to_dict(),
            "spans": tracer.to_tree(),
        }
        # Key absent (not null) on unprofiled runs: their telemetry
        # payload must stay byte-identical to pre-profiling builds.
        profile = self.obs.profiler.snapshot()
        if profile is not None:
            out["profile"] = profile
        return out

    # -- the analysis fan-out -----------------------------------------------------------

    def _run_analyses(
        self,
        index: CaptureIndex,
        maps: Dict[str, Dict[str, str]],
        findings,
        parent_span,
    ) -> Tuple[Dict[str, object], List[AnalysisFailure]]:
        """Build the six independent capture analyses, concurrently.

        Each analysis reads the shared (immutable once labelled)
        :class:`CaptureIndex`, so they are embarrassingly parallel; set
        ``REPRO_ANALYSIS_PARALLEL=0`` to force the serial path.  Every
        analysis runs in its own ``analysis.<name>`` span, attached to
        the analysis stage span via ``_parent`` so worker-thread spans
        nest correctly.  All metric writes stay on the main thread.

        A raising analysis no longer abandons its siblings: every task
        runs to completion, failures come back as
        :class:`AnalysisFailure` entries with the failed slot ``None``.
        In fail-fast mode (``keep_going=False``) the first failure is
        re-raised — after the siblings finished, so no work is torn
        down mid-flight.
        """
        obs = self.obs
        tasks: Dict[str, Callable[[], object]] = {
            "device_graph": lambda: build_device_graph(
                index, maps["macs"], maps["vendors"]),
            "exposure": lambda: analyze_exposure(index, maps["macs"]),
            "responses": lambda: correlate_responses(
                index, maps["macs"], maps["categories"]),
            "periodicity": lambda: analyze_periodicity(index, maps["macs"]),
            "crossval": lambda: cross_validate(index),
            "threat": lambda: build_threat_report(index, maps["macs"], findings),
        }

        def run_one(name: str, task: Callable[[], object]) -> object:
            with obs.tracer.span(f"analysis.{name}", _parent=parent_span,
                                 analysis=name):
                return task()

        results: Dict[str, object] = {}
        failures: List[AnalysisFailure] = []
        errors: Dict[str, BaseException] = {}

        if not _env_flag("REPRO_ANALYSIS_PARALLEL", True):
            for name, task in tasks.items():
                try:
                    results[name] = run_one(name, task)
                except Exception as exc:  # noqa: BLE001 - isolated below
                    results[name] = None
                    errors[name] = exc
        else:
            # Classify (and assemble flows) once on the main thread so
            # the workers only read the memoized columns.
            index.ensure_labels()
            workers = max(1, min(len(tasks), os.cpu_count() or 1))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = {
                    name: pool.submit(run_one, name, task)
                    for name, task in tasks.items()
                }
                for name, future in futures.items():
                    try:
                        results[name] = future.result()
                    except Exception as exc:  # noqa: BLE001 - isolated below
                        results[name] = None
                        errors[name] = exc
                    else:
                        if obs.enabled:
                            obs.metrics.counter(
                                "pipeline_analysis_tasks_total",
                                "capture analyses completed by the fan-out pool",
                            ).inc(analysis=name)
            if obs.enabled:
                obs.metrics.gauge(
                    "pipeline_analysis_pool_workers",
                    "thread-pool width of the analysis fan-out",
                ).set(workers)

        for name, exc in errors.items():
            failures.append(AnalysisFailure(
                analysis=name,
                error=f"{type(exc).__name__}: {exc}",
                traceback="".join(_traceback.format_exception(
                    type(exc), exc, exc.__traceback__)),
            ))
            if obs.enabled:
                obs.metrics.counter(
                    "pipeline_analysis_failures_total",
                    "analyses that raised and were isolated, per analysis",
                ).inc(analysis=name)
                obs.logger("pipeline").error(
                    "analysis_failed", analysis=name,
                    error=failures[-1].error)
                obs.events.emit("analysis_failed", kind="study",
                                analysis=name, error=failures[-1].error)
        if errors and not self.keep_going:
            raise next(iter(errors.values()))
        return results, failures

    # -- the full study ----------------------------------------------------------------

    def run(self) -> StudyReport:
        """Run the study; guarantees a terminal ``run_end`` event.

        Every exit path emits exactly one ``run_end`` with an
        ``outcome`` field: ``"ok"`` on success, ``"interrupted"`` on
        SIGINT/SIGTERM (:class:`KeyboardInterrupt` and its
        :class:`~repro.fleet.supervisor.RunInterrupted` subclass), and
        ``"failed"`` for everything else — so a truncated event stream
        still tells the reader how the run died.
        """
        try:
            return self._run()
        except KeyboardInterrupt:
            self.obs.events.emit("run_end", kind="study", complete=False,
                                 outcome="interrupted")
            raise
        except BaseException:
            self.obs.events.emit("run_end", kind="study", complete=False,
                                 outcome="failed")
            raise

    def _run(self) -> StudyReport:
        obs = self.obs
        # The sim clock is installed exactly once, by build(), when the
        # Simulator it reads actually exists; spans opened before that
        # (the run span, the build stage span) get their sim bounds
        # backfilled at close by the tracer.
        # Install the pipeline's context for the whole run so every
        # subsystem constructed below (Simulator, Lan, scanners, phone)
        # binds its instruments to this pipeline's registry.
        with use_obs(obs), ExitStack() as root:
            run_span = None
            if obs.enabled:
                run_span = root.enter_context(
                    obs.tracer.span("pipeline.run", seed=self.seed))
            obs.events.emit("run_start", kind="study", seed=self.seed,
                            duration=self.passive_duration,
                            apps=self.app_sample_size)
            with ExitStack() as stack:
                self._stage(stack, "build")
                self.build()
                self._count_artifact("devices", len(self.testbed.devices))

            with ExitStack() as stack:
                span = self._stage(stack, "passive_capture")
                self.collect_passive()
                maps = self.device_maps()
                # Decode + index exactly once; every analysis below
                # shares this CaptureIndex (and its memoized labels).
                with obs.tracer.span("capture.decode_index"):
                    index = self.testbed.lan.capture.index()
                if span is not None:
                    span.set_attr("packets", len(index))
                self._count_artifact("capture_packets", len(index))

            with ExitStack() as stack:
                span = self._stage(stack, "scans")
                census = census_from_capture(
                    index, maps["macs"], total_devices=len(self.testbed.devices))
                scan_report = self.run_scans()
                add_scan_results(census, scan_report)
                if span is not None:
                    span.set_attr("hosts", len(scan_report.hosts))
                self._count_artifact("scan_hosts", len(scan_report.hosts))

            with ExitStack() as stack:
                span = self._stage(stack, "apps")
                app_runs = self.run_apps()
                # Rates are computed over the apps actually run; pass
                # app_sample_size=2335 to exercise the full dataset.
                apps_total = len(app_runs)
                add_app_results(census, app_runs, total_apps=apps_total)
                if span is not None:
                    span.set_attr("apps", apps_total)
                self._count_artifact("app_runs", apps_total)

            with ExitStack() as stack:
                self._stage(stack, "vulnscan")
                findings = VulnerabilityScanner().scan(self.testbed.devices)
                self._count_artifact("vuln_findings", len(findings))

            with ExitStack() as stack:
                analysis_span = self._stage(stack, "analysis")
                analyses, failures = self._run_analyses(
                    index, maps, findings, analysis_span)
                report = StudyReport(
                    census=census,
                    device_graph=analyses["device_graph"],
                    exposure=analyses["exposure"],
                    responses=analyses["responses"],
                    periodicity=analyses["periodicity"],
                    crossval=analyses["crossval"],
                    threat=analyses["threat"],
                    scan_report=scan_report,
                    exfiltration=audit_app_runs(app_runs, total_apps=apps_total),
                    honeypot_contacts=self.farm.contact_count() if self.farm else 0,
                    capture_packets=len(index),
                    failures=failures,
                )
                if self.injector is not None:
                    report.fault_summary = self.injector.summary()
                if self.include_crowdsourced:
                    # Delegate to the sharded fleet runner; with the default
                    # spec it produces a report byte-identical to the serial
                    # fingerprint_households() path (see docs/fleet.md).
                    from repro.fleet import FleetSpec, run_fleet

                    report.fingerprint = run_fleet(
                        FleetSpec(seed=self.seed + 16), obs=self.obs
                    ).report
                for artifact in ("census", "device_graph", "exposure", "responses",
                                 "periodicity", "crossval", "threat", "exfiltration"):
                    if analyses.get(artifact, True) is not None:
                        self._count_artifact(artifact)
            if run_span is not None:
                run_span.set_attr("capture_packets", report.capture_packets)
        if obs.enabled:
            report.telemetry = self._telemetry_snapshot()
            obs.logger("pipeline").info(
                "run_complete", packets=report.capture_packets,
                honeypot_contacts=report.honeypot_contacts,
                failed_analyses=len(report.failures))
        obs.events.emit("run_end", kind="study",
                        packets=report.capture_packets,
                        failed_analyses=len(report.failures),
                        complete=report.complete, outcome="ok")
        return report
