"""§5.1 ARP behaviour analysis.

"Amazon Echo devices perform daily broadcast ARP scanning of the entire
local IP space, and also send targeted unicast ARP messages to 83% of
other devices.  Interestingly, while only 58% of devices in our testbed
respond to Echo's broadcast ARP scans, all of them reply to the unicast
ones...  Six devices also send requests for public IPs."

This module extracts all of that from a capture: who sweeps, who
unicast-probes, per-device response rates to broadcast vs unicast
requests, and public-IP probing.
"""

from __future__ import annotations

import ipaddress
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.arp import ArpOp
from repro.net.decode import DecodedPacket


@dataclass
class ArpScanner:
    """One device observed scanning via ARP."""

    device: str
    broadcast_targets: Set[str] = field(default_factory=set)
    unicast_targets: Set[str] = field(default_factory=set)
    public_targets: Set[str] = field(default_factory=set)

    @property
    def is_sweeper(self) -> bool:
        """Swept a large slice of the IP space via broadcast."""
        return len(self.broadcast_targets) >= 64


@dataclass
class ArpAnalysis:
    """The §5.1 ARP findings for one capture."""

    scanners: Dict[str, ArpScanner] = field(default_factory=dict)
    #: device -> (requests received, replies sent) for broadcast requests
    broadcast_behaviour: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    unicast_behaviour: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def sweepers(self) -> List[str]:
        return sorted(name for name, scanner in self.scanners.items() if scanner.is_sweeper)

    def public_ip_probers(self) -> List[str]:
        return sorted(
            name for name, scanner in self.scanners.items() if scanner.public_targets
        )

    def broadcast_response_rate(self) -> float:
        """Fraction of queried devices that answered broadcast requests."""
        queried = [pair for pair in self.broadcast_behaviour.values() if pair[0] > 0]
        if not queried:
            return 0.0
        return sum(1 for requests, replies in queried if replies > 0) / len(queried)

    def unicast_response_rate(self) -> float:
        queried = [pair for pair in self.unicast_behaviour.values() if pair[0] > 0]
        if not queried:
            return 0.0
        return sum(1 for requests, replies in queried if replies > 0) / len(queried)

    def unicast_probe_coverage(self, scanner: str, device_count: int) -> float:
        """Fraction of other devices a scanner unicast-probed (Echo: 83%)."""
        entry = self.scanners.get(scanner)
        if entry is None or device_count <= 1:
            return 0.0
        return len(entry.unicast_targets) / (device_count - 1)


def analyze_arp(
    packets: Iterable[DecodedPacket],
    device_macs: Dict[str, str],
    device_ips: Optional[Dict[str, str]] = None,
) -> ArpAnalysis:
    """Extract ARP scanning/response behaviour from a capture.

    ``device_ips`` maps device name -> IP; when omitted it is inferred
    from gratuitous ARP and replies in the capture.
    """
    analysis = ArpAnalysis()
    inferred_ips: Dict[str, str] = dict(device_ips or {})
    packets = list(packets)

    # Infer IPs from ARP sender fields when not provided.
    if not device_ips:
        for packet in packets:
            if packet.arp is None:
                continue
            device = device_macs.get(str(packet.frame.src))
            if device is not None and packet.arp.sender_ip != "0.0.0.0":
                inferred_ips.setdefault(device, packet.arp.sender_ip)
    ip_to_device = {ip: name for name, ip in inferred_ips.items()}

    broadcast_requests: Dict[str, int] = defaultdict(int)
    unicast_requests: Dict[str, int] = defaultdict(int)
    broadcast_replies: Dict[str, int] = defaultdict(int)
    unicast_replies: Dict[str, int] = defaultdict(int)
    #: (requester, target) -> (timestamp, mode) of the latest request,
    #: so a reply is credited to the request that elicited it.
    last_request: Dict[Tuple[str, str], Tuple[float, str]] = {}
    reply_window = 5.0

    for packet in packets:
        arp = packet.arp
        if arp is None:
            continue
        sender = device_macs.get(str(packet.frame.src))
        if arp.op is ArpOp.REQUEST and sender is not None:
            scanner = analysis.scanners.get(sender)
            if scanner is None:
                scanner = analysis.scanners[sender] = ArpScanner(device=sender)
            target_device = ip_to_device.get(arp.target_ip)
            try:
                is_public = not ipaddress.ip_address(arp.target_ip).is_private
            except ValueError:
                is_public = False
            if is_public:
                scanner.public_targets.add(arp.target_ip)
            if packet.frame.is_broadcast:
                if arp.sender_ip != arp.target_ip:  # exclude gratuitous
                    scanner.broadcast_targets.add(arp.target_ip)
                    if target_device is not None and target_device != sender:
                        broadcast_requests[target_device] += 1
                        last_request[(sender, target_device)] = (packet.timestamp, "broadcast")
            else:
                scanner.unicast_targets.add(arp.target_ip)
                if target_device is not None and target_device != sender:
                    unicast_requests[target_device] += 1
                    last_request[(sender, target_device)] = (packet.timestamp, "unicast")
        elif arp.op is ArpOp.REPLY and sender is not None:
            requester = device_macs.get(str(packet.frame.dst))
            if requester is None:
                continue
            entry = last_request.get((requester, sender))
            if entry is None:
                continue
            requested_at, mode = entry
            if not 0.0 <= packet.timestamp - requested_at <= reply_window:
                continue
            if mode == "unicast":
                unicast_replies[sender] += 1
            else:
                broadcast_replies[sender] += 1

    names = set(broadcast_requests) | set(broadcast_replies)
    for name in names:
        analysis.broadcast_behaviour[name] = (
            broadcast_requests.get(name, 0), broadcast_replies.get(name, 0),
        )
    names = set(unicast_requests) | set(unicast_replies)
    for name in names:
        analysis.unicast_behaviour[name] = (
            unicast_requests.get(name, 0), unicast_replies.get(name, 0),
        )
    return analysis
