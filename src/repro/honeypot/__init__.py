"""Protocol honeypots deployed inside the simulated home LAN.

§3.1: "we deploy various honeypots within the same network as our IoT
devices.  These honeypots capture network scans from IoT devices and
issue authentic responses to requests, mimicking real-world device
interactions.  They support protocols such as SSDP, mDNS, UPnP,
HTTP(S), and telnet.  Given our control over these responses, the
honeypots give us the ability to track how information propagates
through the IoT devices."

Each honeypot answers its protocol with uniquely-marked responses and
logs every contact; the marker tokens let the exfiltration analysis
(§6) trace where honeypot-served data reappears.
"""

from repro.honeypot.base import Honeypot, HoneypotEvent, HoneypotLog
from repro.honeypot.ssdp import SsdpHoneypot
from repro.honeypot.mdns import MdnsHoneypot
from repro.honeypot.http import HttpHoneypot
from repro.honeypot.telnet import TelnetHoneypot
from repro.honeypot.farm import HoneypotFarm

__all__ = [
    "Honeypot",
    "HoneypotEvent",
    "HoneypotLog",
    "SsdpHoneypot",
    "MdnsHoneypot",
    "HttpHoneypot",
    "TelnetHoneypot",
    "HoneypotFarm",
]
