"""Deploy the full honeypot complement into a testbed LAN."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.honeypot.base import Honeypot, HoneypotLog
from repro.honeypot.http import HttpHoneypot
from repro.honeypot.mdns import MdnsHoneypot
from repro.honeypot.ssdp import SsdpHoneypot
from repro.honeypot.telnet import TelnetHoneypot
from repro.obs import get_obs
from repro.simnet.lan import Lan


@dataclass
class HoneypotFarm:
    """The §3.1 deployment: SSDP + mDNS + HTTP + telnet, shared log."""

    log: HoneypotLog = field(default_factory=HoneypotLog)
    honeypots: List[Honeypot] = field(default_factory=list)

    @classmethod
    def deploy(cls, lan: Lan) -> "HoneypotFarm":
        farm = cls()
        farm.honeypots = [
            SsdpHoneypot(log=farm.log).attach_to(lan),
            MdnsHoneypot(log=farm.log).attach_to(lan),
            HttpHoneypot(log=farm.log).attach_to(lan),
            TelnetHoneypot(log=farm.log).attach_to(lan),
        ]
        obs = get_obs()
        if obs.enabled:
            obs.logger("honeypot").info(
                "farm_deployed", honeypots=len(farm.honeypots))
        return farm

    def contacts_per_type(self) -> Dict[str, int]:
        """Contact counts keyed by honeypot protocol."""
        counts: Dict[str, int] = {}
        for event in self.log.events:
            counts[event.protocol] = counts.get(event.protocol, 0) + 1
        return counts

    def scanners_observed(self) -> Dict[str, List[str]]:
        """Which sources contacted which honeypot protocols."""
        observed: Dict[str, List[str]] = {}
        for mac, events in self.log.contacts_by_source().items():
            observed[mac] = sorted({event.protocol for event in events})
        return observed

    def contact_count(self) -> int:
        return len(self.log)
