"""mDNS honeypot: advertises marked services and logs queriers."""

from __future__ import annotations

from typing import List, Optional

from repro.honeypot.base import Honeypot, HoneypotLog
from repro.net.decode import DecodedPacket
from repro.protocols.dns import DnsMessage
from repro.protocols.mdns import MDNS_GROUP_V4, MDNS_PORT, ServiceAdvertisement


class MdnsHoneypot(Honeypot):
    """Emulates Bonjour services (cast, AirPlay) with marked instances."""

    protocol = "mdns"

    #: Service types the honeypot pretends to run.
    SERVED_TYPES = [
        "_googlecast._tcp.local",
        "_airplay._tcp.local",
        "_spotify-connect._tcp.local",
        "_services._dns-sd._udp.local",
    ]

    def __init__(self, name: str = "honeypot-mdns", mac="02:00:00:00:00:a2",
                 log: Optional[HoneypotLog] = None):
        super().__init__(name=name, mac=mac, log=log)
        self.on_udp(MDNS_PORT, type(self)._on_mdns)

    def attach_to(self, lan) -> "MdnsHoneypot":
        lan.attach(self)
        self.join_group(MDNS_GROUP_V4)
        return self

    def advertisements(self, marker: str) -> List[ServiceAdvertisement]:
        return [
            ServiceAdvertisement(
                service_type=service_type,
                instance_name=f"Honey-{marker}",
                hostname=f"honey-{marker}.local",
                port=8009,
                address=self.ip,
                txt={"id": marker, "md": "HoneyCast"},
            )
            for service_type in self.SERVED_TYPES
            if service_type != "_services._dns-sd._udp.local"
        ]

    def _on_mdns(self, packet: DecodedPacket) -> None:
        try:
            message = DnsMessage.decode(packet.udp.payload)
        except ValueError:
            self.record_contact(packet, "undecodable mDNS payload", malformed=True)
            return
        if message.is_response:
            names = [record.name for record in message.all_records[:3]]
            self.record_contact(packet, f"response advertising {names}")
            return
        asked = [question.name for question in message.questions]
        wanted = [name for name in asked if name in self.SERVED_TYPES]
        if not wanted:
            self.record_contact(packet, f"query for {asked}")
            return
        marker = self.next_marker()
        response = DnsMessage(is_response=True, authoritative=True)
        for advertisement in self.advertisements(marker):
            if advertisement.service_type in wanted or "_services._dns-sd._udp.local" in wanted:
                part = advertisement.to_response()
                response.answers.extend(part.answers)
                response.additionals.extend(part.additionals)
        unicast = any(question.unicast_response for question in message.questions)
        if unicast:
            self.send_udp(packet.src_ip, packet.udp.src_port, response.encode(), src_port=MDNS_PORT)
        else:
            self.send_udp(MDNS_GROUP_V4, MDNS_PORT, response.encode(), src_port=MDNS_PORT)
        self.record_contact(packet, f"query for {wanted}", marker=marker)
