"""SSDP/UPnP honeypot: answers M-SEARCH with a marked fake device."""

from __future__ import annotations

from typing import Optional

from repro.honeypot.base import Honeypot, HoneypotLog
from repro.net.decode import DecodedPacket
from repro.protocols.ssdp import (
    SSDP_GROUP_V4,
    SSDP_PORT,
    SsdpMessage,
    SsdpMethod,
    ST_ALL,
    ST_ROOT_DEVICE,
    device_description_xml,
)


class SsdpHoneypot(Honeypot):
    """Emulates a UPnP MediaRenderer and logs every searcher.

    Unlike U-PoT (which hunts malicious UPnP activity), this honeypot
    "emulates real smart devices to monitor data dissemination" (§8):
    the USN and friendlyName carry a per-response marker so responses
    can be traced through whoever harvested them.
    """

    protocol = "ssdp"

    def __init__(self, name: str = "honeypot-ssdp", mac="02:00:00:00:00:a1",
                 log: Optional[HoneypotLog] = None):
        super().__init__(name=name, mac=mac, log=log)
        self.on_udp(SSDP_PORT, type(self)._on_ssdp)

    def attach_to(self, lan) -> "SsdpHoneypot":
        lan.attach(self)
        self.join_group(SSDP_GROUP_V4)
        return self

    def _on_ssdp(self, packet: DecodedPacket) -> None:
        try:
            message = SsdpMessage.decode(packet.udp.payload)
        except ValueError:
            self.record_contact(packet, "undecodable SSDP payload", malformed=True)
            return
        if message.method is SsdpMethod.MSEARCH:
            marker = self.next_marker()
            target = message.search_target or ST_ALL
            reply_target = ST_ROOT_DEVICE if target == ST_ALL else target
            reply = SsdpMessage.response(
                location=f"http://{self.ip}:49152/desc-{marker}.xml",
                search_target=reply_target,
                usn=f"uuid:{marker}::{reply_target}",
                server="Linux/4.4 UPnP/1.1 HoneyRenderer/1.0",
            )
            self.send_udp(packet.src_ip, packet.udp.src_port, reply.encode(), src_port=SSDP_PORT)
            self.record_contact(packet, f"M-SEARCH for {target}", marker=marker)
        elif message.method is SsdpMethod.NOTIFY:
            self.record_contact(
                packet,
                f"NOTIFY {message.search_target or ''} usn={message.usn or ''}",
            )

    def description_xml(self, marker: str) -> str:
        """The device description served for a marked LOCATION URL."""
        return device_description_xml(
            friendly_name=f"Honey Renderer {marker}",
            manufacturer="HoneyWorks",
            model_name="HR-1",
            udn=marker,
            serial_number=str(self.mac),
            services=["urn:schemas-upnp-org:service:AVTransport:1"],
        )
