"""HTTP(S) honeypot: serves marked device descriptions and logs clients."""

from __future__ import annotations

from typing import Optional

from repro.honeypot.base import Honeypot, HoneypotLog
from repro.net.decode import DecodedPacket
from repro.protocols.http import HttpRequest, HttpResponse
from repro.protocols.ssdp import device_description_xml
from repro.simnet.services import ServiceInfo


class HttpHoneypot(Honeypot):
    """Answers HTTP on 80/49152 — where SSDP LOCATION URLs point."""

    protocol = "http"

    def __init__(self, name: str = "honeypot-http", mac="02:00:00:00:00:a3",
                 log: Optional[HoneypotLog] = None):
        super().__init__(name=name, mac=mac, log=log)
        for port in (80, 443, 49152):
            self.services.add(ServiceInfo(port, "tcp", "http" if port != 443 else "https",
                                          "HTTP/1.1 200 OK", "HoneyHTTPd", "1.0"))
            self.on_tcp(port, type(self)._on_http)

    def attach_to(self, lan) -> "HttpHoneypot":
        lan.attach(self)
        return self

    def _on_http(self, packet: DecodedPacket) -> None:
        try:
            request = HttpRequest.decode(packet.tcp.payload)
        except ValueError:
            self.record_contact(packet, "non-HTTP payload on HTTP port", malformed=True)
            return
        marker = self.next_marker()
        agent = request.user_agent or "-"
        self.record_contact(packet, f"{request.method} {request.path} UA={agent}", marker=marker)
        body = device_description_xml(
            friendly_name=f"Honey Device {marker}",
            manufacturer="HoneyWorks",
            model_name="HW-HTTP",
            udn=marker,
            serial_number=str(self.mac),
        ).encode("utf-8")
        response = HttpResponse(200, "OK", {"Server": "HoneyHTTPd/1.0", "Content-Type": "text/xml"}, body)
        reply_segment = packet.tcp.__class__(
            packet.tcp.dst_port, packet.tcp.src_port,
            seq=1, ack=packet.tcp.seq + len(packet.tcp.payload),
            flags=packet.tcp.flags, payload=response.encode(),
        )
        self.send_tcp_segment(packet.src_ip, reply_segment, dst_mac=packet.frame.src)
