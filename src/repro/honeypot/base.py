"""Honeypot base machinery: contact logging and marker tokens."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.decode import DecodedPacket
from repro.obs import get_obs
from repro.simnet.node import Node
from repro.simnet.services import ServiceTable


@dataclass
class HoneypotEvent:
    """One inbound contact observed by a honeypot."""

    timestamp: float
    honeypot: str
    protocol: str
    src_ip: str
    src_mac: str
    src_port: Optional[int]
    summary: str
    marker: Optional[str] = None  # token planted in our response, if any
    #: True when the payload failed to parse (garbage/corrupted input);
    #: the honeypot still logs the contact instead of crashing.
    malformed: bool = False


class HoneypotLog:
    """Shared event log across a honeypot deployment."""

    def __init__(self):
        self.events: List[HoneypotEvent] = []
        self._obs = get_obs()

    def record(self, event: HoneypotEvent) -> None:
        self.events.append(event)
        if self._obs.enabled:
            self._obs.metrics.counter(
                "honeypot_contacts_total",
                "inbound contacts per honeypot protocol",
            ).inc(protocol=event.protocol, honeypot=event.honeypot)
            if event.malformed:
                self._obs.metrics.counter(
                    "honeypot_malformed_total",
                    "garbage payloads tolerated per honeypot protocol",
                ).inc(protocol=event.protocol, honeypot=event.honeypot)

    @property
    def malformed_count(self) -> int:
        return sum(1 for event in self.events if event.malformed)

    def contacts_by_source(self) -> Dict[str, List[HoneypotEvent]]:
        by_source: Dict[str, List[HoneypotEvent]] = {}
        for event in self.events:
            by_source.setdefault(event.src_mac, []).append(event)
        return by_source

    def events_for_protocol(self, protocol: str) -> List[HoneypotEvent]:
        return [event for event in self.events if event.protocol == protocol]

    def markers(self) -> List[str]:
        return [event.marker for event in self.events if event.marker]

    def __len__(self) -> int:
        return len(self.events)


class Honeypot(Node):
    """A honeypot node: a Node that logs contacts and plants markers.

    Markers are unique tokens embedded in honeypot responses; if a
    marker later shows up in other traffic (e.g. uploaded to a cloud
    endpoint by a companion app), information propagated through the
    device that queried us — the tracking §3.1 describes.
    """

    protocol = "generic"

    def __init__(self, name: str, mac, log: Optional[HoneypotLog] = None):
        super().__init__(name=name, mac=mac, ip="0.0.0.0", vendor="honeypot")
        self.log = log if log is not None else HoneypotLog()
        self._marker_counter = itertools.count(1)
        self.responds_to_broadcast_arp = True

    def next_marker(self) -> str:
        return f"hp-{self.name}-{next(self._marker_counter):06d}"

    def record_contact(
        self,
        packet: DecodedPacket,
        summary: str,
        marker: Optional[str] = None,
        malformed: bool = False,
    ) -> HoneypotEvent:
        event = HoneypotEvent(
            timestamp=packet.timestamp,
            honeypot=self.name,
            protocol=self.protocol,
            src_ip=packet.src_ip or "",
            src_mac=str(packet.frame.src),
            src_port=packet.src_port,
            summary=summary,
            marker=marker,
            malformed=malformed,
        )
        self.log.record(event)
        return event
