"""Telnet honeypot: presents a login banner and logs credential attempts."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.honeypot.base import Honeypot, HoneypotLog
from repro.net.decode import DecodedPacket
from repro.net.tcp import TcpFlags, TcpSegment
from repro.simnet.services import ServiceInfo

TELNET_PORT = 23


class TelnetHoneypot(Honeypot):
    """A busybox-style telnet endpoint that never authenticates anyone."""

    protocol = "telnet"
    BANNER = b"\r\nHoneyOS v1.0\r\nlogin: "

    def __init__(self, name: str = "honeypot-telnet", mac="02:00:00:00:00:a4",
                 log: Optional[HoneypotLog] = None):
        super().__init__(name=name, mac=mac, log=log)
        self.services.add(ServiceInfo(TELNET_PORT, "tcp", "telnet", "login:", "HoneyOS", "1.0"))
        self.on_tcp(TELNET_PORT, type(self)._on_telnet)
        #: (src_ip, src_port) -> received line fragments
        self._sessions: Dict[Tuple[str, int], List[bytes]] = {}
        self.credential_attempts: List[Tuple[str, str]] = []  # (src_ip, line)

    def attach_to(self, lan) -> "TelnetHoneypot":
        lan.attach(self)
        return self

    def _on_telnet(self, packet: DecodedPacket) -> None:
        key = (packet.src_ip, packet.tcp.src_port)
        fragments = self._sessions.setdefault(key, [])
        data = packet.tcp.payload
        fragments.append(data)
        line = b"".join(fragments)
        if b"\n" in line or b"\r" in line:
            attempt = line.strip().decode("utf-8", "replace")
            if attempt:
                self.credential_attempts.append((packet.src_ip, attempt))
            self._sessions[key] = []
            summary = f"credential attempt: {attempt!r}"
        else:
            summary = f"{len(data)} bytes of session input"
        self.record_contact(packet, summary)
        reply = TcpSegment(
            TELNET_PORT, packet.tcp.src_port,
            seq=1, ack=packet.tcp.seq + len(data),
            flags=TcpFlags.ACK | TcpFlags.PSH,
            payload=self.BANNER,
        )
        self.send_tcp_segment(packet.src_ip, reply, dst_mac=packet.frame.src)
