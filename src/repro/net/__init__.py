"""Network substrate: addresses, packet codecs, pcap I/O, and flows.

This subpackage provides the low-level plumbing that every other part of
the reproduction builds on.  All codecs operate on real wire formats so
that captures produced by the simulator can be re-parsed, classified,
and inspected exactly like captures from a physical testbed.
"""

from repro.net.mac import MacAddress, BROADCAST_MAC
from repro.net.ether import EtherType, EthernetFrame
from repro.net.arp import ArpPacket, ArpOp
from repro.net.ipv4 import Ipv4Packet, IpProtocol
from repro.net.ipv6 import Ipv6Packet
from repro.net.udp import UdpDatagram
from repro.net.tcp import TcpSegment, TcpFlags
from repro.net.icmp import IcmpMessage, Icmpv6Message
from repro.net.igmp import IgmpMessage
from repro.net.eapol import EapolFrame
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.net.flows import Flow, FlowKey, FlowTable, assemble_flows
from repro.net.filters import LocalTrafficFilter
from repro.net.oui import OuiRegistry, DEFAULT_OUI_REGISTRY
from repro.net.columnar import LazyPackets, PacketTable
from repro.net.ingest import IngestResult, IngestStats, ingest_pcap

__all__ = [
    "MacAddress",
    "BROADCAST_MAC",
    "EtherType",
    "EthernetFrame",
    "ArpPacket",
    "ArpOp",
    "Ipv4Packet",
    "IpProtocol",
    "Ipv6Packet",
    "UdpDatagram",
    "TcpSegment",
    "TcpFlags",
    "IcmpMessage",
    "Icmpv6Message",
    "IgmpMessage",
    "EapolFrame",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
    "Flow",
    "FlowKey",
    "FlowTable",
    "assemble_flows",
    "LocalTrafficFilter",
    "OuiRegistry",
    "DEFAULT_OUI_REGISTRY",
    "LazyPackets",
    "PacketTable",
    "IngestResult",
    "IngestStats",
    "ingest_pcap",
]
