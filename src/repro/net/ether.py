"""Ethernet II frame codec.

The paper's traffic classifier uses the Ethernet ``type`` field to
separate non-IP traffic (ARP, EAPOL, LLC) from IP traffic (§3.5), and
the local-traffic filter (Appendix C.1) relies on the destination MAC's
I/G bit to keep multicast/broadcast frames.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.net.mac import MacAddress
from repro.net.guard import guarded_decode


class EtherType(enum.IntEnum):
    """EtherType values used across the testbed."""

    IPV4 = 0x0800
    ARP = 0x0806
    IPV6 = 0x86DD
    EAPOL = 0x888E
    #: Anything below 1536 is an IEEE 802.3 length, treated as LLC.
    LLC = 0x0000

    @classmethod
    def classify(cls, value: int) -> "EtherType":
        if value < 0x0600:
            return cls.LLC
        try:
            return cls(value)
        except ValueError:
            return cls.LLC


_HEADER = struct.Struct("!6s6sH")


@dataclass
class EthernetFrame:
    """A decoded Ethernet II frame (or 802.3/LLC when ``ethertype < 0x600``)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int
    payload: bytes = b""

    def __post_init__(self):
        self.dst = MacAddress(self.dst)
        self.src = MacAddress(self.src)

    @property
    def kind(self) -> EtherType:
        return EtherType.classify(self.ethertype)

    @property
    def is_multicast(self) -> bool:
        """True when the destination has the I/G bit set (incl. broadcast)."""
        return self.dst.is_multicast

    @property
    def is_broadcast(self) -> bool:
        return self.dst.is_broadcast

    def encode(self) -> bytes:
        return _HEADER.pack(self.dst.packed, self.src.packed, self.ethertype) + self.payload

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "EthernetFrame":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated Ethernet frame: {len(data)} bytes")
        dst, src, ethertype = _HEADER.unpack_from(data)
        return cls(
            dst=MacAddress(dst),
            src=MacAddress(src),
            ethertype=ethertype,
            payload=data[_HEADER.size:],
        )

    def __len__(self) -> int:
        return _HEADER.size + len(self.payload)
