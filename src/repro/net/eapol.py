"""EAPOL (IEEE 802.1X) frame codec.

84% of testbed devices emit EAPOL (Fig. 2) — the WPA2 4-way handshake
every Wi-Fi client performs.  We model the EAPOL-Key frames enough for
the classifier to recognize them as non-IP layer-2 traffic.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from repro.net.guard import guarded_decode


class EapolType(enum.IntEnum):
    EAP_PACKET = 0
    START = 1
    LOGOFF = 2
    KEY = 3


_HEADER = struct.Struct("!BBH")


@dataclass
class EapolFrame:
    """A decoded EAPOL frame (carried in Ethernet type 0x888E)."""

    packet_type: int = EapolType.KEY
    version: int = 2
    body: bytes = b""

    def encode(self) -> bytes:
        return _HEADER.pack(self.version, self.packet_type, len(self.body)) + self.body

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "EapolFrame":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated EAPOL frame: {len(data)} bytes")
        version, packet_type, length = _HEADER.unpack_from(data)
        return cls(
            packet_type=packet_type,
            version=version,
            body=data[_HEADER.size : _HEADER.size + length],
        )

    @classmethod
    def key_frame(cls, message_number: int = 1) -> "EapolFrame":
        """A placeholder WPA2 4-way-handshake key frame (message 1..4)."""
        if not 1 <= message_number <= 4:
            raise ValueError("4-way handshake has messages 1..4")
        body = struct.pack("!BH", 2, 0x008A if message_number % 2 else 0x010A)
        body += bytes(93)  # replay counter, nonces, MIC, key data length
        return cls(EapolType.KEY, 2, body)
