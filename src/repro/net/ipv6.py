"""IPv6 packet codec.

59% of testbed devices support IPv6 (§4.1); ICMPv6 neighbor discovery
over IPv6 multicast is one of the discovery channels that exposes MAC
addresses (§5.1), and the new Matter standard runs over IPv6.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from repro.net.guard import guarded_decode

_HEADER = struct.Struct("!IHBB16s16s")


@dataclass
class Ipv6Packet:
    """A decoded IPv6 packet (no extension-header support)."""

    src: str
    dst: str
    next_header: int
    payload: bytes = b""
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    def __post_init__(self):
        self.src = str(ipaddress.IPv6Address(self.src))
        self.dst = str(ipaddress.IPv6Address(self.dst))

    @property
    def is_multicast(self) -> bool:
        return ipaddress.IPv6Address(self.dst).is_multicast

    @property
    def is_link_local(self) -> bool:
        return (
            ipaddress.IPv6Address(self.src).is_link_local
            and not ipaddress.IPv6Address(self.dst).is_global
        )

    def encode(self) -> bytes:
        first_word = (6 << 28) | (self.traffic_class << 20) | (self.flow_label & 0xFFFFF)
        return (
            _HEADER.pack(
                first_word,
                len(self.payload),
                self.next_header,
                self.hop_limit,
                ipaddress.IPv6Address(self.src).packed,
                ipaddress.IPv6Address(self.dst).packed,
            )
            + self.payload
        )

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "Ipv6Packet":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated IPv6 packet: {len(data)} bytes")
        first_word, payload_len, next_header, hop_limit, src, dst = _HEADER.unpack_from(data)
        version = first_word >> 28
        if version != 6:
            raise ValueError(f"not an IPv6 packet (version={version})")
        payload = data[_HEADER.size : _HEADER.size + payload_len]
        return cls(
            src=str(ipaddress.IPv6Address(src)),
            dst=str(ipaddress.IPv6Address(dst)),
            next_header=next_header,
            payload=payload,
            hop_limit=hop_limit,
            traffic_class=(first_word >> 20) & 0xFF,
            flow_label=first_word & 0xFFFFF,
        )


def link_local_from_mac(mac) -> str:
    """Derive an fe80:: link-local address from a MAC via EUI-64 (RFC 4291).

    This is the SLAAC behaviour (§5.1) that embeds the MAC address into
    the IPv6 address, turning every IPv6 packet into an identifier leak.
    """
    from repro.net.mac import MacAddress

    octets = bytearray(MacAddress(mac).packed)
    octets[0] ^= 0x02  # flip the universal/local bit
    eui64 = bytes(octets[:3]) + b"\xff\xfe" + bytes(octets[3:])
    return str(ipaddress.IPv6Address(b"\xfe\x80" + b"\x00" * 6 + eui64))
