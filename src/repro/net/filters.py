"""The Appendix C.1 local-traffic filter.

The paper keeps a packet when any of the following hold::

    (ip.dst in LAN/24 and ip.src in LAN/24)   # local IP unicast
    or (eth.dst.ig == 1)                      # multicast/broadcast
    or (eth.dst.ig == 0 and not ip)           # non-IP unicast (ARP, EAPOL)

We reproduce the same three-clause predicate over decoded packets.
"""

from __future__ import annotations

import ipaddress
from typing import Iterable, Iterator, List

from repro.net.decode import DecodedPacket


class LocalTrafficFilter:
    """Select local-network traffic exactly as Appendix C.1 does."""

    def __init__(self, local_network: str = "192.168.10.0/24"):
        self.network = ipaddress.ip_network(local_network)

    def _in_subnet(self, address: str) -> bool:
        try:
            parsed = ipaddress.ip_address(address)
        except ValueError:
            return False
        if parsed.version != self.network.version:
            return False
        return parsed in self.network

    def matches(self, packet: DecodedPacket) -> bool:
        # Clause 2: multicast/broadcast (I/G bit set on destination MAC).
        if packet.frame.is_multicast:
            return True
        # Clause 3: unicast but not IP (ARP, EAPOL, LLC...).
        has_ip = packet.ipv4 is not None or packet.ipv6 is not None
        if not has_ip:
            return True
        # Clause 1: both IP endpoints inside the local subnet.
        if packet.ipv4 is not None:
            return self._in_subnet(packet.ipv4.src) and self._in_subnet(packet.ipv4.dst)
        # IPv6 local traffic: keep link-local and ULA conversations.
        src = ipaddress.ip_address(packet.ipv6.src)
        dst = ipaddress.ip_address(packet.ipv6.dst)
        return not src.is_global and not dst.is_global

    def apply(self, packets: Iterable[DecodedPacket]) -> List[DecodedPacket]:
        return [packet for packet in packets if self.matches(packet)]

    def iterate(self, packets: Iterable[DecodedPacket]) -> Iterator[DecodedPacket]:
        return (packet for packet in packets if self.matches(packet))


def is_private_conversation(src_ip: str, dst_ip: str) -> bool:
    """True when both addresses are in ranges reserved for private networks.

    This is the filter applied to the IoT Inspector dataset (§3.3): "We
    consider only traffic whose source and destination IP addresses are
    in ranges reserved for private networks".
    """
    try:
        src = ipaddress.ip_address(src_ip)
        dst = ipaddress.ip_address(dst_ip)
    except ValueError:
        return False
    return src.is_private and dst.is_private
