"""Decode guards: make every packet/payload parser total over garbage.

The paper's datasets are messy by construction — crowdsourced captures
and honeypot traffic contain truncated, non-compliant, and corrupted
payloads — so the contract for every ``decode`` classmethod in
``repro.net`` and ``repro.protocols`` is: *on malformed input, raise*
``ValueError`` *and nothing else*.  Callers then need exactly one
``except ValueError`` (or :func:`try_decode`) to survive any input.

Hand-written struct parsers naturally leak other exception types on
adversarial bytes (``struct.error`` on short buffers, ``IndexError`` on
bad offsets, ``KeyError``/``OverflowError`` on out-of-range enum or
length fields).  :func:`guarded_decode` normalizes all of them to
``ValueError`` so the quarantine path in ``repro.net.decode`` — and the
honeypots, which must tolerate whatever a scanner throws at them —
cannot be crashed by a byte pattern the author did not anticipate.
"""

from __future__ import annotations

import functools
import struct
from typing import Callable, Optional, TypeVar

T = TypeVar("T")

#: Exception types a hand-written parser can leak on garbage input.
#: ``UnicodeDecodeError`` and ``ipaddress.AddressValueError`` already
#: subclass ``ValueError`` and need no translation.
_DECODE_LEAKS = (struct.error, IndexError, KeyError, OverflowError, EOFError)


def guarded_decode(func: Callable[..., T]) -> Callable[..., T]:
    """Wrap a ``decode`` so malformed input can only raise ``ValueError``.

    Apply *under* ``@classmethod``::

        @classmethod
        @guarded_decode
        def decode(cls, data: bytes) -> "Message": ...
    """

    @functools.wraps(func)
    def wrapper(cls, data, *args, **kwargs):
        try:
            return func(cls, data, *args, **kwargs)
        except ValueError:
            raise
        except _DECODE_LEAKS as exc:
            name = getattr(cls, "__name__", str(cls))
            raise ValueError(f"malformed {name}: {exc!r}") from exc

    return wrapper


def try_decode(decoder: Callable[..., T], data: bytes, *args, **kwargs) -> Optional[T]:
    """Run a guarded decoder; return ``None`` instead of raising on garbage."""
    try:
        return decoder(data, *args, **kwargs)
    except ValueError:
        return None
