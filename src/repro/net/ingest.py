"""Streaming pcap ingest into the columnar packet store.

The paper's captures are multi-week pcaps from a real AP; IoT
Inspector-style deployments ingest millions of crowdsourced records.
This frontend reads a classic pcap file in bounded-memory chunks and
feeds each chunk straight into a
:class:`~repro.net.columnar.PacketTable` through the same guarded,
quarantining decode path the simulator uses — so every analysis under
``repro.core`` and ``repro.classify`` runs unchanged over external
captures via the resulting :class:`~repro.net.index.CaptureIndex`.

Memory model: only one chunk of ``(timestamp, bytes)`` records is alive
at a time — the ingest stage's transient footprint is
``O(chunk_records)``, independent of capture length.  The table itself
grows with the capture, but as packed columns plus one byte arena, not
as per-packet Python objects (see ``docs/performance.md``).

Used by the ``repro ingest`` CLI subcommand (``docs/cli.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.columnar import PacketTable
from repro.net.decode import DecodeErrorLog
from repro.net.index import CaptureIndex
from repro.net.pcap import PcapReader

#: Records per ingest chunk; bounds the transient per-chunk allocation.
DEFAULT_CHUNK_RECORDS = 8_192


@dataclass
class IngestStats:
    """Counters describing one streaming ingest."""

    packets: int = 0
    bytes: int = 0
    chunks: int = 0
    quarantined: Dict[str, int] = field(default_factory=dict)

    @property
    def quarantined_total(self) -> int:
        return sum(self.quarantined.values())


class IngestResult:
    """The outcome of :func:`ingest_pcap`: table + error log + stats."""

    def __init__(self, table: PacketTable, errors: DecodeErrorLog,
                 stats: IngestStats):
        self.table = table
        self.errors = errors
        self.stats = stats
        self._index: Optional[CaptureIndex] = None

    @property
    def index(self) -> CaptureIndex:
        """A shared :class:`CaptureIndex` over the ingested table."""
        if self._index is None:
            self._index = CaptureIndex(self.table)
        return self._index

    def __len__(self) -> int:
        return len(self.table)


def iter_pcap_chunks(path, chunk_records: int = DEFAULT_CHUNK_RECORDS,
                     ) -> Iterator[List[Tuple[float, bytes]]]:
    """Yield ``(timestamp, bytes)`` record chunks from a classic pcap.

    Never holds more than ``chunk_records`` records at once.
    """
    if chunk_records <= 0:
        raise ValueError(f"chunk_records must be positive, got {chunk_records}")
    with PcapReader(path) as reader:
        chunk: List[Tuple[float, bytes]] = []
        for captured in reader:
            chunk.append((captured.timestamp, captured.data))
            if len(chunk) >= chunk_records:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


def ingest_pcap(path, chunk_records: int = DEFAULT_CHUNK_RECORDS,
                errors: Optional[DecodeErrorLog] = None,
                table: Optional[PacketTable] = None) -> IngestResult:
    """Stream a classic pcap file into a columnar packet table.

    Malformed frames are quarantined exactly as the simulator's capture
    path quarantines them (counted per reason in the returned error
    log, row flagged, packet preserved verbatim) — a hostile or
    truncated-frame pcap cannot abort the ingest.  A truncated pcap
    *file* still raises ``ValueError`` from the reader, as does a bad
    magic number.

    Pass ``table`` to append onto an existing store (e.g. merging
    per-MAC pcaps back into one capture).
    """
    errors = errors if errors is not None else DecodeErrorLog()
    table = table if table is not None else PacketTable()
    stats = IngestStats()
    quarantined_before = errors.snapshot()
    for chunk in iter_pcap_chunks(path, chunk_records):
        table.extend_records(chunk, errors)
        stats.chunks += 1
        stats.packets += len(chunk)
        stats.bytes += sum(len(data) for _, data in chunk)
    for reason, count in errors.snapshot().items():
        delta = count - quarantined_before.get(reason, 0)
        if delta:
            stats.quarantined[reason] = delta
    return IngestResult(table=table, errors=errors, stats=stats)
