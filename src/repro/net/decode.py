"""Layered packet decoding: raw frame bytes -> structured view.

This is the single entry point used by the flow assembler, the traffic
classifiers, the exposure analysis and the honeypots to interpret
captured bytes, mirroring how the paper post-processes tcpdump output.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.arp import ArpPacket
from repro.net.eapol import EapolFrame
from repro.net.ether import EthernetFrame, EtherType
from repro.net.icmp import IcmpMessage, Icmpv6Message
from repro.net.igmp import IgmpMessage
from repro.net.ipv4 import IpProtocol, Ipv4Packet
from repro.net.ipv6 import Ipv6Packet
from repro.net.tcp import TcpSegment
from repro.net.udp import UdpDatagram


class DecodeErrorLog:
    """A counted quarantine for frames that failed to decode cleanly.

    Decoding is *total*: a malformed frame never raises mid-analysis.
    Instead the failure is recorded here — counted per reason, with a
    bounded sample of the offending bytes kept for postmortems — and
    the (partially) decoded packet flows on with ``decode_error`` set.
    Thread-safe, because the capture layer decodes backlogs in parallel
    chunks.
    """

    #: How many offending frames to retain verbatim for inspection.
    SAMPLE_LIMIT = 32

    def __init__(self):
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {}
        self.samples = deque(maxlen=self.SAMPLE_LIMIT)

    def record(self, timestamp: float, data: bytes, reason: str, detail: str = "") -> None:
        with self._lock:
            self.counts[reason] = self.counts.get(reason, 0) + 1
            self.samples.append((timestamp, bytes(data), reason, detail))

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counts)

    def clear(self) -> None:
        with self._lock:
            self.counts.clear()
            self.samples.clear()

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:
        return f"DecodeErrorLog({self.snapshot()!r})"


@dataclass
class DecodedPacket:
    """A fully decoded frame with every recognized layer attached.

    Layers that are absent (or failed to parse) are ``None``.  The
    original bytes are always retained in ``frame.payload`` so payload
    analyses never lose information to decoding.  ``decode_error`` names
    the layer that failed to parse (``None`` for a clean decode); the
    packet itself is always usable.
    """

    timestamp: float
    frame: EthernetFrame
    arp: Optional[ArpPacket] = None
    eapol: Optional[EapolFrame] = None
    ipv4: Optional[Ipv4Packet] = None
    ipv6: Optional[Ipv6Packet] = None
    udp: Optional[UdpDatagram] = None
    tcp: Optional[TcpSegment] = None
    icmp: Optional[IcmpMessage] = None
    icmpv6: Optional[Icmpv6Message] = None
    igmp: Optional[IgmpMessage] = None
    decode_error: Optional[str] = None

    @property
    def is_malformed(self) -> bool:
        return self.decode_error is not None

    @property
    def src_ip(self) -> Optional[str]:
        if self.ipv4:
            return self.ipv4.src
        if self.ipv6:
            return self.ipv6.src
        return None

    @property
    def dst_ip(self) -> Optional[str]:
        if self.ipv4:
            return self.ipv4.dst
        if self.ipv6:
            return self.ipv6.dst
        return None

    @property
    def src_port(self) -> Optional[int]:
        transport = self.udp or self.tcp
        return transport.src_port if transport else None

    @property
    def dst_port(self) -> Optional[int]:
        transport = self.udp or self.tcp
        return transport.dst_port if transport else None

    @property
    def transport(self) -> Optional[str]:
        if self.udp:
            return "udp"
        if self.tcp:
            return "tcp"
        return None

    @property
    def app_payload(self) -> bytes:
        """The application-layer payload, or b"" when there is none."""
        if self.udp:
            return self.udp.payload
        if self.tcp:
            return self.tcp.payload
        return b""

    @property
    def ip_protocol(self) -> Optional[int]:
        if self.ipv4:
            return self.ipv4.protocol
        if self.ipv6:
            return self.ipv6.next_header
        return None

    @property
    def is_multicast(self) -> bool:
        return self.frame.is_multicast and not self.frame.is_broadcast

    @property
    def is_broadcast(self) -> bool:
        if self.frame.is_broadcast:
            return True
        return bool(self.ipv4 and self.ipv4.dst == "255.255.255.255")

    @property
    def is_unicast(self) -> bool:
        return not self.frame.is_multicast


#: Placeholder endpoints for frames too damaged to carry real addresses.
_NULL_MAC = "00:00:00:00:00:00"


def decode_frame(
    data: bytes,
    timestamp: float = 0.0,
    errors: Optional[DecodeErrorLog] = None,
) -> DecodedPacket:
    """Decode raw Ethernet bytes into a :class:`DecodedPacket`.

    Decoding is *total* and forgiving: a malformed inner layer leaves
    that layer ``None`` rather than failing the whole packet (matching
    how dissectors behave on partially captured traffic), and a frame
    too short even for an Ethernet header yields a stub packet with
    ``decode_error`` set instead of raising.  When an ``errors``
    quarantine log is passed, every decode failure is counted there.
    """
    try:
        frame = EthernetFrame.decode(data)
    except ValueError as exc:
        packet = DecodedPacket(
            timestamp=timestamp,
            frame=EthernetFrame(_NULL_MAC, _NULL_MAC, 0, data),
            decode_error="ethernet",
        )
        if errors is not None:
            errors.record(timestamp, data, "ethernet", str(exc))
        return packet
    packet = DecodedPacket(timestamp=timestamp, frame=frame)
    kind = frame.kind
    try:
        if kind is EtherType.ARP:
            packet.arp = ArpPacket.decode(frame.payload)
        elif kind is EtherType.EAPOL:
            packet.eapol = EapolFrame.decode(frame.payload)
        elif kind is EtherType.IPV4:
            packet.ipv4 = Ipv4Packet.decode(frame.payload)
            _decode_ipv4_transport(packet, errors)
        elif kind is EtherType.IPV6:
            packet.ipv6 = Ipv6Packet.decode(frame.payload)
            _decode_ipv6_transport(packet, errors)
    except ValueError as exc:
        packet.decode_error = kind.name.lower()
        if errors is not None:
            errors.record(timestamp, data, kind.name.lower(), str(exc))
    return packet


def decode_records(records, errors: Optional[DecodeErrorLog] = None) -> "list[DecodedPacket]":
    """Decode an ordered batch of ``(timestamp, frame_bytes)`` records.

    This is the unit of work the capture layer hands to worker threads
    when a large backlog is decoded in parallel chunks; decoding is pure
    (the shared ``errors`` quarantine log is internally locked), so
    chunk results concatenate back into capture order.
    """
    return [decode_frame(data, timestamp, errors) for timestamp, data in records]


def _transport_error(
    packet: DecodedPacket, errors: Optional[DecodeErrorLog], layer: str, exc: ValueError
) -> None:
    packet.decode_error = layer
    if errors is not None:
        errors.record(packet.timestamp, packet.frame.payload, layer, str(exc))


def _decode_ipv4_transport(packet: DecodedPacket, errors: Optional[DecodeErrorLog] = None) -> None:
    ip = packet.ipv4
    try:
        if ip.protocol == IpProtocol.UDP:
            packet.udp = UdpDatagram.decode(ip.payload)
        elif ip.protocol == IpProtocol.TCP:
            packet.tcp = TcpSegment.decode(ip.payload)
        elif ip.protocol == IpProtocol.ICMP:
            packet.icmp = IcmpMessage.decode(ip.payload)
        elif ip.protocol == IpProtocol.IGMP:
            packet.igmp = IgmpMessage.decode(ip.payload)
    except ValueError as exc:
        _transport_error(packet, errors, f"ipv4-proto-{ip.protocol}", exc)


def _decode_ipv6_transport(packet: DecodedPacket, errors: Optional[DecodeErrorLog] = None) -> None:
    ip = packet.ipv6
    try:
        if ip.next_header == IpProtocol.UDP:
            packet.udp = UdpDatagram.decode(ip.payload)
        elif ip.next_header == IpProtocol.TCP:
            packet.tcp = TcpSegment.decode(ip.payload)
        elif ip.next_header == IpProtocol.IPV6_ICMP:
            packet.icmpv6 = Icmpv6Message.decode(ip.payload)
    except ValueError as exc:
        _transport_error(packet, errors, f"ipv6-proto-{ip.next_header}", exc)


#: Cheap port → protocol labels for telemetry (not classification —
#: the classify package owns real labels; this is a constant-time tag
#: applied to every frame on the hot delivery path).
_UDP_PORT_LABELS = {
    53: "dns", 67: "dhcp", 68: "dhcp", 123: "ntp", 137: "netbios",
    546: "dhcpv6", 547: "dhcpv6", 1900: "ssdp", 5353: "mdns",
    5540: "matter", 5683: "coap", 6666: "tuyalp", 6667: "tuyalp",
    9999: "tplink-shp",
}
_TCP_PORT_LABELS = {
    80: "http", 8080: "http", 554: "rtsp", 443: "tls", 8443: "tls",
    8883: "tls", 9999: "tplink-shp", 23: "telnet",
}


def quick_protocol(packet: DecodedPacket) -> str:
    """A constant-time protocol tag for per-protocol telemetry counters."""
    if packet.arp is not None:
        return "arp"
    if packet.eapol is not None:
        return "eapol"
    if packet.icmp is not None:
        return "icmp"
    if packet.icmpv6 is not None:
        return "icmpv6"
    if packet.igmp is not None:
        return "igmp"
    if packet.udp is not None:
        label = _UDP_PORT_LABELS.get(packet.udp.dst_port)
        if label is None:
            label = _UDP_PORT_LABELS.get(packet.udp.src_port, "udp-other")
        return label
    if packet.tcp is not None:
        label = _TCP_PORT_LABELS.get(packet.tcp.dst_port)
        if label is None:
            label = _TCP_PORT_LABELS.get(packet.tcp.src_port, "tcp-other")
        return label
    if packet.ipv4 is not None or packet.ipv6 is not None:
        return "ip-other"
    return "l2-other"
