"""UDP datagram codec (RFC 768) with pseudo-header checksums."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.ipv4 import IpProtocol, pseudo_header_checksum
from repro.net.guard import guarded_decode

_HEADER = struct.Struct("!HHHH")


@dataclass
class UdpDatagram:
    """A decoded UDP datagram."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    def __post_init__(self):
        for name, port in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")

    def encode(self, src_ip: str = None, dst_ip: str = None) -> bytes:
        """Encode the datagram.

        When ``src_ip``/``dst_ip`` are given, a real RFC 768 checksum over
        the IPv4 pseudo-header is computed; otherwise the checksum is 0
        (legal for UDP over IPv4, and common on embedded stacks).
        """
        length = _HEADER.size + len(self.payload)
        segment = _HEADER.pack(self.src_port, self.dst_port, length, 0) + self.payload
        if src_ip is None or dst_ip is None:
            return segment
        checksum = pseudo_header_checksum(src_ip, dst_ip, IpProtocol.UDP, segment)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted as all ones
        return segment[:6] + struct.pack("!H", checksum) + segment[8:]

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "UdpDatagram":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated UDP datagram: {len(data)} bytes")
        src_port, dst_port, length, _checksum = _HEADER.unpack_from(data)
        if length < _HEADER.size:
            raise ValueError(f"bad UDP length field: {length}")
        payload = data[_HEADER.size:length]
        return cls(src_port=src_port, dst_port=dst_port, payload=payload)

    def __len__(self) -> int:
        return _HEADER.size + len(self.payload)
