"""RFC 6146-style 5-tuple flow assembly.

Appendix C.2 defines UDP and TCP flows as "a chronologically ordered set
of TCP segments/UDP datagrams with the same 5-tuple combination (source
IP, source port, destination IP, destination port, transport protocol)".
Flows are the unit of classification for the nDPI/tshark comparison and
of the periodicity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.decode import DecodedPacket


@dataclass(frozen=True, order=True)
class FlowKey:
    """The directed 5-tuple identifying a flow."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    transport: str  # "udp" or "tcp"

    def reversed(self) -> "FlowKey":
        return FlowKey(self.dst_ip, self.dst_port, self.src_ip, self.src_port, self.transport)

    def bidirectional(self) -> "FlowKey":
        """The canonical (order-independent) form of this key."""
        return min(self, self.reversed())


@dataclass
class Flow:
    """A chronologically ordered set of packets sharing one 5-tuple."""

    key: FlowKey
    packets: List[DecodedPacket] = field(default_factory=list)

    def add(self, packet: DecodedPacket) -> None:
        self.packets.append(packet)

    @property
    def first_seen(self) -> float:
        return self.packets[0].timestamp if self.packets else 0.0

    @property
    def last_seen(self) -> float:
        return self.packets[-1].timestamp if self.packets else 0.0

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen

    @property
    def packet_count(self) -> int:
        return len(self.packets)

    @property
    def byte_count(self) -> int:
        return sum(len(pkt.frame) for pkt in self.packets)

    @property
    def payload(self) -> bytes:
        """Reassembled application payload in arrival order."""
        return b"".join(pkt.app_payload for pkt in self.packets)

    def timestamps(self) -> List[float]:
        return [pkt.timestamp for pkt in self.packets]

    def first_payload_packet(self) -> Optional[DecodedPacket]:
        for pkt in self.packets:
            if pkt.app_payload:
                return pkt
        return None


class FlowTable:
    """Incremental flow assembler over decoded packets.

    Packets without a transport layer (ARP, ICMP, EAPOL, ...) are kept
    separately in :attr:`non_flow_packets` — the 7.5% of "mostly layer 3
    traffic" neither classifier labels in Appendix C.2.
    """

    def __init__(self):
        self._flows: Dict[FlowKey, Flow] = {}
        self.non_flow_packets: List[DecodedPacket] = []

    @classmethod
    def from_packets(cls, packets: Iterable[DecodedPacket]) -> "FlowTable":
        """Assemble a table from an iterable of decoded packets."""
        table = cls()
        for packet in packets:
            table.add(packet)
        return table

    @classmethod
    def from_table(cls, table: "PacketTable") -> "FlowTable":
        """Assemble flows straight from a columnar packet table.

        Grouping reads the transport/IP/port columns only; each flow's
        ``packets`` is a :class:`~repro.net.columnar.LazyPackets` view,
        so layer objects materialize only when a consumer (payload
        reassembly, classification) actually touches them.
        """
        from repro.net.columnar import TRANSPORT_UDP, LazyPackets

        flows = cls()
        transport = table.transport
        src_ip, dst_ip = table.src_ip, table.dst_ip
        src_port, dst_port = table.src_port, table.dst_port
        ips = table.ip_strings
        groups: Dict[FlowKey, List[int]] = {}
        non_flow: List[int] = []
        for rid in range(len(table)):
            code = transport[rid]
            sid = src_ip[rid]
            if not code or sid < 0:
                non_flow.append(rid)
                continue
            key = FlowKey(
                src_ip=ips[sid],
                src_port=src_port[rid],
                dst_ip=ips[dst_ip[rid]],
                dst_port=dst_port[rid],
                transport="udp" if code == TRANSPORT_UDP else "tcp",
            )
            rids = groups.get(key)
            if rids is None:
                groups[key] = [rid]
            else:
                rids.append(rid)
        for key, rids in groups.items():
            flows._flows[key] = Flow(key=key, packets=LazyPackets(table, rids))
        flows.non_flow_packets = LazyPackets(table, non_flow)
        return flows

    def add(self, packet: DecodedPacket) -> Optional[Flow]:
        key = flow_key_of(packet)
        if key is None:
            self.non_flow_packets.append(packet)
            return None
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(key=key)
            self._flows[key] = flow
        flow.add(packet)
        return flow

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(self._flows.values())

    @property
    def flows(self) -> List[Flow]:
        return list(self._flows.values())

    def get(self, key: FlowKey) -> Optional[Flow]:
        return self._flows.get(key)

    def bidirectional_flows(self) -> Dict[FlowKey, List[Flow]]:
        """Group directed flows into conversations by canonical key."""
        grouped: Dict[FlowKey, List[Flow]] = {}
        for flow in self._flows.values():
            grouped.setdefault(flow.key.bidirectional(), []).append(flow)
        return grouped


def flow_key_of(packet: DecodedPacket) -> Optional[FlowKey]:
    """The directed 5-tuple of a packet, or None for non-transport traffic."""
    if packet.transport is None or packet.src_ip is None:
        return None
    return FlowKey(
        src_ip=packet.src_ip,
        src_port=packet.src_port,
        dst_ip=packet.dst_ip,
        dst_port=packet.dst_port,
        transport=packet.transport,
    )


def assemble_flows(packets: Iterable[DecodedPacket]) -> FlowTable:
    """Assemble an iterable of decoded packets into a flow table."""
    return FlowTable.from_packets(packets)
