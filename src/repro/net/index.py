"""Decode-once capture indexing: one pass, many analyses.

The paper's post-processing (§4–§6) is a stack of independent analyses
over the same AP capture.  Naively each analysis re-walks every decoded
packet, re-stringifies MAC addresses, re-derives ports/flags, and
re-classifies payloads.  :class:`CaptureIndex` does that work exactly
once over a columnar :class:`~repro.net.columnar.PacketTable`:

* the table's parallel columns (timestamps, interned MAC/IP/protocol
  ids, transport, ports, flags) replace per-packet property chasing —
  analyses on hot loops bind columns to locals and index by row id;
* per-source-MAC buckets (``by_src_mac``) — the §3.1 per-MAC split;
* per-protocol buckets (``by_protocol``) keyed by the quick tag;
* chronological filtered views (``arp``, ``udp``, ``tcp_payload``,
  ``transport_unicast``, ``transport_multicast``) are zero-copy
  :class:`RowIdView` slices — row-id arrays over the shared table, not
  lists of wrapper objects — preserving capture order so analyses that
  append examples or create groups in first-seen order produce results
  byte-identical to a full scan;
* a lazily assembled :class:`~repro.net.flows.FlowTable` (built column
  -wise via :meth:`FlowTable.from_table`) shared by flow consumers;
* lazily memoized per-row classifier labels (the corrected
  nDPI+manual labels), so the classification pass runs once instead of
  once per analysis.

Every analysis entry point under ``repro.core`` and
``repro.classify.crossval`` accepts a plain iterable of
``DecodedPacket`` (back-compat: the table wraps them and keeps the
original objects), a :class:`PacketTable`, or a prebuilt
``CaptureIndex`` (the fast path ``StudyPipeline`` uses via
``ApCapture.index()``).  :class:`PacketRow` remains as a lightweight
per-row *proxy* for callers that want object-style access; the hot
paths never allocate one.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Dict, Iterable, List, Optional, Union

from repro.net.columnar import (
    F_ARP,
    F_BROADCAST,
    F_TCP_PAYLOAD,
    F_UDP,
    F_UNICAST,
    PacketTable,
)
from repro.net.decode import DecodedPacket
from repro.net.flows import FlowTable

#: Sentinel distinguishing "label not computed yet" from "classifier
#: returned None" (a legitimate outcome).
_UNSET = object()

_TRANSPORT_NAMES = (None, "udp", "tcp")


class PacketRow:
    """A row-id proxy presenting one table row object-style.

    Everything is a property over the parent table's columns; nothing
    is copied at construction, and ``packet`` materializes the full
    ``DecodedPacket`` lazily (memoized by the table).  Hot loops skip
    the proxy entirely and read columns by row id.
    """

    __slots__ = ("table", "rid")

    def __init__(self, table: PacketTable, rid: int):
        self.table = table
        self.rid = rid

    @property
    def packet(self) -> DecodedPacket:
        return self.table.packet(self.rid)

    @property
    def timestamp(self) -> float:
        return self.table.timestamps[self.rid]

    @property
    def src(self) -> str:
        return self.table.mac_strings[self.table.src_mac[self.rid]]

    @property
    def dst(self) -> str:
        return self.table.mac_strings[self.table.dst_mac[self.rid]]

    @property
    def protocol(self) -> str:
        return self.table.protocol_tags[self.table.protocol[self.rid]]

    @property
    def transport(self) -> Optional[str]:
        return _TRANSPORT_NAMES[self.table.transport[self.rid]]

    @property
    def src_ip(self) -> Optional[str]:
        iid = self.table.src_ip[self.rid]
        return None if iid < 0 else self.table.ip_strings[iid]

    @property
    def dst_ip(self) -> Optional[str]:
        iid = self.table.dst_ip[self.rid]
        return None if iid < 0 else self.table.ip_strings[iid]

    @property
    def src_port(self) -> Optional[int]:
        port = self.table.src_port[self.rid]
        return None if port < 0 else port

    @property
    def dst_port(self) -> Optional[int]:
        port = self.table.dst_port[self.rid]
        return None if port < 0 else port

    @property
    def is_unicast(self) -> bool:
        return bool(self.table.flags[self.rid] & F_UNICAST)

    @property
    def is_broadcast(self) -> bool:
        return bool(self.table.flags[self.rid] & F_BROADCAST)

    def __eq__(self, other) -> bool:
        if isinstance(other, PacketRow):
            return self.table is other.table and self.rid == other.rid
        return NotImplemented

    __hash__ = None  # mutable-ish view; never used as a dict key

    def __repr__(self) -> str:  # debugging aid, not used on hot paths
        return (f"PacketRow(t={self.timestamp:.3f}, {self.src}->{self.dst}, "
                f"{self.protocol})")


class RowIdView(Sequence):
    """A zero-copy view over table rows: just row ids, no wrappers.

    Iteration and indexing yield :class:`PacketRow` proxies on demand;
    hot loops read :attr:`rids` directly and index the table's columns.
    Compares equal to other views over the same rows and to plain
    lists/tuples of equal rows.
    """

    __slots__ = ("table", "rids")

    def __init__(self, table: PacketTable, rids):
        self.table = table
        #: Row ids in capture (chronological) order — a ``range`` for
        #: the full-table view, a list for filtered views.
        self.rids = rids

    def __len__(self) -> int:
        return len(self.rids)

    def __getitem__(self, item):
        if isinstance(item, slice):
            table = self.table
            return [PacketRow(table, rid) for rid in self.rids[item]]
        return PacketRow(self.table, self.rids[item])

    def __iter__(self):
        table = self.table
        for rid in self.rids:
            yield PacketRow(table, rid)

    def __eq__(self, other) -> bool:
        if isinstance(other, RowIdView):
            return self.table is other.table and list(self.rids) == list(other.rids)
        if isinstance(other, (list, tuple)):
            return len(self.rids) == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    __hash__ = None  # like a list

    def __repr__(self) -> str:
        return f"RowIdView({len(self.rids)} rows)"


class CaptureIndex:
    """A single-pass index over one capture table.

    Chronological order is the capture order; every bucket and filtered
    view preserves it, which is what makes index-consuming analyses
    byte-identical to their full-scan equivalents.  The build pass
    reads only the integer columns — no packet objects, no strings
    beyond the interned pools.
    """

    def __init__(self, packets: Union[PacketTable, Iterable[DecodedPacket]],
                 classifier=None):
        if isinstance(packets, PacketTable):
            table = packets
        else:
            table = PacketTable.from_packets(packets)
        self.table = table
        n = len(table)
        #: Row count at build time — the shared table may grow after
        #: this index was built; the views cover exactly these rows.
        self._row_count = n
        #: Full-capture view (zero-copy: backed by a ``range``).
        self.rows = RowIdView(table, range(n))
        #: src MAC string -> chronological rows sent by that MAC.
        self.by_src_mac: Dict[str, RowIdView] = {}
        #: quick_protocol tag -> chronological rows.
        self.by_protocol: Dict[str, RowIdView] = {}
        self._classifier = classifier
        self._flows: Optional[FlowTable] = None
        self._packets: Optional[List[DecodedPacket]] = None
        self._labels: List = [_UNSET] * n

        flags_col = table.flags
        src_col = table.src_mac
        proto_col = table.protocol
        trans_col = table.transport
        src_buckets: Dict[int, List[int]] = {}
        proto_buckets: Dict[int, List[int]] = {}
        arp: List[int] = []
        udp: List[int] = []
        tcp_payload: List[int] = []
        unicast: List[int] = []
        multicast: List[int] = []
        for rid in range(n):
            bucket = src_buckets.get(src_col[rid])
            if bucket is None:
                bucket = src_buckets[src_col[rid]] = []
            bucket.append(rid)
            bucket = proto_buckets.get(proto_col[rid])
            if bucket is None:
                bucket = proto_buckets[proto_col[rid]] = []
            bucket.append(rid)
            flags = flags_col[rid]
            if flags & F_ARP:
                arp.append(rid)
            if flags & F_UDP:
                udp.append(rid)
            elif flags & F_TCP_PAYLOAD:
                tcp_payload.append(rid)
            if trans_col[rid]:
                if flags & F_UNICAST:
                    unicast.append(rid)
                else:
                    multicast.append(rid)
        mac_strings = table.mac_strings
        for mid, rids in src_buckets.items():
            self.by_src_mac[mac_strings[mid]] = RowIdView(table, rids)
        tags = table.protocol_tags
        for tid, rids in proto_buckets.items():
            self.by_protocol[tags[tid]] = RowIdView(table, rids)
        #: Chronological filtered views (see module docstring).
        self.arp = RowIdView(table, arp)
        self.udp = RowIdView(table, udp)
        self.tcp_payload = RowIdView(table, tcp_payload)
        self.transport_unicast = RowIdView(table, unicast)
        self.transport_multicast = RowIdView(table, multicast)

    # -- construction -------------------------------------------------------------

    @classmethod
    def ensure(cls, packets: Union["CaptureIndex", PacketTable,
                                   Iterable[DecodedPacket]]) -> "CaptureIndex":
        """Pass a prebuilt index through; wrap a table or raw packets."""
        if isinstance(packets, cls):
            return packets
        return cls(packets)

    # -- size ---------------------------------------------------------------------

    @property
    def packet_count(self) -> int:
        return self._row_count

    def __len__(self) -> int:
        return self._row_count

    # -- materialized packets (back-compat) -----------------------------------------

    @property
    def packets(self) -> List[DecodedPacket]:
        """Every packet as a full ``DecodedPacket`` (materialized once).

        Raw-list consumers only; the analyses read columns instead.
        """
        if self._packets is None:
            self._packets = self.table.packets()
        return self._packets

    # -- classification (memoized) --------------------------------------------------

    @property
    def classifier(self):
        """The corrected classifier whose labels this index memoizes."""
        if self._classifier is None:
            from repro.classify.rules import CorrectedClassifier

            self._classifier = CorrectedClassifier()
        return self._classifier

    def label_at(self, rid: int, classifier=None):
        """The corrected-classifier label of one row id, computed once.

        A caller-supplied ``classifier`` different from the index's own
        bypasses the memo (its labels would not be comparable), exactly
        matching the legacy per-analysis behaviour.
        """
        if classifier is not None and classifier is not self._classifier:
            return classifier.classify_packet(self.table.packet(rid))
        label = self._labels[rid]
        if label is _UNSET:
            # Classification is pure, so a concurrent duplicate compute
            # writes the same value — benign under the GIL.
            label = self._labels[rid] = self.classifier.classify_packet(
                self.table.packet(rid))
        return label

    def label_of(self, row: PacketRow, classifier=None):
        """The corrected-classifier label of one row, computed once."""
        if classifier is not None and classifier is not self._classifier:
            return classifier.classify_packet(row.packet)
        return self.label_at(row.rid)

    def ensure_labels(self) -> None:
        """Classify every row eagerly (one pass, main thread).

        ``StudyPipeline`` calls this before fanning analyses out to a
        thread pool so workers read memoized labels instead of racing
        to compute them.
        """
        classify = self.classifier.classify_packet
        labels = self._labels
        packet = self.table.packet
        for rid in range(len(labels)):
            if labels[rid] is _UNSET:
                labels[rid] = classify(packet(rid))

    # -- flows (lazy, assembled once) ------------------------------------------------

    @property
    def flows(self) -> FlowTable:
        """The capture's flow table, assembled on first use and shared."""
        if self._flows is None:
            self._flows = FlowTable.from_table(self.table)
        return self._flows

    # -- convenience queries ----------------------------------------------------------

    def rows_from(self, mac: str) -> Union[RowIdView, List[PacketRow]]:
        """Chronological rows whose source MAC is ``mac`` (string form)."""
        view = self.by_src_mac.get(mac)
        return [] if view is None else view

    def protocol_counts(self) -> Dict[str, int]:
        """Packet counts per quick-protocol tag (telemetry/benchmarks)."""
        return {tag: len(view) for tag, view in self.by_protocol.items()}
