"""Decode-once capture indexing: one pass, many analyses.

The paper's post-processing (§4–§6) is a stack of independent analyses
over the same AP capture.  Naively each analysis re-walks every decoded
packet, re-stringifies MAC addresses, re-derives ports/flags, and
re-classifies payloads.  :class:`CaptureIndex` does that work exactly
once: a single chronological pass over the decoded packets produces

* :class:`PacketRow` derived columns (src/dst MAC strings, IPs, ports,
  transport, unicast/broadcast flags, a :func:`~repro.net.decode.quick_protocol`
  tag) so analyses stop re-evaluating ``DecodedPacket`` properties;
* per-source-MAC buckets (``by_src_mac``) — the §3.1 per-MAC split;
* per-protocol buckets (``by_protocol``) keyed by the quick tag;
* chronological filtered views (``arp``, ``udp``, ``tcp_payload``,
  ``transport_unicast``, ``transport_multicast``) that preserve capture
  order, so analyses that append examples or create groups in
  first-seen order produce results byte-identical to a full scan;
* a lazily assembled :class:`~repro.net.flows.FlowTable` (absorbing
  :func:`~repro.net.flows.assemble_flows`) shared by flow-level
  consumers;
* lazily memoized per-packet classifier labels (the corrected
  nDPI+manual labels), so the classification pass runs once instead of
  once per analysis.

Every analysis entry point under ``repro.core`` and
``repro.classify.crossval`` accepts either a plain iterable of
``DecodedPacket`` (back-compat: an index is built on the fly) or a
prebuilt ``CaptureIndex`` (the fast path ``StudyPipeline`` uses via
``ApCapture.index()``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.net.decode import DecodedPacket, quick_protocol
from repro.net.flows import FlowTable

#: Sentinel distinguishing "label not computed yet" from "classifier
#: returned None" (a legitimate outcome).
_UNSET = object()


class PacketRow:
    """One decoded packet plus its precomputed derived columns.

    ``DecodedPacket`` exposes everything as properties that chase the
    layer chain on every access; a row evaluates each exactly once at
    index-build time.  ``label`` is filled lazily by
    :meth:`CaptureIndex.label_of` (most rows of a capture get labelled
    by at least one analysis, but raw-list callers that never classify
    should not pay for it).
    """

    __slots__ = (
        "packet", "timestamp", "src", "dst", "protocol", "transport",
        "src_ip", "dst_ip", "src_port", "dst_port",
        "is_unicast", "is_broadcast", "_label",
    )

    def __init__(self, packet: DecodedPacket):
        frame = packet.frame
        self.packet = packet
        self.timestamp = packet.timestamp
        self.src = str(frame.src)
        self.dst = str(frame.dst)
        self.protocol = quick_protocol(packet)
        self.transport = packet.transport
        self.src_ip = packet.src_ip
        self.dst_ip = packet.dst_ip
        self.src_port = packet.src_port
        self.dst_port = packet.dst_port
        self.is_unicast = packet.is_unicast
        self.is_broadcast = packet.is_broadcast
        self._label = _UNSET

    def __repr__(self) -> str:  # debugging aid, not used on hot paths
        return (f"PacketRow(t={self.timestamp:.3f}, {self.src}->{self.dst}, "
                f"{self.protocol})")


class CaptureIndex:
    """A single-pass index over one decoded capture.

    Chronological order is the capture order; every bucket and filtered
    view preserves it, which is what makes index-consuming analyses
    byte-identical to their full-scan equivalents.
    """

    def __init__(self, packets: Iterable[DecodedPacket], classifier=None):
        self.packets: List[DecodedPacket] = list(packets)
        self.rows: List[PacketRow] = []
        #: src MAC string -> chronological rows sent by that MAC.
        self.by_src_mac: Dict[str, List[PacketRow]] = {}
        #: quick_protocol tag -> chronological rows.
        self.by_protocol: Dict[str, List[PacketRow]] = {}
        #: Chronological filtered views (see module docstring).
        self.arp: List[PacketRow] = []
        self.udp: List[PacketRow] = []
        self.tcp_payload: List[PacketRow] = []
        self.transport_unicast: List[PacketRow] = []
        self.transport_multicast: List[PacketRow] = []
        self._classifier = classifier
        self._flows: Optional[FlowTable] = None

        rows = self.rows
        by_src = self.by_src_mac
        by_proto = self.by_protocol
        for packet in self.packets:
            row = PacketRow(packet)
            rows.append(row)
            bucket = by_src.get(row.src)
            if bucket is None:
                bucket = by_src[row.src] = []
            bucket.append(row)
            bucket = by_proto.get(row.protocol)
            if bucket is None:
                bucket = by_proto[row.protocol] = []
            bucket.append(row)
            if packet.arp is not None:
                self.arp.append(row)
            if packet.udp is not None:
                self.udp.append(row)
            elif packet.tcp is not None and packet.tcp.payload:
                self.tcp_payload.append(row)
            if row.transport is not None:
                if row.is_unicast:
                    self.transport_unicast.append(row)
                else:
                    self.transport_multicast.append(row)

    # -- construction -------------------------------------------------------------

    @classmethod
    def ensure(cls, packets: Union["CaptureIndex", Iterable[DecodedPacket]]) -> "CaptureIndex":
        """Pass a prebuilt index through; wrap a raw packet iterable."""
        if isinstance(packets, cls):
            return packets
        return cls(packets)

    # -- size ---------------------------------------------------------------------

    @property
    def packet_count(self) -> int:
        return len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    # -- classification (memoized) --------------------------------------------------

    @property
    def classifier(self):
        """The corrected classifier whose labels this index memoizes."""
        if self._classifier is None:
            from repro.classify.rules import CorrectedClassifier

            self._classifier = CorrectedClassifier()
        return self._classifier

    def label_of(self, row: PacketRow, classifier=None):
        """The corrected-classifier label of one row, computed once.

        A caller-supplied ``classifier`` different from the index's own
        bypasses the memo (its labels would not be comparable), exactly
        matching the legacy per-analysis behaviour.
        """
        if classifier is not None and classifier is not self._classifier:
            return classifier.classify_packet(row.packet)
        label = row._label
        if label is _UNSET:
            # Classification is pure, so a concurrent duplicate compute
            # writes the same value — benign under the GIL.
            label = row._label = self.classifier.classify_packet(row.packet)
        return label

    def ensure_labels(self) -> None:
        """Classify every row eagerly (one pass, main thread).

        ``StudyPipeline`` calls this before fanning analyses out to a
        thread pool so workers read memoized labels instead of racing
        to compute them.
        """
        classify = self.classifier.classify_packet
        for row in self.rows:
            if row._label is _UNSET:
                row._label = classify(row.packet)

    # -- flows (lazy, assembled once) ------------------------------------------------

    @property
    def flows(self) -> FlowTable:
        """The capture's flow table, assembled on first use and shared."""
        if self._flows is None:
            self._flows = FlowTable.from_packets(self.packets)
        return self._flows

    # -- convenience queries ----------------------------------------------------------

    def rows_from(self, mac: str) -> List[PacketRow]:
        """Chronological rows whose source MAC is ``mac`` (string form)."""
        return self.by_src_mac.get(mac, [])

    def protocol_counts(self) -> Dict[str, int]:
        """Packet counts per quick-protocol tag (telemetry/benchmarks)."""
        return {tag: len(rows) for tag, rows in self.by_protocol.items()}
