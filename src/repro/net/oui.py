"""OUI (MAC-prefix) registry mapping vendors to address blocks.

IoT Inspector infers device vendors from "the first three octets of a
MAC address" (§3.3, Appendix E), and the §6.3 identifier extraction
validates candidate MAC addresses against each device's known OUI.
This registry is the offline stand-in for the IEEE OUI database; some
prefixes are the real registered ones (Philips Hue 00:17:88 and Amcrest
9c:8e:cd appear verbatim in the paper's Table 5), the rest are
representative allocations fixed per vendor for determinism.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from repro.net.mac import MacAddress

#: vendor -> list of OUI prefixes ("aa:bb:cc", lowercase).
VENDOR_OUIS: Dict[str, List[str]] = {
    "Amazon": ["74:c2:46", "f0:27:2d", "44:65:0d", "fc:a1:83"],
    "Google": ["54:60:09", "f4:f5:d8", "1c:f2:9a", "30:fd:38"],
    "Apple": ["f0:18:98", "a8:51:ab", "90:dd:5d"],
    "Philips": ["00:17:88"],
    "TP-Link": ["50:c7:bf", "b0:be:76"],
    "Tuya": ["d4:a6:51", "68:57:2d"],
    "Samsung": ["8c:71:f8", "64:1c:ae"],
    "SmartThings": ["24:fd:5b"],
    "LG": ["cc:2d:8c"],
    "Roku": ["d8:31:34", "b0:a7:37"],
    "Amcrest": ["9c:8e:cd"],
    "Ring": ["34:3e:a4", "64:9a:63"],
    "Wyze": ["2c:aa:8e"],
    "Arlo": ["3c:37:86"],
    "Blink": ["f4:b8:5e"],
    "D-Link": ["b0:c5:54"],
    "Belkin": ["c4:41:1e"],
    "Netgear": ["a0:40:a0"],
    "Sonos": ["48:a6:b8"],
    "Nintendo": ["98:b6:e9"],
    "Withings": ["00:24:e4"],
    "Xiaomi": ["64:90:c1"],
    "IKEA": ["44:91:60"],
    "Meross": ["48:e1:e9"],
    "Sengled": ["b0:ce:18"],
    "SwitchBot": ["c8:47:8c"],
    "Wiz": ["a8:bb:50"],
    "Yeelight": ["78:11:dc"],
    "GE": ["c8:aa:cc"],
    "Anova": ["24:7d:4d"],
    "Behmor": ["60:01:94"],
    "Blueair": ["70:4a:0e"],
    "Smarter": ["5c:31:3e"],
    "MagicHome": ["84:f3:eb"],
    "Aqara": ["54:ef:44"],
    "TiVo": ["00:11:d9"],
    "Vizio": ["c4:e0:32"],
    "Keyco": ["ac:23:3f"],
    "Oxylink": ["10:52:1c"],
    "Renpho": ["cc:64:a6"],
    "Meta": ["88:25:08"],
    "ICSee": ["9c:a5:25"],
    "Lefun": ["38:01:46"],
    "Microseven": ["00:92:58"],
    "Ubell": ["ea:0b:cc"],
    "Wansview": ["78:a3:51"],
    "Yi": ["0c:8c:24"],
    "Echo-Aux": ["0c:47:c9"],
    "Lifx": ["d0:73:d5"],
}


class OuiRegistry:
    """Bidirectional OUI <-> vendor lookup and deterministic MAC allocation."""

    def __init__(self, table: Dict[str, List[str]] = None):
        self._vendor_to_ouis: Dict[str, List[str]] = dict(table or VENDOR_OUIS)
        self._oui_to_vendor: Dict[str, str] = {}
        for vendor, ouis in self._vendor_to_ouis.items():
            for oui in ouis:
                self._oui_to_vendor[oui.lower()] = vendor

    def vendor_of(self, mac) -> Optional[str]:
        """Look up the vendor for a MAC address (or OUI string)."""
        if isinstance(mac, str) and len(mac) == 8 and mac.count(":") == 2:
            return self._oui_to_vendor.get(mac.lower())
        return self._oui_to_vendor.get(MacAddress(mac).oui)

    def ouis_of(self, vendor: str) -> List[str]:
        return list(self._vendor_to_ouis.get(vendor, []))

    def knows_vendor(self, vendor: str) -> bool:
        return vendor in self._vendor_to_ouis

    @property
    def vendors(self) -> List[str]:
        return sorted(self._vendor_to_ouis)

    def allocate_mac(self, vendor: str, rng: random.Random) -> MacAddress:
        """Allocate a random unicast MAC within one of the vendor's OUIs."""
        ouis = self._vendor_to_ouis.get(vendor)
        if not ouis:
            # Unknown vendor: allocate a locally-administered address.
            prefix = bytes([0x02, rng.randrange(256), rng.randrange(256)])
        else:
            prefix = bytes(int(part, 16) for part in rng.choice(ouis).split(":"))
        suffix = bytes(rng.randrange(256) for _ in range(3))
        return MacAddress(prefix + suffix)

    def register(self, vendor: str, oui: str) -> None:
        oui = oui.lower()
        self._vendor_to_ouis.setdefault(vendor, []).append(oui)
        self._oui_to_vendor[oui] = vendor


DEFAULT_OUI_REGISTRY = OuiRegistry()
