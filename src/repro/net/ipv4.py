"""IPv4 packet codec with real header checksums.

The classifier (§3.5) extracts the ``protocol`` field from IP headers to
identify transport protocols, and the Appendix C.1 filter keeps packets
whose source *and* destination fall in RFC 1918 space.
"""

from __future__ import annotations

import enum
import ipaddress
import struct
from dataclasses import dataclass, field
from repro.net.guard import guarded_decode


class IpProtocol(enum.IntEnum):
    """IP protocol numbers observed across the study."""

    ICMP = 1
    IGMP = 2
    TCP = 6
    UDP = 17
    IPV6_ICMP = 58

    @classmethod
    def name_of(cls, value: int) -> str:
        try:
            return cls(value).name
        except ValueError:
            return f"IPPROTO_{value}"


def internet_checksum(data: bytes) -> int:
    """RFC 1071 16-bit one's-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


_HEADER = struct.Struct("!BBHHHBBH4s4s")


@dataclass
class Ipv4Packet:
    """A decoded IPv4 packet (no options support; IHL is always 5)."""

    src: str
    dst: str
    protocol: int
    payload: bytes = b""
    ttl: int = 64
    identification: int = 0
    dscp: int = 0

    def __post_init__(self):
        self.src = str(ipaddress.IPv4Address(self.src))
        self.dst = str(ipaddress.IPv4Address(self.dst))

    @property
    def is_multicast(self) -> bool:
        return ipaddress.IPv4Address(self.dst).is_multicast

    @property
    def is_broadcast(self) -> bool:
        return self.dst == "255.255.255.255" or self.dst.endswith(".255")

    @property
    def is_local(self) -> bool:
        """True when both endpoints are in private (RFC 1918) space."""
        return (
            ipaddress.IPv4Address(self.src).is_private
            and ipaddress.IPv4Address(self.dst).is_private
        )

    def encode(self) -> bytes:
        total_length = _HEADER.size + len(self.payload)
        header_wo_checksum = _HEADER.pack(
            (4 << 4) | 5,  # version 4, IHL 5
            self.dscp << 2,
            total_length,
            self.identification,
            0,  # flags/fragment offset: never fragmented in our LAN
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            ipaddress.IPv4Address(self.src).packed,
            ipaddress.IPv4Address(self.dst).packed,
        )
        checksum = internet_checksum(header_wo_checksum)
        header = header_wo_checksum[:10] + struct.pack("!H", checksum) + header_wo_checksum[12:]
        return header + self.payload

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes, verify_checksum: bool = False) -> "Ipv4Packet":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated IPv4 packet: {len(data)} bytes")
        (ver_ihl, tos, total_length, ident, _flags, ttl, proto, checksum, src, dst) = (
            _HEADER.unpack_from(data)
        )
        version = ver_ihl >> 4
        ihl = ver_ihl & 0x0F
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        header_len = ihl * 4
        if header_len < 20 or len(data) < header_len:
            raise ValueError(f"bad IPv4 header length: {header_len}")
        if verify_checksum and internet_checksum(data[:header_len]) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        payload = data[header_len:total_length] if total_length else data[header_len:]
        return cls(
            src=str(ipaddress.IPv4Address(src)),
            dst=str(ipaddress.IPv4Address(dst)),
            protocol=proto,
            payload=payload,
            ttl=ttl,
            identification=ident,
            dscp=tos >> 2,
        )


def pseudo_header_checksum(src: str, dst: str, protocol: int, segment: bytes) -> int:
    """Transport checksum over the IPv4 pseudo-header + segment (RFC 793/768)."""
    pseudo = (
        ipaddress.IPv4Address(src).packed
        + ipaddress.IPv4Address(dst).packed
        + struct.pack("!BBH", 0, protocol, len(segment))
    )
    return internet_checksum(pseudo + segment)
