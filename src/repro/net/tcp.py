"""TCP segment codec (RFC 793).

Used both by the simulator's lightweight connection handshakes and by
the port scanner, which sends SYNs and interprets SYN/ACK vs. RST
exactly as nmap's TCP SYN scan does (§3.1).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.net.ipv4 import IpProtocol, pseudo_header_checksum
from repro.net.guard import guarded_decode


class TcpFlags(enum.IntFlag):
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


_HEADER = struct.Struct("!HHIIBBHHH")


@dataclass
class TcpSegment:
    """A decoded TCP segment (no options support; data offset is 5)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TcpFlags = TcpFlags(0)
    window: int = 65535
    payload: bytes = b""

    def __post_init__(self):
        self.flags = TcpFlags(self.flags)
        for name, port in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and not (self.flags & TcpFlags.ACK)

    @property
    def is_synack(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and bool(self.flags & TcpFlags.ACK)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TcpFlags.RST)

    def encode(self, src_ip: str = None, dst_ip: str = None) -> bytes:
        segment = (
            _HEADER.pack(
                self.src_port,
                self.dst_port,
                self.seq & 0xFFFFFFFF,
                self.ack & 0xFFFFFFFF,
                5 << 4,  # data offset
                int(self.flags),
                self.window,
                0,  # checksum placeholder
                0,  # urgent pointer
            )
            + self.payload
        )
        if src_ip is None or dst_ip is None:
            return segment
        checksum = pseudo_header_checksum(src_ip, dst_ip, IpProtocol.TCP, segment)
        return segment[:16] + struct.pack("!H", checksum) + segment[18:]

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "TcpSegment":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated TCP segment: {len(data)} bytes")
        (src_port, dst_port, seq, ack, offset_byte, flags, window, _ck, _urg) = (
            _HEADER.unpack_from(data)
        )
        header_len = (offset_byte >> 4) * 4
        if header_len < 20 or len(data) < header_len:
            raise ValueError(f"bad TCP data offset: {header_len}")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=TcpFlags(flags),
            window=window,
            payload=data[header_len:],
        )
