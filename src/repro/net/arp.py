"""ARP packet codec (RFC 826, Ethernet/IPv4 only).

ARP is both the most prevalent protocol in the testbed (92% of devices,
Fig. 2) and a harvesting vector: Amazon Echo devices broadcast-scan the
entire local IP space daily and unicast-probe most other devices (§5.1),
collecting MAC addresses that act as persistent identifiers.
"""

from __future__ import annotations

import enum
import ipaddress
import struct
from dataclasses import dataclass

from repro.net.mac import MacAddress
from repro.net.guard import guarded_decode


class ArpOp(enum.IntEnum):
    REQUEST = 1
    REPLY = 2


_HEADER = struct.Struct("!HHBBH6s4s6s4s")


@dataclass
class ArpPacket:
    """An Ethernet/IPv4 ARP request or reply."""

    op: ArpOp
    sender_mac: MacAddress
    sender_ip: str
    target_mac: MacAddress
    target_ip: str

    def __post_init__(self):
        self.op = ArpOp(self.op)
        self.sender_mac = MacAddress(self.sender_mac)
        self.target_mac = MacAddress(self.target_mac)
        self.sender_ip = str(ipaddress.IPv4Address(self.sender_ip))
        self.target_ip = str(ipaddress.IPv4Address(self.target_ip))

    def encode(self) -> bytes:
        return _HEADER.pack(
            1,  # hardware type: Ethernet
            0x0800,  # protocol type: IPv4
            6,  # hardware address length
            4,  # protocol address length
            int(self.op),
            self.sender_mac.packed,
            ipaddress.IPv4Address(self.sender_ip).packed,
            self.target_mac.packed,
            ipaddress.IPv4Address(self.target_ip).packed,
        )

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "ArpPacket":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated ARP packet: {len(data)} bytes")
        (htype, ptype, hlen, plen, op, smac, sip, tmac, tip) = _HEADER.unpack_from(data)
        if htype != 1 or ptype != 0x0800 or hlen != 6 or plen != 4:
            raise ValueError(
                f"unsupported ARP encoding: htype={htype} ptype={ptype:#x}"
            )
        return cls(
            op=ArpOp(op),
            sender_mac=MacAddress(smac),
            sender_ip=str(ipaddress.IPv4Address(sip)),
            target_mac=MacAddress(tmac),
            target_ip=str(ipaddress.IPv4Address(tip)),
        )

    @property
    def is_probe(self) -> bool:
        """True for an ARP probe (sender IP 0.0.0.0, RFC 5227)."""
        return self.op is ArpOp.REQUEST and self.sender_ip == "0.0.0.0"

    @property
    def is_gratuitous(self) -> bool:
        """True for a gratuitous announcement (sender IP == target IP)."""
        return self.sender_ip == self.target_ip and self.sender_ip != "0.0.0.0"
