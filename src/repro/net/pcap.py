"""Classic libpcap file reader/writer.

The MonIoTr AP stores captured traffic "in separate files for each MAC
address" (§3.1).  We implement the classic pcap format (as written by
tcpdump) from scratch: 24-byte global header + 16-byte per-record
headers, microsecond timestamps, link type Ethernet.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class CapturedPacket:
    """A raw captured frame with its capture timestamp (seconds)."""

    timestamp: float
    data: bytes

    @property
    def length(self) -> int:
        return len(self.data)


class PcapWriter:
    """Write Ethernet frames into a classic pcap file.

    Usable as a context manager::

        with PcapWriter(path) as writer:
            writer.write(timestamp, frame_bytes)
    """

    def __init__(self, path, snaplen: int = 65535):
        self._path = Path(path)
        self._file = open(self._path, "wb")
        self._file.write(
            _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET)
        )
        self._snaplen = snaplen
        self.packet_count = 0

    def write(self, timestamp: float, data: bytes) -> None:
        ts_sec = int(timestamp)
        ts_usec = int(round((timestamp - ts_sec) * 1_000_000))
        if ts_usec >= 1_000_000:
            ts_sec += 1
            ts_usec -= 1_000_000
        captured = data[: self._snaplen]
        self._file.write(_RECORD_HEADER.pack(ts_sec, ts_usec, len(captured), len(data)))
        self._file.write(captured)
        self.packet_count += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PcapReader:
    """Iterate over the packets of a classic pcap file.

    Handles both native and byte-swapped magic numbers.
    """

    def __init__(self, path):
        self._path = Path(path)
        self._file = open(self._path, "rb")
        header = self._file.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError(f"{self._path}: not a pcap file (too short)")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            self._endian = "<"
        elif magic == PCAP_MAGIC_SWAPPED:
            self._endian = ">"
        else:
            raise ValueError(f"{self._path}: bad pcap magic {magic:#x}")
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.version = (fields[1], fields[2])
        self.snaplen = fields[5]
        self.linktype = fields[6]

    def __iter__(self) -> Iterator[CapturedPacket]:
        record = struct.Struct(self._endian + "IIII")
        while True:
            header = self._file.read(record.size)
            if len(header) < record.size:
                return
            ts_sec, ts_usec, incl_len, _orig_len = record.unpack(header)
            data = self._file.read(incl_len)
            if len(data) < incl_len:
                raise ValueError(f"{self._path}: truncated packet record")
            yield CapturedPacket(ts_sec + ts_usec / 1_000_000, data)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_pcap(path, packets: Iterable[Tuple[float, bytes]]) -> int:
    """Write ``(timestamp, frame)`` pairs to ``path``; returns the count."""
    with PcapWriter(path) as writer:
        for timestamp, data in packets:
            writer.write(timestamp, data)
        return writer.packet_count


def read_pcap(path) -> List[CapturedPacket]:
    """Read every packet of a pcap file into memory."""
    with PcapReader(path) as reader:
        return list(reader)
