"""Struct-of-arrays packet store: one decode pass, columnar scans.

The analyses (§4–§6) re-scan every captured frame many times, but they
mostly read a handful of *derived* per-packet facts: source/destination
MAC, quick-protocol tag, transport, IPs, ports, a few boolean flags and
the application payload.  Materializing one :class:`~repro.net.decode.DecodedPacket`
Python object (plus layer objects) per frame just to read those columns
is the dominant cost at fleet scale.

:class:`PacketTable` stores a capture as parallel ``array``/``bytearray``
columns instead:

* ``timestamps`` (f64) and the raw ``frames`` byte arena with per-row
  offset/length, so the original bytes are never lost;
* interned ids into string pools for MACs (``mac_strings``), IPs
  (``ip_strings``) and quick-protocol tags (``protocol_tags``);
* transport code, ports (-1 = absent) and a flags bitfield
  (:data:`F_UNICAST` …) mirroring the per-row booleans the analyses
  branch on;
* application-payload offset/length pointing *into the arena* — payload
  reads are slices, not layer-object walks.

The columns are built by a conservative raw-byte fast path that accepts
a frame only when the layered codecs would decode it cleanly; anything
unusual (short headers, bad versions, ICMP/IGMP/EAPOL, quarantine
cases) falls back to :func:`~repro.net.decode.decode_frame`, which
records decode errors exactly as the legacy path did and caches the
resulting packet eagerly.  Clean rows materialize a ``DecodedPacket``
lazily — only when a consumer (classification, deep payload mining)
actually asks — via :meth:`PacketTable.packet`, memoized per row.

``CaptureIndex`` (:mod:`repro.net.index`) layers zero-copy row-id views
over a table; :class:`LazyPackets` adapts row-id lists back into the
sequence-of-packets shape flow consumers expect.
"""

from __future__ import annotations

import ipaddress
from array import array
from collections.abc import Sequence
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.decode import (
    _TCP_PORT_LABELS,
    _UDP_PORT_LABELS,
    DecodedPacket,
    DecodeErrorLog,
    decode_frame,
    quick_protocol,
)
from repro.net.mac import MacAddress

#: Row flag bits (``PacketTable.flags``).
F_UNICAST = 0x01      #: destination MAC has the I/G bit clear
F_BROADCAST = 0x02    #: L2 broadcast or IPv4 255.255.255.255
F_ARP = 0x04          #: row carries a decoded ARP packet
F_UDP = 0x08          #: row carries a UDP datagram
F_TCP_PAYLOAD = 0x10  #: TCP with non-empty payload (and no UDP)
F_MALFORMED = 0x20    #: decode_error is set on the row's packet

#: Transport column codes.
TRANSPORT_NONE = 0
TRANSPORT_UDP = 1
TRANSPORT_TCP = 2

_BROADCAST_MAC = b"\xff\xff\xff\xff\xff\xff"
_BROADCAST_IP4 = b"\xff\xff\xff\xff"


class PacketTable:
    """A capture stored column-wise, one row per frame.

    Rows are append-only and keep capture (chronological) order.  All
    columns are plain ``array`` instances; consumers on hot loops bind
    them to locals and index by row id.
    """

    __slots__ = (
        "timestamps", "src_mac", "dst_mac", "protocol", "transport",
        "src_ip", "dst_ip", "src_port", "dst_port", "flags",
        "frame_off", "frame_len", "payload_off", "payload_len", "frames",
        "mac_strings", "ip_strings", "protocol_tags",
        "_mac_ids", "_ip_ids", "_protocol_ids", "_mac_objects", "_packets",
    )

    def __init__(self):
        self.timestamps = array("d")
        #: Interned pool ids (see ``mac_strings`` / ``ip_strings`` /
        #: ``protocol_tags``); -1 in the IP/port columns means absent.
        self.src_mac = array("i")
        self.dst_mac = array("i")
        self.protocol = array("h")
        self.transport = array("b")
        self.src_ip = array("i")
        self.dst_ip = array("i")
        self.src_port = array("i")
        self.dst_port = array("i")
        self.flags = array("B")
        #: Raw frame bytes live contiguously in ``frames``; payload
        #: offsets point into the same arena (0/0 when the row's packet
        #: is eagerly cached instead).
        self.frame_off = array("Q")
        self.frame_len = array("I")
        self.payload_off = array("Q")
        self.payload_len = array("I")
        self.frames = bytearray()
        self.mac_strings: List[str] = []
        self.ip_strings: List[str] = []
        self.protocol_tags: List[str] = []
        self._mac_ids: Dict[bytes, int] = {}
        self._ip_ids: Dict[bytes, int] = {}
        self._protocol_ids: Dict[str, int] = {}
        self._mac_objects: List[Optional[MacAddress]] = []
        #: Lazy per-row ``DecodedPacket`` cache (fallback rows eager).
        self._packets: List[Optional[DecodedPacket]] = []

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[Tuple[float, bytes]],
                     errors: Optional[DecodeErrorLog] = None) -> "PacketTable":
        """Build a table from ``(timestamp, frame_bytes)`` records."""
        table = cls()
        table.extend_records(records, errors)
        return table

    @classmethod
    def from_packets(cls, packets: Iterable[DecodedPacket]) -> "PacketTable":
        """Wrap already-decoded packets (back-compat path).

        Columns are derived from the packet objects, which stay cached
        row-for-row, so :meth:`packet` returns the *original* objects.
        """
        table = cls()
        for packet in packets:
            table._append_from_packet(packet)
        return table

    def append_record(self, timestamp: float, data: bytes,
                      errors: Optional[DecodeErrorLog] = None) -> None:
        """Append one raw frame (fast path, falling back per-frame)."""
        self.extend_records(((timestamp, data),), errors)

    def extend_records(self, records: Iterable[Tuple[float, bytes]],
                       errors: Optional[DecodeErrorLog] = None) -> None:
        """Append raw frames in one pass — the hot ingest loop.

        A frame takes the raw-byte fast path only when the layered
        codecs would accept it verbatim; any anomaly routes through
        :func:`decode_frame` so quarantine counts and per-row decode
        errors are identical to the legacy eager decode.
        """
        timestamps = self.timestamps
        src_col, dst_col = self.src_mac, self.dst_mac
        proto_col, trans_col = self.protocol, self.transport
        sip_col, dip_col = self.src_ip, self.dst_ip
        sport_col, dport_col = self.src_port, self.dst_port
        flags_col = self.flags
        foff_col, flen_col = self.frame_off, self.frame_len
        poff_col, plen_col = self.payload_off, self.payload_len
        frames = self.frames
        mac_ids, mac_strings = self._mac_ids, self.mac_strings
        mac_objects = self._mac_objects
        ip_ids, ip_strings = self._ip_ids, self.ip_strings
        tag_ids, tags = self._protocol_ids, self.protocol_tags
        packets = self._packets
        udp_labels, tcp_labels = _UDP_PORT_LABELS, _TCP_PORT_LABELS

        for timestamp, data in records:
            n = len(data)
            fallback = False
            flags = 0
            transport = TRANSPORT_NONE
            sip = dip = None
            sport = dport = -1
            pstart = pend = 0
            tag = "l2-other"
            if n < 14:
                fallback = True
            else:
                b0 = data[0]
                if not b0 & 1:
                    flags = F_UNICAST
                elif b0 == 0xFF and data[:6] == _BROADCAST_MAC:
                    flags = F_BROADCAST
                ethertype = (data[12] << 8) | data[13]
                if ethertype == 0x0800:  # IPv4
                    if n < 34 or (data[14] >> 4) != 4:
                        fallback = True
                    else:
                        ihl = (data[14] & 0x0F) << 2
                        if ihl < 20 or 14 + ihl > n:
                            fallback = True
                        else:
                            total_length = (data[16] << 8) | data[17]
                            seg_start = 14 + ihl
                            if total_length:
                                seg_end = 14 + total_length
                                if seg_end > n:
                                    seg_end = n
                                if seg_end < seg_start:
                                    seg_end = seg_start
                            else:
                                seg_end = n
                            proto = data[23]
                            sip = data[26:30]
                            dip = data[30:34]
                            if dip == _BROADCAST_IP4:
                                flags |= F_BROADCAST
                            if proto == 17:
                                if seg_end - seg_start < 8:
                                    fallback = True
                                else:
                                    ulen = (data[seg_start + 4] << 8) | data[seg_start + 5]
                                    if ulen < 8:
                                        fallback = True
                                    else:
                                        sport = (data[seg_start] << 8) | data[seg_start + 1]
                                        dport = (data[seg_start + 2] << 8) | data[seg_start + 3]
                                        pstart = seg_start + 8
                                        pend = seg_start + ulen
                                        if pend > seg_end:
                                            pend = seg_end
                                        transport = TRANSPORT_UDP
                                        flags |= F_UDP
                                        tag = udp_labels.get(dport)
                                        if tag is None:
                                            tag = udp_labels.get(sport, "udp-other")
                            elif proto == 6:
                                seg_len = seg_end - seg_start
                                if seg_len < 20:
                                    fallback = True
                                else:
                                    hlen = (data[seg_start + 12] >> 4) << 2
                                    if hlen < 20 or hlen > seg_len:
                                        fallback = True
                                    else:
                                        sport = (data[seg_start] << 8) | data[seg_start + 1]
                                        dport = (data[seg_start + 2] << 8) | data[seg_start + 3]
                                        pstart = seg_start + hlen
                                        pend = seg_end
                                        transport = TRANSPORT_TCP
                                        if pend > pstart:
                                            flags |= F_TCP_PAYLOAD
                                        tag = tcp_labels.get(dport)
                                        if tag is None:
                                            tag = tcp_labels.get(sport, "tcp-other")
                            elif proto == 1 or proto == 2:  # ICMP/IGMP: rare, layered path
                                fallback = True
                            else:
                                tag = "ip-other"
                elif ethertype == 0x0806:  # ARP
                    if (n < 42 or data[14] != 0 or data[15] != 1
                            or data[16] != 8 or data[17] != 0
                            or data[18] != 6 or data[19] != 4
                            or data[20] != 0 or not 1 <= data[21] <= 2):
                        fallback = True
                    else:
                        flags |= F_ARP
                        tag = "arp"
                elif ethertype == 0x86DD:  # IPv6
                    if n < 54 or (data[14] >> 4) != 6:
                        fallback = True
                    else:
                        payload_len = (data[18] << 8) | data[19]
                        nh = data[20]
                        sip = data[22:38]
                        dip = data[38:54]
                        seg_start = 54
                        seg_end = 54 + payload_len
                        if seg_end > n:
                            seg_end = n
                        if nh == 17:
                            if seg_end - seg_start < 8:
                                fallback = True
                            else:
                                ulen = (data[seg_start + 4] << 8) | data[seg_start + 5]
                                if ulen < 8:
                                    fallback = True
                                else:
                                    sport = (data[seg_start] << 8) | data[seg_start + 1]
                                    dport = (data[seg_start + 2] << 8) | data[seg_start + 3]
                                    pstart = seg_start + 8
                                    pend = seg_start + ulen
                                    if pend > seg_end:
                                        pend = seg_end
                                    transport = TRANSPORT_UDP
                                    flags |= F_UDP
                                    tag = udp_labels.get(dport)
                                    if tag is None:
                                        tag = udp_labels.get(sport, "udp-other")
                        elif nh == 6:
                            seg_len = seg_end - seg_start
                            if seg_len < 20:
                                fallback = True
                            else:
                                hlen = (data[seg_start + 12] >> 4) << 2
                                if hlen < 20 or hlen > seg_len:
                                    fallback = True
                                else:
                                    sport = (data[seg_start] << 8) | data[seg_start + 1]
                                    dport = (data[seg_start + 2] << 8) | data[seg_start + 3]
                                    pstart = seg_start + hlen
                                    pend = seg_end
                                    transport = TRANSPORT_TCP
                                    if pend > pstart:
                                        flags |= F_TCP_PAYLOAD
                                    tag = tcp_labels.get(dport)
                                    if tag is None:
                                        tag = tcp_labels.get(sport, "tcp-other")
                        elif nh == 58:  # ICMPv6: rare, layered path
                            fallback = True
                        else:
                            tag = "ip-other"
                elif ethertype == 0x888E:  # EAPOL: rare, layered path
                    fallback = True
                # anything else (incl. 802.3/LLC lengths): clean l2-other

            if fallback:
                self._append_from_packet(
                    decode_frame(data, timestamp, errors), data)
                continue

            base = len(frames)
            frames += data
            timestamps.append(timestamp)
            key = data[6:12]
            mid = mac_ids.get(key)
            if mid is None:
                mid = mac_ids[key] = len(mac_strings)
                mac_strings.append(key.hex(":"))
                mac_objects.append(None)
            src_col.append(mid)
            key = data[:6]
            mid = mac_ids.get(key)
            if mid is None:
                mid = mac_ids[key] = len(mac_strings)
                mac_strings.append(key.hex(":"))
                mac_objects.append(None)
            dst_col.append(mid)
            tid = tag_ids.get(tag)
            if tid is None:
                tid = tag_ids[tag] = len(tags)
                tags.append(tag)
            proto_col.append(tid)
            trans_col.append(transport)
            if sip is None:
                sip_col.append(-1)
                dip_col.append(-1)
            else:
                iid = ip_ids.get(sip)
                if iid is None:
                    iid = ip_ids[sip] = len(ip_strings)
                    ip_strings.append(str(ipaddress.ip_address(sip)))
                sip_col.append(iid)
                iid = ip_ids.get(dip)
                if iid is None:
                    iid = ip_ids[dip] = len(ip_strings)
                    ip_strings.append(str(ipaddress.ip_address(dip)))
                dip_col.append(iid)
            sport_col.append(sport)
            dport_col.append(dport)
            flags_col.append(flags)
            foff_col.append(base)
            flen_col.append(n)
            poff_col.append(base + pstart)
            plen_col.append(pend - pstart)
            packets.append(None)

    def _append_from_packet(self, packet: DecodedPacket,
                            data: Optional[bytes] = None) -> None:
        """Append a row derived from a decoded packet (caches it eagerly)."""
        base = len(self.frames)
        if data is not None:
            self.frames += data
            frame_len = len(data)
        else:
            frame_len = 0
        frame = packet.frame
        self.timestamps.append(packet.timestamp)
        self.src_mac.append(self._intern_mac(frame.src.packed))
        self.dst_mac.append(self._intern_mac(frame.dst.packed))
        self.protocol.append(self._intern_tag(quick_protocol(packet)))
        transport = packet.transport
        self.transport.append(
            TRANSPORT_UDP if transport == "udp"
            else TRANSPORT_TCP if transport == "tcp"
            else TRANSPORT_NONE)
        self.src_ip.append(self._intern_ip(packet.src_ip))
        self.dst_ip.append(self._intern_ip(packet.dst_ip))
        sport, dport = packet.src_port, packet.dst_port
        self.src_port.append(-1 if sport is None else sport)
        self.dst_port.append(-1 if dport is None else dport)
        flags = 0
        if packet.is_unicast:
            flags |= F_UNICAST
        if packet.is_broadcast:
            flags |= F_BROADCAST
        if packet.arp is not None:
            flags |= F_ARP
        if packet.udp is not None:
            flags |= F_UDP
        elif packet.tcp is not None and packet.tcp.payload:
            flags |= F_TCP_PAYLOAD
        if packet.decode_error is not None:
            flags |= F_MALFORMED
        self.flags.append(flags)
        self.frame_off.append(base)
        self.frame_len.append(frame_len)
        self.payload_off.append(0)
        self.payload_len.append(0)
        self._packets.append(packet)

    # -- interning ----------------------------------------------------------------

    def _intern_mac(self, packed: bytes) -> int:
        mid = self._mac_ids.get(packed)
        if mid is None:
            mid = self._mac_ids[packed] = len(self.mac_strings)
            self.mac_strings.append(packed.hex(":"))
            self._mac_objects.append(None)
        return mid

    def _intern_ip(self, value: Optional[str]) -> int:
        if value is None:
            return -1
        packed = ipaddress.ip_address(value).packed
        iid = self._ip_ids.get(packed)
        if iid is None:
            iid = self._ip_ids[packed] = len(self.ip_strings)
            self.ip_strings.append(value)
        return iid

    def _intern_tag(self, tag: str) -> int:
        tid = self._protocol_ids.get(tag)
        if tid is None:
            tid = self._protocol_ids[tag] = len(self.protocol_tags)
            self.protocol_tags.append(tag)
        return tid

    # -- row access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def packet(self, rid: int) -> DecodedPacket:
        """The row's :class:`DecodedPacket`, materialized once on demand.

        Fast-path rows decode here from the frame arena — clean by
        construction, so no error log is consulted; fallback rows (and
        ``from_packets`` rows) return their eagerly cached object.
        """
        packet = self._packets[rid]
        if packet is None:
            off = self.frame_off[rid]
            data = bytes(self.frames[off:off + self.frame_len[rid]])
            packet = self._packets[rid] = decode_frame(data, self.timestamps[rid])
        return packet

    def packets(self) -> List[DecodedPacket]:
        """Materialize every row (chronological); returns a fresh list."""
        cached = self._packets
        materialize = self.packet
        return [cached[rid] if cached[rid] is not None else materialize(rid)
                for rid in range(len(cached))]

    def app_payload(self, rid: int) -> bytes:
        """The row's application payload, straight from the arena."""
        packet = self._packets[rid]
        if packet is not None:
            return packet.app_payload
        length = self.payload_len[rid]
        if not length:
            return b""
        off = self.payload_off[rid]
        return bytes(self.frames[off:off + length])

    def frame_bytes(self, rid: int) -> bytes:
        """The row's raw frame bytes (empty for ``from_packets`` rows)."""
        off = self.frame_off[rid]
        return bytes(self.frames[off:off + self.frame_len[rid]])

    def arp_sender_mac(self, rid: int) -> str:
        """Sender MAC string of an ARP row without materializing it."""
        packet = self._packets[rid]
        if packet is not None:
            return str(packet.arp.sender_mac)
        off = self.frame_off[rid] + 22  # Ethernet header + ARP offset 8
        return bytes(self.frames[off:off + 6]).hex(":")

    def mac_object(self, mac_id: int) -> MacAddress:
        """The pool entry as a (memoized) :class:`MacAddress`."""
        obj = self._mac_objects[mac_id]
        if obj is None:
            obj = self._mac_objects[mac_id] = MacAddress(self.mac_strings[mac_id])
        return obj

    def mac_id_of(self, mac) -> Optional[int]:
        """Pool id of a MAC (any accepted form), or ``None`` if unseen."""
        return self._mac_ids.get(MacAddress(mac).packed)

    def __repr__(self) -> str:
        return (f"PacketTable({len(self)} rows, {len(self.mac_strings)} macs, "
                f"{len(self.frames)} arena bytes)")


class LazyPackets(Sequence):
    """A row-id list presented as a sequence of ``DecodedPacket``.

    Materialization is per-item and memoized by the owning table, so
    consumers that only touch a few packets (``packets[0].timestamp``,
    the first payload packet) never pay for the rest.  Compares equal
    to lists/tuples of the same packets.
    """

    __slots__ = ("_table", "_rids")

    def __init__(self, table: PacketTable, rids):
        self._table = table
        self._rids = rids

    def __len__(self) -> int:
        return len(self._rids)

    def __getitem__(self, item):
        if isinstance(item, slice):
            table = self._table
            return [table.packet(rid) for rid in self._rids[item]]
        return self._table.packet(self._rids[item])

    def __iter__(self):
        table = self._table
        for rid in self._rids:
            yield table.packet(rid)

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyPackets):
            if self._table is other._table and list(self._rids) == list(other._rids):
                return True
            other = list(other)
        if isinstance(other, (list, tuple)):
            return len(self._rids) == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    __hash__ = None  # like a list

    def __repr__(self) -> str:
        return f"LazyPackets({len(self._rids)} rows)"
