"""IGMP codec (RFC 2236 v2 / RFC 3376 v3 membership reports).

56% of testbed devices emit IGMP (Fig. 2); devices join multicast
groups (mDNS 224.0.0.251, SSDP 239.255.255.250) via IGMP reports, so
the reports themselves reveal which discovery protocols a device runs.
"""

from __future__ import annotations

import enum
import ipaddress
import struct
from dataclasses import dataclass

from repro.net.ipv4 import internet_checksum
from repro.net.guard import guarded_decode


class IgmpType(enum.IntEnum):
    MEMBERSHIP_QUERY = 0x11
    V2_MEMBERSHIP_REPORT = 0x16
    LEAVE_GROUP = 0x17
    V3_MEMBERSHIP_REPORT = 0x22


_HEADER = struct.Struct("!BBH4s")


@dataclass
class IgmpMessage:
    """A decoded IGMPv2 message (v3 reports are carried as one group record)."""

    igmp_type: int
    group: str = "0.0.0.0"
    max_resp_time: int = 0

    def encode(self) -> bytes:
        msg = _HEADER.pack(
            self.igmp_type,
            self.max_resp_time,
            0,
            ipaddress.IPv4Address(self.group).packed,
        )
        checksum = internet_checksum(msg)
        return msg[:2] + struct.pack("!H", checksum) + msg[4:]

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "IgmpMessage":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated IGMP message: {len(data)} bytes")
        igmp_type, max_resp, _checksum, group = _HEADER.unpack_from(data)
        return cls(
            igmp_type=igmp_type,
            group=str(ipaddress.IPv4Address(group)),
            max_resp_time=max_resp,
        )

    @classmethod
    def join(cls, group: str) -> "IgmpMessage":
        return cls(IgmpType.V2_MEMBERSHIP_REPORT, group)

    @classmethod
    def leave(cls, group: str) -> "IgmpMessage":
        return cls(IgmpType.LEAVE_GROUP, group)
