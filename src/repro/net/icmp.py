"""ICMP and ICMPv6 codecs.

ICMP is used by 78% of testbed devices; ICMPv6 neighbor discovery
(55% of devices, §5.1) leaks sender MAC addresses through the source
link-layer address option (RFC 4861), which we encode for real.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.net.ipv4 import internet_checksum
from repro.net.mac import MacAddress
from repro.net.guard import guarded_decode

_HEADER = struct.Struct("!BBH")


class IcmpType(enum.IntEnum):
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8


class Icmpv6Type(enum.IntEnum):
    ECHO_REQUEST = 128
    ECHO_REPLY = 129
    MLD_REPORT = 131
    ROUTER_SOLICITATION = 133
    ROUTER_ADVERTISEMENT = 134
    NEIGHBOR_SOLICITATION = 135
    NEIGHBOR_ADVERTISEMENT = 136
    MLDV2_REPORT = 143


@dataclass
class IcmpMessage:
    """A decoded ICMPv4 message."""

    icmp_type: int
    code: int = 0
    body: bytes = b""

    def encode(self) -> bytes:
        msg = _HEADER.pack(self.icmp_type, self.code, 0) + self.body
        checksum = internet_checksum(msg)
        return msg[:2] + struct.pack("!H", checksum) + msg[4:]

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "IcmpMessage":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated ICMP message: {len(data)} bytes")
        icmp_type, code, _checksum = _HEADER.unpack_from(data)
        return cls(icmp_type=icmp_type, code=code, body=data[_HEADER.size:])

    @classmethod
    def echo_request(cls, ident: int = 1, seq: int = 1, data: bytes = b"") -> "IcmpMessage":
        return cls(IcmpType.ECHO_REQUEST, 0, struct.pack("!HH", ident, seq) + data)

    @classmethod
    def echo_reply(cls, ident: int = 1, seq: int = 1, data: bytes = b"") -> "IcmpMessage":
        return cls(IcmpType.ECHO_REPLY, 0, struct.pack("!HH", ident, seq) + data)


@dataclass
class Icmpv6Message:
    """A decoded ICMPv6 message, with neighbor-discovery helpers."""

    icmp_type: int
    code: int = 0
    body: bytes = b""

    def encode(self) -> bytes:
        # The real ICMPv6 checksum covers an IPv6 pseudo-header; on the
        # simulated LAN we checksum the message alone, which is
        # sufficient for integrity checks during decoding.
        msg = _HEADER.pack(self.icmp_type, self.code, 0) + self.body
        checksum = internet_checksum(msg)
        return msg[:2] + struct.pack("!H", checksum) + msg[4:]

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "Icmpv6Message":
        if len(data) < _HEADER.size:
            raise ValueError(f"truncated ICMPv6 message: {len(data)} bytes")
        icmp_type, code, _checksum = _HEADER.unpack_from(data)
        return cls(icmp_type=icmp_type, code=code, body=data[_HEADER.size:])

    @classmethod
    def neighbor_solicitation(cls, target_ip6_packed: bytes, source_mac) -> "Icmpv6Message":
        """Build an NS carrying the source link-layer address option.

        The embedded MAC is exactly the identifier leak §5.1 describes.
        """
        mac = MacAddress(source_mac)
        body = b"\x00" * 4 + target_ip6_packed
        body += struct.pack("!BB", 1, 1) + mac.packed  # option: SLLA
        return cls(Icmpv6Type.NEIGHBOR_SOLICITATION, 0, body)

    @classmethod
    def neighbor_advertisement(cls, target_ip6_packed: bytes, target_mac) -> "Icmpv6Message":
        mac = MacAddress(target_mac)
        body = struct.pack("!I", 0x60000000)  # solicited + override flags
        body += target_ip6_packed
        body += struct.pack("!BB", 2, 1) + mac.packed  # option: TLLA
        return cls(Icmpv6Type.NEIGHBOR_ADVERTISEMENT, 0, body)

    def embedded_mac(self) -> "MacAddress | None":
        """Extract a link-layer address option from an ND message, if any."""
        if self.icmp_type not in (
            Icmpv6Type.NEIGHBOR_SOLICITATION,
            Icmpv6Type.NEIGHBOR_ADVERTISEMENT,
        ):
            return None
        offset = 20  # 4 reserved/flags + 16 target address
        while offset + 2 <= len(self.body):
            opt_type = self.body[offset]
            opt_len = self.body[offset + 1] * 8
            if opt_len == 0:
                break
            if opt_type in (1, 2) and offset + 8 <= len(self.body):
                return MacAddress(self.body[offset + 2 : offset + 8])
            offset += opt_len
        return None
