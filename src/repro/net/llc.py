"""IEEE 802.2 LLC frames, including XID.

Figure 2 lists XID/LLC among the broadcast protocols 93% of devices
use: legacy stacks (TVs, appliances, game consoles) emit 802.3 frames
whose "EtherType" field is actually a length, with an LLC header and an
XID (exchange identification) control field.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.ether import EthernetFrame
from repro.net.mac import BROADCAST_MAC, MacAddress
from repro.net.guard import guarded_decode

#: LLC control byte for XID with the poll/final bit set.
XID_CONTROL = 0xBF
#: Null SAP: the classic "IPX/legacy discovery" XID destination.
NULL_SAP = 0x00


@dataclass
class LlcFrame:
    """An 802.2 LLC PDU (DSAP, SSAP, control, information)."""

    dsap: int = NULL_SAP
    ssap: int = NULL_SAP
    control: int = XID_CONTROL
    information: bytes = b""

    def encode(self) -> bytes:
        return struct.pack("!BBB", self.dsap, self.ssap, self.control) + self.information

    @classmethod
    @guarded_decode
    def decode(cls, data: bytes) -> "LlcFrame":
        if len(data) < 3:
            raise ValueError(f"truncated LLC PDU: {len(data)} bytes")
        dsap, ssap, control = struct.unpack_from("!BBB", data)
        return cls(dsap=dsap, ssap=ssap, control=control, information=data[3:])

    @property
    def is_xid(self) -> bool:
        # XID control is 0xAF or 0xBF depending on the P/F bit.
        return self.control in (0xAF, 0xBF)

    @classmethod
    def xid_probe(cls) -> "LlcFrame":
        """The standard XID class-of-service probe (format id 0x81)."""
        return cls(NULL_SAP, NULL_SAP, XID_CONTROL, bytes([0x81, 0x01, 0x00]))


def xid_broadcast_frame(src_mac) -> bytes:
    """A broadcast 802.3 frame carrying an XID probe."""
    pdu = LlcFrame.xid_probe().encode()
    # The "EtherType" is the 802.3 payload length (< 0x600 => LLC).
    frame = EthernetFrame(BROADCAST_MAC, MacAddress(src_mac), len(pdu), pdu)
    return frame.encode()
