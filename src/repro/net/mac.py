"""MAC (EUI-48) address type.

MAC addresses are central to the paper: they are the persistent device
identifiers leaked via ARP, DHCP, mDNS, SSDP and UPnP payloads, and the
unit by which the AP capture splits traffic into per-device pcaps.
"""

from __future__ import annotations

import re
from functools import total_ordering

_MAC_RE = re.compile(
    r"^([0-9A-Fa-f]{2})[:-]([0-9A-Fa-f]{2})[:-]([0-9A-Fa-f]{2})"
    r"[:-]([0-9A-Fa-f]{2})[:-]([0-9A-Fa-f]{2})[:-]([0-9A-Fa-f]{2})$"
)
_MAC_BARE_RE = re.compile(r"^[0-9A-Fa-f]{12}$")


@total_ordering
class MacAddress:
    """An immutable EUI-48 MAC address.

    Accepts colon/dash separated strings, bare 12-hex-digit strings,
    6-byte ``bytes``, or another :class:`MacAddress`.
    """

    __slots__ = ("_octets",)

    def __init__(self, value):
        if isinstance(value, MacAddress):
            self._octets = value._octets
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise ValueError(f"MAC address needs 6 bytes, got {len(value)}")
            self._octets = bytes(value)
        elif isinstance(value, str):
            self._octets = self._parse_str(value)
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError(f"MAC integer out of range: {value:#x}")
            self._octets = value.to_bytes(6, "big")
        else:
            raise TypeError(f"cannot build MacAddress from {type(value).__name__}")

    @staticmethod
    def _parse_str(text: str) -> bytes:
        match = _MAC_RE.match(text)
        if match:
            return bytes(int(group, 16) for group in match.groups())
        if _MAC_BARE_RE.match(text):
            return bytes.fromhex(text)
        raise ValueError(f"invalid MAC address: {text!r}")

    @property
    def packed(self) -> bytes:
        """The 6-byte big-endian wire representation."""
        return self._octets

    @property
    def oui(self) -> str:
        """The first three octets ("organizationally unique identifier")."""
        return ":".join(f"{byte:02x}" for byte in self._octets[:3])

    @property
    def nic_suffix(self) -> str:
        """The last three octets (device-specific part)."""
        return ":".join(f"{byte:02x}" for byte in self._octets[3:])

    @property
    def is_broadcast(self) -> bool:
        return self._octets == b"\xff" * 6

    @property
    def is_multicast(self) -> bool:
        """True when the I/G bit is set (includes broadcast)."""
        return bool(self._octets[0] & 0x01)

    @property
    def is_unicast(self) -> bool:
        return not self.is_multicast

    @property
    def is_locally_administered(self) -> bool:
        return bool(self._octets[0] & 0x02)

    def compact(self) -> str:
        """Bare lowercase hex without separators (e.g. ``9c8ecd0a331b``)."""
        return self._octets.hex()

    def __str__(self) -> str:
        return ":".join(f"{byte:02x}" for byte in self._octets)

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"

    def __eq__(self, other) -> bool:
        if isinstance(other, MacAddress):
            return self._octets == other._octets
        if isinstance(other, str):
            try:
                return self._octets == MacAddress(other)._octets
            except ValueError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, MacAddress):
            return self._octets < other._octets
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._octets)

    def __int__(self) -> int:
        return int.from_bytes(self._octets, "big")


BROADCAST_MAC = MacAddress("ff:ff:ff:ff:ff:ff")

#: The multicast MAC used by mDNS (224.0.0.251 mapped per RFC 1112).
MDNS_V4_MAC = MacAddress("01:00:5e:00:00:fb")

#: The multicast MAC used by SSDP (239.255.255.250 mapped per RFC 1112).
SSDP_V4_MAC = MacAddress("01:00:5e:7f:ff:fa")


def ipv4_multicast_mac(group: str) -> MacAddress:
    """Map an IPv4 multicast group to its Ethernet multicast MAC (RFC 1112)."""
    import ipaddress

    addr = ipaddress.IPv4Address(group)
    if not addr.is_multicast:
        raise ValueError(f"{group} is not an IPv4 multicast group")
    low23 = int(addr) & 0x7FFFFF
    return MacAddress(bytes([0x01, 0x00, 0x5E]) + low23.to_bytes(3, "big"))


def ipv6_multicast_mac(group: str) -> MacAddress:
    """Map an IPv6 multicast group to its Ethernet multicast MAC (RFC 2464)."""
    import ipaddress

    addr = ipaddress.IPv6Address(group)
    if not addr.is_multicast:
        raise ValueError(f"{group} is not an IPv6 multicast group")
    return MacAddress(b"\x33\x33" + addr.packed[-4:])
