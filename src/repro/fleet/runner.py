"""The fleet orchestrator: dispatch shards, cache, merge, observe, supervise.

``FleetRunner`` plans the shard partition from a
:class:`~repro.fleet.spec.FleetSpec`, serves completed shards from the
content-addressed cache, dispatches the rest to a
``ProcessPoolExecutor`` (``workers=1`` runs inline — no pool, no
process overhead), checkpoints each completion, and merges the partials
into the population :class:`~repro.core.fingerprint.FingerprintReport`.

Supervision (see :mod:`repro.fleet.supervisor`): every dispatched shard
carries a wall-clock deadline enforced by a watchdog in the dispatch
loop — a worker silent past its deadline (no claim-file heartbeat) is
declared hung, its process reaped, and the shard rescheduled.  Failed
attempts retry with exponential backoff up to ``retries`` times
(default 0: byte-identical to the unsupervised path); a shard that
exhausts its budget moves to the **poison quarantine**
(:attr:`FleetResult.quarantined`, manifest state ``"quarantined"``) so
a keep-going run still completes.  SIGINT/SIGTERM stop dispatch, flush
the cache/manifest/telemetry, mark in-flight shards ``"interrupted"``
in the manifest, and re-raise
:class:`~repro.fleet.supervisor.RunInterrupted` so the CLI can exit
``128 + signum``; a subsequent ``--resume`` merges byte-identically to
an uninterrupted run.

Failure contract (mirrors the analysis fan-out of
:class:`~repro.core.pipeline.StudyPipeline`): every shard runs to
completion regardless of sibling failures; in keep-going mode failures
are isolated into :class:`ShardFailure` entries and the merge covers
the completed shards (a partial report), in fail-fast mode the first
failure is re-raised as :class:`FleetError` — after the in-flight
siblings finished, so their results still reached the cache.  A
``BrokenProcessPool`` (an OOM-killed or crashed worker process) no
longer aborts the run: the victim's shard consumes an attempt, innocent
in-flight siblings are rescheduled for free, and the pool is rebuilt.

Observability: one ``fleet.run`` span, one ``fleet.shard`` span per
shard (state + worker-measured seconds in attrs),
``fleet_shards_total{state=cached|completed|failed|quarantined|interrupted}``,
``fleet_cache_{hits,misses,writes}_total``, the ``fleet_shard_seconds``
histogram, and — only when supervision acts —
``fleet_shard_retries_total``, ``fleet_shards_quarantined_total``,
``fleet_watchdog_timeouts_total``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import traceback as _traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.fingerprint import FingerprintReport
from repro.faults.injector import faults_injected_counter
from repro.faults.plan import FaultPlan
from repro.fleet.cache import ShardCache
from repro.fleet.merge import merge_shard_results
from repro.fleet.shard import run_shard
from repro.fleet.spec import FleetSpec, ShardRange, code_version, default_workers, shard_key
from repro.fleet.supervisor import (
    DEFAULT_RETRY_BACKOFF,
    WATCHDOG_POLL_SECONDS,
    RunInterrupted,
    ShardSupervisor,
    ShardTask,
    default_shard_retries,
    read_claim_pid,
    reap,
)
from repro.inspector.generate import derive_rng
from repro.obs import Observability, ObsSnapshot, ObsSnapshotError, get_obs

MANIFEST_NAME = "manifest.json"


class FleetError(RuntimeError):
    """A fleet run that cannot proceed (fail-fast shard failure)."""


class FleetConfigError(FleetError):
    """A fleet run that was mis-configured (bad resume state, no cache dir).

    Separate from :class:`FleetError` so the CLI can map configuration
    mistakes to exit 2 and genuine shard failures to exit 1.
    """


@dataclass
class ShardFailure:
    """One shard whose worker raised and was isolated (keep-going mode)."""

    shard: int
    start: int
    stop: int
    error: str
    traceback: str = ""


@dataclass
class QuarantinedShard:
    """One poison shard that exhausted its retry budget."""

    shard: int
    start: int
    stop: int
    attempts: int
    error: str


@dataclass
class ShardState:
    """Where one shard's result came from, and how long it took."""

    index: int
    start: int
    stop: int
    state: str  # "cached" | "completed" | "failed" | "quarantined" | "interrupted"
    key: Optional[str] = None
    seconds: float = 0.0
    #: Worker attempts consumed (0 for cached shards, 1 for a clean compute).
    attempts: int = 0
    #: Last error, for failed/quarantined shards.
    error: str = ""


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    spec: FleetSpec
    workers: int
    #: The merged Table 2 report; ``None`` only when *every* shard failed.
    report: Optional[FingerprintReport]
    shard_states: List[ShardState] = field(default_factory=list)
    failures: List[ShardFailure] = field(default_factory=list)
    quarantined: List[QuarantinedShard] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_writes: int = 0
    retries_total: int = 0
    watchdog_timeouts: int = 0
    wall_seconds: float = 0.0
    resumed: bool = False

    @property
    def complete(self) -> bool:
        return not self.failures and not self.quarantined

    @property
    def shards_total(self) -> int:
        return len(self.shard_states)

    def summary(self) -> Dict[str, object]:
        states: Dict[str, int] = {}
        for shard in self.shard_states:
            states[shard.state] = states.get(shard.state, 0) + 1
        return {
            "shards": self.shards_total,
            "states": states,
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_writes": self.cache_writes,
            "retries": self.retries_total,
            "quarantined": len(self.quarantined),
            "watchdog_timeouts": self.watchdog_timeouts,
            "complete": self.complete,
            "wall_seconds": self.wall_seconds,
            "resumed": self.resumed,
        }


def _planned_worker_faults(spec: FleetSpec, plan: Optional[FaultPlan],
                           shards: List[ShardRange]) -> Dict[int, Dict[str, object]]:
    """Which worker fault (if any) each shard gets, deterministically.

    Explicit indices come straight from the plan; each ``*_rate`` draws
    from a PRNG derived from ``(seed, salt, seed_salt)`` so the same
    (seed, plan) pair schedules the same faults every run.  ``fail_rate``
    keeps its original ``"fleet-faults"`` stream so pre-supervision
    chaos schedules reproduce unchanged; hang/slow draw from their own
    streams.  When a shard is named by several kinds, fail beats hang
    beats slow.
    """
    if plan is None or plan.shards is None or plan.shards.is_noop:
        return {}
    sf = plan.shards
    count = len(shards)

    def rate_hits(salt: str, rate: float) -> set:
        hits = set()
        if rate > 0.0:
            rng = derive_rng(spec.seed, salt, plan.seed_salt)
            for shard in shards:
                if rng.random() < rate:
                    hits.add(shard.index)
        return hits

    fail = {i for i in sf.fail if i < count} | rate_hits("fleet-faults", sf.fail_rate)
    hang = {i for i in sf.hang if i < count} | rate_hits("fleet-faults-hang", sf.hang_rate)
    slow = {i for i in sf.slow if i < count} | rate_hits("fleet-faults-slow", sf.slow_rate)
    planned: Dict[int, Dict[str, object]] = {}
    for index in slow:
        planned[index] = {"kind": "slow", "factor": sf.slow_factor}
    for index in hang:
        planned[index] = {"kind": "hang", "seconds": sf.hang_seconds}
    for index in fail:
        planned[index] = {"kind": "fail"}
    return planned


def _teardown_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Force a pool down without joining its children.

    A plain ``shutdown(wait=True)`` joins worker processes — with a
    hung or zombie worker that join never returns — so the supervised
    teardown cancels what it can, then SIGKILLs the pool's pids.
    """
    if pool is None:
        return
    pids = list(getattr(pool, "_processes", None) or ())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 - teardown must not raise
        pass
    for pid in pids:
        reap(pid)


class FleetRunner:
    """Orchestrates one sharded fingerprinting run.

    Parameters mirror the ``repro fleet`` CLI flags; ``workers=None``
    resolves via ``REPRO_FLEET_WORKERS`` (default: CPU count),
    ``retries=None`` via ``REPRO_FLEET_RETRIES`` (default: 0 — the CLI
    passes its own default of 2), ``shard_deadline=None`` derives each
    shard's deadline from its household count (env override:
    ``REPRO_FLEET_DEADLINE``), and ``obs=None`` picks up the ambient
    observability context.
    """

    def __init__(
        self,
        spec: Optional[FleetSpec] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        resume: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        keep_going: bool = True,
        obs: Optional[Observability] = None,
        profile_hz: float = 0.0,
        retries: Optional[int] = None,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        shard_deadline: Optional[float] = None,
    ) -> None:
        self.spec = spec if spec is not None else FleetSpec()
        self.workers = max(1, workers if workers is not None else default_workers())
        self.cache = ShardCache(cache_dir) if cache_dir is not None else None
        self.resume = resume
        self.fault_plan = fault_plan
        self.keep_going = keep_going
        self.obs = obs if obs is not None else get_obs()
        #: Sampling rate handed to every computed shard's worker-side
        #: profiler; ``0.0`` (the default) keeps workers unprofiled and
        #: their payloads byte-identical to earlier builds.
        self.profile_hz = float(profile_hz)
        self.retries = retries if retries is not None else default_shard_retries()
        if self.retries < 0:
            raise FleetConfigError(f"retries must be >= 0, got {self.retries}")
        self.retry_backoff = float(retry_backoff)
        if self.retry_backoff < 0:
            raise FleetConfigError(
                f"retry backoff must be >= 0, got {self.retry_backoff}")
        self.shard_deadline = shard_deadline
        if shard_deadline is not None and shard_deadline <= 0:
            raise FleetConfigError(
                f"shard deadline must be > 0 seconds, got {shard_deadline}")
        if resume and self.cache is None:
            raise FleetConfigError("--resume requires a cache directory")

    # -- checkpoint manifest -------------------------------------------------------

    @property
    def manifest_path(self) -> Optional[Path]:
        return self.cache.root / MANIFEST_NAME if self.cache is not None else None

    def _load_manifest(self) -> Optional[dict]:
        path = self.manifest_path
        if path is None or not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def _check_resume(self) -> bool:
        """Validate the previous run's manifest; returns True when resuming."""
        if not self.resume:
            return False
        manifest = self._load_manifest()
        if manifest is None:
            raise FleetConfigError(
                f"--resume: no readable manifest in {self.cache.root}; "
                "run once with --cache-dir first")
        if manifest.get("spec") != self.spec.to_dict():
            raise FleetConfigError(
                "--resume: cache manifest was written for a different fleet "
                f"spec ({manifest.get('spec')} != {self.spec.to_dict()})")
        if manifest.get("code_version") != code_version():
            raise FleetConfigError(
                "--resume: generator/analysis code changed since the previous "
                "run; cached shards are stale (drop --resume to regenerate)")
        return True

    def _write_manifest(self, states: Dict[int, ShardState]) -> None:
        path = self.manifest_path
        if path is None:
            return
        payload = {
            "spec": self.spec.to_dict(),
            "code_version": code_version(),
            "workers": self.workers,
            "shards": {
                str(index): {
                    "start": state.start,
                    "stop": state.stop,
                    "state": state.state,
                    "key": state.key,
                    "seconds": state.seconds,
                    "attempts": state.attempts,
                    "error": state.error,
                }
                for index, state in sorted(states.items())
            },
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-manifest-",
                                   suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- observability helpers -----------------------------------------------------

    def _record_shard(self, parent_span, state: ShardState) -> None:
        obs = self.obs
        if not obs.enabled:
            return
        with obs.tracer.span("fleet.shard", _parent=parent_span,
                             shard=state.index, state=state.state,
                             households=state.stop - state.start,
                             shard_seconds=state.seconds):
            pass
        obs.metrics.counter(
            "fleet_shards_total", "fleet shards by terminal state",
        ).inc(state=state.state)
        if state.state == "completed":
            obs.metrics.histogram(
                "fleet_shard_seconds", "worker-measured seconds per computed shard",
            ).observe(state.seconds)

    def _absorb_snapshots(self, run_span,
                          results: Dict[int, dict],
                          states: Dict[int, ShardState]) -> None:
        """Merge every shard's ``ObsSnapshot`` into the parent context.

        Applied in **shard-index order** (not completion order) so the
        merged registry is byte-identical at any worker count; shards
        served from the cache replay their stored snapshot with the
        ``from_cache="true"`` label on every sample and a
        ``from_cache`` attr on their absorbed spans.
        """
        obs = self.obs
        if not obs.enabled:
            return
        for index in sorted(results):
            raw = results[index].get("obs")
            if raw is None:
                continue  # pre-snapshot cache entry or foreign payload
            try:
                snapshot = ObsSnapshot.from_dict(raw)
            except ObsSnapshotError as error:
                obs.logger("fleet").warning(
                    "snapshot_rejected", shard=index, error=str(error))
                continue
            cached = states[index].state == "cached"
            snapshot.apply(
                obs,
                extra_labels={"from_cache": "true"} if cached else None,
                span_parent=run_span,
                span_attrs={"shard": index, "from_cache": str(cached).lower()},
            )

    def _record_cache_metrics(self) -> None:
        obs = self.obs
        if not obs.enabled or self.cache is None:
            return
        obs.metrics.counter(
            "fleet_cache_hits_total", "shard results served from the cache",
        ).inc(self.cache.hits)
        obs.metrics.counter(
            "fleet_cache_misses_total", "shard results absent from the cache",
        ).inc(self.cache.misses)
        obs.metrics.counter(
            "fleet_cache_writes_total", "shard results checkpointed to the cache",
        ).inc(self.cache.writes)

    # -- the run -------------------------------------------------------------------

    def run(self) -> FleetResult:
        """Run the fleet; guarantees a terminal ``run_end`` event.

        Every exit path of a started run emits exactly one ``run_end``
        with an ``outcome`` of ``"ok"``, ``"failed"``, or
        ``"interrupted"`` (configuration errors raised before dispatch
        emit nothing — no run ever started).
        """
        self._run_end_emitted = False
        try:
            return self._run()
        except (RunInterrupted, KeyboardInterrupt):
            raise  # run_end(outcome="interrupted") already flushed
        except FleetConfigError:
            raise
        except BaseException:
            if not self._run_end_emitted:
                self.obs.events.emit("run_end", kind="fleet",
                                     complete=False, outcome="failed")
            raise

    def _run(self) -> FleetResult:  # noqa: C901 - the dispatch engine
        obs = self.obs
        started = time.perf_counter()
        resumed = self._check_resume()
        shards = self.spec.shards()
        faults = _planned_worker_faults(self.spec, self.fault_plan, shards)
        spec_dict = self.spec.to_dict()
        # Workers join the parent's NDJSON stream (append mode) when it
        # is file-backed; ``-``/in-memory buses have no path to share.
        events_path = getattr(obs.events, "path", None)

        states: Dict[int, ShardState] = {}
        results: Dict[int, dict] = {}
        failures: List[ShardFailure] = []
        quarantined: List[QuarantinedShard] = []
        supervisor = ShardSupervisor(retries=self.retries,
                                     backoff=self.retry_backoff,
                                     deadline=self.shard_deadline)
        logger = obs.logger("fleet")
        events = obs.events
        events.emit("run_start", kind="fleet", seed=self.spec.seed,
                    households=self.spec.households, shards=len(shards),
                    workers=self.workers, resumed=resumed)

        def progress() -> Dict[str, int]:
            tally = {"done": 0, "cached": 0, "failed": 0, "quarantined": 0}
            for state in states.values():
                if state.state == "completed":
                    tally["done"] += 1
                elif state.state == "cached":
                    tally["cached"] += 1
                elif state.state == "quarantined":
                    tally["quarantined"] += 1
                else:
                    tally["failed"] += 1
            tally["total"] = len(shards)
            return tally

        with ExitStack() as stack:
            run_span = None
            if obs.enabled:
                run_span = stack.enter_context(obs.tracer.span(
                    "fleet.run", seed=self.spec.seed,
                    households=self.spec.households,
                    shards=len(shards), workers=self.workers))
            if obs.enabled:
                obs.metrics.gauge(
                    "fleet_workers", "process-pool width of the fleet run",
                ).set(self.workers)

            # Phase 1: serve every shard the cache already has.
            pending: List[ShardRange] = []
            keys: Dict[int, str] = {}
            for shard in shards:
                key = shard_key(self.spec, shard) if self.cache is not None else None
                keys[shard.index] = key
                payload = self.cache.load(key) if self.cache is not None else None
                if payload is not None:
                    results[shard.index] = payload
                    states[shard.index] = ShardState(
                        index=shard.index, start=shard.start, stop=shard.stop,
                        state="cached", key=key,
                        seconds=float(payload.get("seconds", 0.0)))
                    self._record_shard(run_span, states[shard.index])
                    events.emit("shard_cached", shard=shard.index,
                                start=shard.start, stop=shard.stop, **progress())
                else:
                    pending.append(shard)
                    events.emit("shard_queued", shard=shard.index,
                                start=shard.start, stop=shard.stop)
            if obs.enabled and self.cache is not None:
                logger.info("cache_scan", hits=self.cache.hits,
                            misses=self.cache.misses)

            # Phase 2: compute the rest under supervision.
            def record_success(task: ShardTask, payload: dict) -> None:
                results[task.index] = payload
                if self.cache is not None:
                    self.cache.store(keys[task.index], payload)
                states[task.index] = ShardState(
                    index=task.index, start=task.start, stop=task.stop,
                    state="completed", key=keys[task.index],
                    seconds=float(payload.get("seconds", 0.0)),
                    attempts=task.attempts + 1)
                events.emit("shard_done", shard=task.index,
                            start=task.start, stop=task.stop,
                            seconds=states[task.index].seconds, **progress())
                self._record_shard(run_span, states[task.index])
                self._write_manifest(states)
                events.heartbeat(kind="fleet", **progress())

            def attempt_failed(task: ShardTask, error: str,
                               tb: str = "") -> bool:
                """Route one failed attempt; True when the task will retry."""
                verdict = supervisor.on_attempt_failed(task, error, tb)
                if verdict == "retry":
                    backoff = supervisor.backoff_for(task.attempts)
                    if obs.enabled:
                        obs.metrics.counter(
                            "fleet_shard_retries_total",
                            "shard attempts rescheduled after a failure",
                        ).inc()
                        logger.warning("shard_retry", shard=task.index,
                                       attempt=task.attempts, error=error)
                    events.emit("shard_retry", shard=task.index,
                                start=task.start, stop=task.stop,
                                attempt=task.attempts,
                                retries_left=supervisor.retries - task.attempts,
                                backoff_seconds=round(backoff, 6),
                                error=error, **progress())
                    return True
                if supervisor.retries > 0:
                    # Budget exhausted with retries enabled: poison quarantine.
                    quarantined.append(QuarantinedShard(
                        shard=task.index, start=task.start, stop=task.stop,
                        attempts=task.attempts, error=task.last_error))
                    states[task.index] = ShardState(
                        index=task.index, start=task.start, stop=task.stop,
                        state="quarantined", key=keys[task.index],
                        attempts=task.attempts, error=task.last_error)
                    if obs.enabled:
                        obs.metrics.counter(
                            "fleet_shards_quarantined_total",
                            "poison shards that exhausted their retry budget",
                        ).inc()
                        logger.error("shard_quarantined", shard=task.index,
                                     attempts=task.attempts, error=task.last_error)
                    events.emit("shard_quarantined", shard=task.index,
                                start=task.start, stop=task.stop,
                                attempts=task.attempts, error=task.last_error,
                                **progress())
                else:
                    failures.append(ShardFailure(
                        shard=task.index, start=task.start, stop=task.stop,
                        error=task.last_error, traceback=task.last_traceback))
                    states[task.index] = ShardState(
                        index=task.index, start=task.start, stop=task.stop,
                        state="failed", key=keys[task.index],
                        attempts=task.attempts, error=task.last_error)
                    if obs.enabled:
                        logger.error("shard_failed", shard=task.index,
                                     error=task.last_error)
                    events.emit("shard_failed", shard=task.index,
                                start=task.start, stop=task.stop,
                                error=task.last_error, **progress())
                self._record_shard(run_span, states[task.index])
                self._write_manifest(states)
                events.heartbeat(kind="fleet", **progress())
                return False

            def count_injected(task: ShardTask) -> None:
                if task.fault is not None and obs.enabled:
                    faults_injected_counter(obs).inc(
                        kind=f"shard_{task.fault['kind']}")

            tasks = [supervisor.task_for(shard, faults.get(shard.index))
                     for shard in pending]
            # A hung worker can only be supervised from outside its
            # process, so hang faults force the pool even at workers=1.
            needs_pool = any(t.fault is not None and t.fault.get("kind") == "hang"
                             for t in tasks)
            use_pool = bool(tasks) and (needs_pool
                                        or (self.workers > 1 and len(tasks) > 1))

            claim_dir: Optional[str] = None
            pool_box: Dict[str, object] = {"pool": None}
            inflight: Dict[object, ShardTask] = {}
            try:
                if not use_pool:
                    queue = deque(tasks)
                    while queue:
                        task = queue.popleft()
                        delay = task.not_before - supervisor.clock()
                        if delay > 0:
                            time.sleep(delay)
                        supervisor.record_dispatch(task)
                        count_injected(task)
                        events.emit("shard_running", shard=task.index,
                                    start=task.start, stop=task.stop,
                                    attempt=task.next_attempt)
                        try:
                            payload = run_shard(
                                spec_dict, task.start, task.stop,
                                inject_fault=task.fault,
                                profile_hz=self.profile_hz,
                                events_path=events_path,
                                shard_index=task.index)
                        except Exception as exc:  # noqa: BLE001 - isolated
                            if attempt_failed(
                                    task, f"{type(exc).__name__}: {exc}",
                                    "".join(_traceback.format_exception(
                                        type(exc), exc, exc.__traceback__))):
                                queue.append(task)
                        else:
                            record_success(task, payload)
                elif tasks:
                    claim_dir = tempfile.mkdtemp(prefix="repro-fleet-claims-")
                    for task in tasks:
                        task.claim_path = os.path.join(
                            claim_dir, f"shard-{task.index}.claim")
                    width = min(self.workers, len(tasks))
                    pool_box["pool"] = ProcessPoolExecutor(max_workers=width)
                    queue = deque(tasks)
                    abandoned: set = set()
                    expected_break = False
                    zombies = False
                    rebuilds = 0
                    max_rebuilds = len(tasks) * (supervisor.retries + 2) + 4

                    def submit(task: ShardTask) -> bool:
                        supervisor.record_dispatch(task)
                        count_injected(task)
                        try:
                            future = pool_box["pool"].submit(
                                run_shard, spec_dict, task.start, task.stop,
                                inject_fault=task.fault,
                                profile_hz=self.profile_hz,
                                events_path=events_path,
                                shard_index=task.index,
                                claim_path=task.claim_path)
                        except BrokenProcessPool:
                            # Breakage not yet drained; retry next cycle.
                            queue.appendleft(task)
                            return False
                        inflight[future] = task
                        events.emit("shard_running", shard=task.index,
                                    start=task.start, stop=task.stop,
                                    attempt=task.next_attempt)
                        return True

                    while queue or inflight:
                        now = supervisor.clock()
                        for task in [t for t in queue if t.not_before <= now]:
                            queue.remove(task)
                            if not submit(task):
                                break
                        if inflight:
                            done, _ = wait(set(inflight),
                                           timeout=WATCHDOG_POLL_SECONDS,
                                           return_when=FIRST_COMPLETED)
                        else:
                            soonest = min(t.not_before for t in queue)
                            pause = soonest - supervisor.clock()
                            if pause > 0:
                                time.sleep(min(pause, 0.25))
                            continue

                        pool_broke = False
                        broken_tasks: List[ShardTask] = []
                        for future in done:
                            task = inflight.pop(future)
                            if future in abandoned:
                                abandoned.discard(future)
                                future.exception()  # observed; already handled
                                continue
                            try:
                                payload = future.result()
                            except BrokenProcessPool:
                                pool_broke = True
                                broken_tasks.append(task)
                            except Exception as exc:  # noqa: BLE001
                                if attempt_failed(
                                        task, f"{type(exc).__name__}: {exc}",
                                        "".join(_traceback.format_exception(
                                            type(exc), exc, exc.__traceback__))):
                                    queue.append(task)
                            else:
                                record_success(task, payload)

                        # Watchdog scan over what is still in flight.
                        live = {f: t for f, t in inflight.items()
                                if f not in abandoned}
                        for verdict in supervisor.overdue(list(live.values())):
                            task = verdict.task
                            future = next(f for f, t in live.items() if t is task)
                            if verdict.pid is None:
                                # No claim yet: either still queued inside the
                                # pool (cancellable — requeue for free) or a
                                # worker hung before claiming (rare; give it
                                # one extra deadline, then abandon it).
                                if future.cancel():
                                    inflight.pop(future)
                                    task.not_before = 0.0
                                    queue.append(task)
                                elif verdict.silent_seconds > 2 * task.deadline:
                                    supervisor.note_timeout(task)
                                    abandoned.add(future)
                                    zombies = True
                                    if attempt_failed(task, task.last_error):
                                        queue.append(task)
                                continue
                            supervisor.note_timeout(task)
                            if obs.enabled:
                                obs.metrics.counter(
                                    "fleet_watchdog_timeouts_total",
                                    "hung workers reaped by the shard watchdog",
                                ).inc()
                                logger.error(
                                    "watchdog_timeout", shard=task.index,
                                    pid=verdict.pid,
                                    silent_seconds=round(verdict.silent_seconds, 3))
                            events.emit(
                                "watchdog_timeout", shard=task.index,
                                start=task.start, stop=task.stop,
                                pid=verdict.pid,
                                silent_seconds=round(verdict.silent_seconds, 3),
                                deadline=task.deadline)
                            abandoned.add(future)
                            if reap(verdict.pid):
                                expected_break = True
                            if attempt_failed(task, task.last_error):
                                queue.append(task)

                        broken = getattr(pool_box["pool"], "_broken", False)
                        if pool_broke or broken:
                            # Drain everything: a broken pool finishes nothing.
                            for future, task in list(inflight.items()):
                                if future in abandoned:
                                    abandoned.discard(future)
                                    continue
                                payload = None
                                if future.done() and not future.cancelled():
                                    try:
                                        payload = future.result()
                                    except BaseException:  # noqa: BLE001
                                        payload = None
                                if payload is not None:
                                    record_success(task, payload)
                                else:
                                    broken_tasks.append(task)
                            inflight.clear()
                            abandoned.clear()
                            if expected_break:
                                # The watchdog reaped a worker; its shard was
                                # already charged. Innocent in-flight siblings
                                # reschedule without consuming an attempt.
                                expected_break = False
                                for task in broken_tasks:
                                    task.not_before = 0.0
                                    queue.append(task)
                            else:
                                for task in broken_tasks:
                                    if attempt_failed(
                                            task,
                                            "BrokenProcessPool: a worker "
                                            "process died unexpectedly"):
                                        queue.append(task)
                            rebuilds += 1
                            if rebuilds > max_rebuilds:
                                raise FleetError(
                                    f"fleet pool broke {rebuilds} times; "
                                    "giving up")
                            _teardown_pool(pool_box["pool"])
                            pool_box["pool"] = None
                            if queue:
                                if obs.enabled:
                                    logger.warning("pool_rebuilt",
                                                   rebuilds=rebuilds,
                                                   requeued=len(broken_tasks))
                                pool_box["pool"] = ProcessPoolExecutor(
                                    max_workers=width)

                    if zombies:
                        _teardown_pool(pool_box["pool"])
                    elif pool_box["pool"] is not None:
                        pool_box["pool"].shutdown(wait=True)
                    pool_box["pool"] = None
            except (RunInterrupted, KeyboardInterrupt) as interrupt:
                self._flush_interrupted(
                    interrupt, pool_box, inflight, shards, keys, states,
                    results, failures, quarantined, supervisor, run_span,
                    progress)
                raise
            finally:
                if claim_dir is not None:
                    shutil.rmtree(claim_dir, ignore_errors=True)

            self._record_cache_metrics()
            # Fold worker telemetry into this context in shard order,
            # so the merged registry is independent of completion order.
            self._absorb_snapshots(run_span, results, states)

            # Phase 3: merge in household order.
            report: Optional[FingerprintReport] = None
            if results:
                merged = [results[index] for index in sorted(results)]
                if obs.enabled:
                    with obs.tracer.span("fleet.merge", _parent=run_span,
                                         shards=len(merged)):
                        report = merge_shard_results(self.spec, merged)
                else:
                    report = merge_shard_results(self.spec, merged)

            if (failures or quarantined) and not self.keep_going:
                events.emit("run_end", kind="fleet", shards=len(shards),
                            failed=len(failures), quarantined=len(quarantined),
                            complete=False, outcome="failed")
                self._run_end_emitted = True
                if failures:
                    first = failures[0]
                    raise FleetError(
                        f"shard {first.shard} (households [{first.start}, "
                        f"{first.stop})) failed: {first.error}")
                poison = quarantined[0]
                raise FleetError(
                    f"shard {poison.shard} (households [{poison.start}, "
                    f"{poison.stop})) quarantined after {poison.attempts} "
                    f"attempts: {poison.error}")

            result = FleetResult(
                spec=self.spec,
                workers=self.workers,
                report=report,
                shard_states=[states[index] for index in sorted(states)],
                failures=failures,
                quarantined=quarantined,
                cache_hits=self.cache.hits if self.cache is not None else 0,
                cache_misses=self.cache.misses if self.cache is not None else 0,
                cache_writes=self.cache.writes if self.cache is not None else 0,
                retries_total=supervisor.retries_used,
                watchdog_timeouts=supervisor.watchdog_timeouts,
                wall_seconds=time.perf_counter() - started,
                resumed=resumed,
            )
            if run_span is not None:
                run_span.set_attr("failed_shards", len(failures))
                run_span.set_attr("cache_hits", result.cache_hits)
                if quarantined:
                    run_span.set_attr("quarantined_shards", len(quarantined))
            if obs.enabled:
                logger.info("run_complete", shards=result.shards_total,
                            failed=len(failures), cache_hits=result.cache_hits,
                            wall_seconds=result.wall_seconds)
            events.emit("run_end", kind="fleet", shards=result.shards_total,
                        failed=len(failures), cache_hits=result.cache_hits,
                        quarantined=len(quarantined),
                        wall_seconds=round(result.wall_seconds, 6),
                        complete=result.complete, outcome="ok")
            self._run_end_emitted = True
            return result

    def _flush_interrupted(self, interrupt, pool_box, inflight, shards, keys,
                           states, results, failures, quarantined, supervisor,
                           run_span, progress) -> None:
        """Graceful-shutdown path: checkpoint everything, then unwind.

        Reaps claimed workers (their pool would otherwise be joined at
        interpreter exit), marks every shard without a terminal state
        ``"interrupted"`` in the manifest, flushes cache metrics and the
        absorbed worker telemetry, and emits ``run_interrupted`` plus
        the terminal ``run_end`` with ``outcome="interrupted"`` — so
        ``--metrics-out``/``--events-out`` artifacts from an interrupted
        run are complete, and ``--resume`` picks up from the last
        checkpoint byte-identically.
        """
        obs = self.obs
        events = obs.events
        signum = getattr(interrupt, "signum", 2)
        for task in inflight.values():
            reap(read_claim_pid(task.claim_path))
        _teardown_pool(pool_box.get("pool"))
        pool_box["pool"] = None
        for shard in shards:
            if shard.index not in states:
                states[shard.index] = ShardState(
                    index=shard.index, start=shard.start, stop=shard.stop,
                    state="interrupted", key=keys.get(shard.index))
                self._record_shard(run_span, states[shard.index])
        self._write_manifest(states)
        self._record_cache_metrics()
        self._absorb_snapshots(run_span, results, states)
        if obs.enabled:
            obs.logger("fleet").warning(
                "run_interrupted", signum=signum,
                done=sum(1 for s in states.values()
                         if s.state in ("cached", "completed")),
                shards=len(shards))
        events.emit("run_interrupted", kind="fleet", signum=signum, **progress())
        events.emit("run_end", kind="fleet", shards=len(shards),
                    failed=len(failures), quarantined=len(quarantined),
                    complete=False, outcome="interrupted")
        self._run_end_emitted = True


def run_fleet(
    spec: Optional[FleetSpec] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    keep_going: bool = True,
    obs: Optional[Observability] = None,
    profile_hz: float = 0.0,
    retries: Optional[int] = None,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    shard_deadline: Optional[float] = None,
) -> FleetResult:
    """One-call fleet run; see :class:`FleetRunner` for the knobs."""
    return FleetRunner(
        spec=spec, workers=workers, cache_dir=cache_dir, resume=resume,
        fault_plan=fault_plan, keep_going=keep_going, obs=obs,
        profile_hz=profile_hz, retries=retries, retry_backoff=retry_backoff,
        shard_deadline=shard_deadline,
    ).run()
