"""The fleet orchestrator: dispatch shards, cache, merge, observe.

``FleetRunner`` plans the shard partition from a
:class:`~repro.fleet.spec.FleetSpec`, serves completed shards from the
content-addressed cache, dispatches the rest to a
``ProcessPoolExecutor`` (``workers=1`` runs inline — no pool, no
process overhead), checkpoints each completion, and merges the partials
into the population :class:`~repro.core.fingerprint.FingerprintReport`.

Failure contract (mirrors the analysis fan-out of
:class:`~repro.core.pipeline.StudyPipeline`): every shard runs to
completion regardless of sibling failures; in keep-going mode failures
are isolated into :class:`ShardFailure` entries and the merge covers
the completed shards (a partial report), in fail-fast mode the first
failure is re-raised as :class:`FleetError` — after the in-flight
siblings finished, so their results still reached the cache.

Observability: one ``fleet.run`` span, one ``fleet.shard`` span per
shard (state + worker-measured seconds in attrs),
``fleet_shards_total{state=cached|completed|failed}``,
``fleet_cache_{hits,misses,writes}_total``, and the
``fleet_shard_seconds`` histogram.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import traceback as _traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.core.fingerprint import FingerprintReport
from repro.faults.plan import FaultPlan
from repro.fleet.cache import ShardCache
from repro.fleet.merge import merge_shard_results
from repro.fleet.shard import run_shard
from repro.fleet.spec import FleetSpec, ShardRange, code_version, default_workers, shard_key
from repro.inspector.generate import derive_rng
from repro.obs import Observability, ObsSnapshot, ObsSnapshotError, get_obs

MANIFEST_NAME = "manifest.json"


class FleetError(RuntimeError):
    """A fleet run that cannot proceed (fail-fast shard failure)."""


class FleetConfigError(FleetError):
    """A fleet run that was mis-configured (bad resume state, no cache dir).

    Separate from :class:`FleetError` so the CLI can map configuration
    mistakes to exit 2 and genuine shard failures to exit 1.
    """


@dataclass
class ShardFailure:
    """One shard whose worker raised and was isolated (keep-going mode)."""

    shard: int
    start: int
    stop: int
    error: str
    traceback: str = ""


@dataclass
class ShardState:
    """Where one shard's result came from, and how long it took."""

    index: int
    start: int
    stop: int
    state: str  # "cached" | "completed" | "failed"
    key: Optional[str] = None
    seconds: float = 0.0


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    spec: FleetSpec
    workers: int
    #: The merged Table 2 report; ``None`` only when *every* shard failed.
    report: Optional[FingerprintReport]
    shard_states: List[ShardState] = field(default_factory=list)
    failures: List[ShardFailure] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_writes: int = 0
    wall_seconds: float = 0.0
    resumed: bool = False

    @property
    def complete(self) -> bool:
        return not self.failures

    @property
    def shards_total(self) -> int:
        return len(self.shard_states)

    def summary(self) -> Dict[str, object]:
        states: Dict[str, int] = {}
        for shard in self.shard_states:
            states[shard.state] = states.get(shard.state, 0) + 1
        return {
            "shards": self.shards_total,
            "states": states,
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_writes": self.cache_writes,
            "complete": self.complete,
            "wall_seconds": self.wall_seconds,
            "resumed": self.resumed,
        }


def _planned_failures(spec: FleetSpec, plan: Optional[FaultPlan],
                      shards: List[ShardRange]) -> Set[int]:
    """Which shard indices the fault plan kills, deterministically.

    Explicit indices come straight from ``shards.fail``; ``fail_rate``
    draws from a PRNG derived from ``(seed, "fleet-faults", seed_salt)``
    so the same (seed, plan) pair kills the same shards every run.
    """
    if plan is None or plan.shards is None or plan.shards.is_noop:
        return set()
    doomed = {index for index in plan.shards.fail if index < len(shards)}
    if plan.shards.fail_rate > 0.0:
        rng = derive_rng(spec.seed, "fleet-faults", plan.seed_salt)
        for shard in shards:
            if rng.random() < plan.shards.fail_rate:
                doomed.add(shard.index)
    return doomed


class FleetRunner:
    """Orchestrates one sharded fingerprinting run.

    Parameters mirror the ``repro fleet`` CLI flags; ``workers=None``
    resolves via ``REPRO_FLEET_WORKERS`` (default: CPU count) and
    ``obs=None`` picks up the ambient observability context.
    """

    def __init__(
        self,
        spec: Optional[FleetSpec] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        resume: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        keep_going: bool = True,
        obs: Optional[Observability] = None,
        profile_hz: float = 0.0,
    ) -> None:
        self.spec = spec if spec is not None else FleetSpec()
        self.workers = max(1, workers if workers is not None else default_workers())
        self.cache = ShardCache(cache_dir) if cache_dir is not None else None
        self.resume = resume
        self.fault_plan = fault_plan
        self.keep_going = keep_going
        self.obs = obs if obs is not None else get_obs()
        #: Sampling rate handed to every computed shard's worker-side
        #: profiler; ``0.0`` (the default) keeps workers unprofiled and
        #: their payloads byte-identical to earlier builds.
        self.profile_hz = float(profile_hz)
        if resume and self.cache is None:
            raise FleetConfigError("--resume requires a cache directory")

    # -- checkpoint manifest -------------------------------------------------------

    @property
    def manifest_path(self) -> Optional[Path]:
        return self.cache.root / MANIFEST_NAME if self.cache is not None else None

    def _load_manifest(self) -> Optional[dict]:
        path = self.manifest_path
        if path is None or not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def _check_resume(self) -> bool:
        """Validate the previous run's manifest; returns True when resuming."""
        if not self.resume:
            return False
        manifest = self._load_manifest()
        if manifest is None:
            raise FleetConfigError(
                f"--resume: no readable manifest in {self.cache.root}; "
                "run once with --cache-dir first")
        if manifest.get("spec") != self.spec.to_dict():
            raise FleetConfigError(
                "--resume: cache manifest was written for a different fleet "
                f"spec ({manifest.get('spec')} != {self.spec.to_dict()})")
        if manifest.get("code_version") != code_version():
            raise FleetConfigError(
                "--resume: generator/analysis code changed since the previous "
                "run; cached shards are stale (drop --resume to regenerate)")
        return True

    def _write_manifest(self, states: Dict[int, ShardState]) -> None:
        path = self.manifest_path
        if path is None:
            return
        payload = {
            "spec": self.spec.to_dict(),
            "code_version": code_version(),
            "workers": self.workers,
            "shards": {
                str(index): {
                    "start": state.start,
                    "stop": state.stop,
                    "state": state.state,
                    "key": state.key,
                    "seconds": state.seconds,
                }
                for index, state in sorted(states.items())
            },
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-manifest-",
                                   suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- observability helpers -----------------------------------------------------

    def _record_shard(self, parent_span, state: ShardState) -> None:
        obs = self.obs
        if not obs.enabled:
            return
        with obs.tracer.span("fleet.shard", _parent=parent_span,
                             shard=state.index, state=state.state,
                             households=state.stop - state.start,
                             shard_seconds=state.seconds):
            pass
        obs.metrics.counter(
            "fleet_shards_total", "fleet shards by terminal state",
        ).inc(state=state.state)
        if state.state == "completed":
            obs.metrics.histogram(
                "fleet_shard_seconds", "worker-measured seconds per computed shard",
            ).observe(state.seconds)

    def _absorb_snapshots(self, run_span,
                          results: Dict[int, dict],
                          states: Dict[int, ShardState]) -> None:
        """Merge every shard's ``ObsSnapshot`` into the parent context.

        Applied in **shard-index order** (not completion order) so the
        merged registry is byte-identical at any worker count; shards
        served from the cache replay their stored snapshot with the
        ``from_cache="true"`` label on every sample and a
        ``from_cache`` attr on their absorbed spans.
        """
        obs = self.obs
        if not obs.enabled:
            return
        for index in sorted(results):
            raw = results[index].get("obs")
            if raw is None:
                continue  # pre-snapshot cache entry or foreign payload
            try:
                snapshot = ObsSnapshot.from_dict(raw)
            except ObsSnapshotError as error:
                obs.logger("fleet").warning(
                    "snapshot_rejected", shard=index, error=str(error))
                continue
            cached = states[index].state == "cached"
            snapshot.apply(
                obs,
                extra_labels={"from_cache": "true"} if cached else None,
                span_parent=run_span,
                span_attrs={"shard": index, "from_cache": str(cached).lower()},
            )

    def _record_cache_metrics(self) -> None:
        obs = self.obs
        if not obs.enabled or self.cache is None:
            return
        obs.metrics.counter(
            "fleet_cache_hits_total", "shard results served from the cache",
        ).inc(self.cache.hits)
        obs.metrics.counter(
            "fleet_cache_misses_total", "shard results absent from the cache",
        ).inc(self.cache.misses)
        obs.metrics.counter(
            "fleet_cache_writes_total", "shard results checkpointed to the cache",
        ).inc(self.cache.writes)

    # -- the run -------------------------------------------------------------------

    def run(self) -> FleetResult:
        obs = self.obs
        started = time.perf_counter()
        resumed = self._check_resume()
        shards = self.spec.shards()
        doomed = _planned_failures(self.spec, self.fault_plan, shards)
        spec_dict = self.spec.to_dict()
        # Workers join the parent's NDJSON stream (append mode) when it
        # is file-backed; ``-``/in-memory buses have no path to share.
        events_path = getattr(obs.events, "path", None)

        states: Dict[int, ShardState] = {}
        results: Dict[int, dict] = {}
        failures: List[ShardFailure] = []
        logger = obs.logger("fleet")
        events = obs.events
        events.emit("run_start", kind="fleet", seed=self.spec.seed,
                    households=self.spec.households, shards=len(shards),
                    workers=self.workers, resumed=resumed)

        def progress() -> Dict[str, int]:
            tally = {"done": 0, "cached": 0, "failed": 0}
            for state in states.values():
                if state.state == "completed":
                    tally["done"] += 1
                elif state.state == "cached":
                    tally["cached"] += 1
                else:
                    tally["failed"] += 1
            tally["total"] = len(shards)
            return tally

        with ExitStack() as stack:
            run_span = None
            if obs.enabled:
                run_span = stack.enter_context(obs.tracer.span(
                    "fleet.run", seed=self.spec.seed,
                    households=self.spec.households,
                    shards=len(shards), workers=self.workers))
            if obs.enabled:
                obs.metrics.gauge(
                    "fleet_workers", "process-pool width of the fleet run",
                ).set(self.workers)

            # Phase 1: serve every shard the cache already has.
            pending: List[ShardRange] = []
            keys: Dict[int, str] = {}
            for shard in shards:
                key = shard_key(self.spec, shard) if self.cache is not None else None
                keys[shard.index] = key
                payload = self.cache.load(key) if self.cache is not None else None
                if payload is not None:
                    results[shard.index] = payload
                    states[shard.index] = ShardState(
                        index=shard.index, start=shard.start, stop=shard.stop,
                        state="cached", key=key,
                        seconds=float(payload.get("seconds", 0.0)))
                    self._record_shard(run_span, states[shard.index])
                    events.emit("shard_cached", shard=shard.index,
                                start=shard.start, stop=shard.stop, **progress())
                else:
                    pending.append(shard)
                    events.emit("shard_queued", shard=shard.index,
                                start=shard.start, stop=shard.stop)
            if obs.enabled and self.cache is not None:
                logger.info("cache_scan", hits=self.cache.hits,
                            misses=self.cache.misses)

            # Phase 2: compute the rest (inline at workers=1, else pool).
            def finish(shard: ShardRange, payload: Optional[dict],
                       error: Optional[BaseException]) -> None:
                key = keys[shard.index]
                if error is not None:
                    failures.append(ShardFailure(
                        shard=shard.index, start=shard.start, stop=shard.stop,
                        error=f"{type(error).__name__}: {error}",
                        traceback="".join(_traceback.format_exception(
                            type(error), error, error.__traceback__)),
                    ))
                    states[shard.index] = ShardState(
                        index=shard.index, start=shard.start, stop=shard.stop,
                        state="failed", key=key)
                    if obs.enabled:
                        logger.error("shard_failed", shard=shard.index,
                                     error=failures[-1].error)
                    events.emit("shard_failed", shard=shard.index,
                                start=shard.start, stop=shard.stop,
                                error=failures[-1].error, **progress())
                else:
                    results[shard.index] = payload
                    if self.cache is not None:
                        self.cache.store(key, payload)
                    states[shard.index] = ShardState(
                        index=shard.index, start=shard.start, stop=shard.stop,
                        state="completed", key=key,
                        seconds=float(payload.get("seconds", 0.0)))
                    events.emit("shard_done", shard=shard.index,
                                start=shard.start, stop=shard.stop,
                                seconds=states[shard.index].seconds, **progress())
                self._record_shard(run_span, states[shard.index])
                self._write_manifest(states)
                events.heartbeat(kind="fleet", **progress())

            if self.workers == 1 or len(pending) <= 1:
                for shard in pending:
                    events.emit("shard_running", shard=shard.index,
                                start=shard.start, stop=shard.stop)
                    try:
                        payload = run_shard(spec_dict, shard.start, shard.stop,
                                            inject_failure=shard.index in doomed,
                                            profile_hz=self.profile_hz,
                                            events_path=events_path,
                                            shard_index=shard.index)
                    except Exception as exc:  # noqa: BLE001 - isolated via finish()
                        finish(shard, None, exc)
                    else:
                        finish(shard, payload, None)
            elif pending:
                with ProcessPoolExecutor(max_workers=min(self.workers,
                                                         len(pending))) as pool:
                    futures = {}
                    for shard in pending:
                        futures[pool.submit(
                            run_shard, spec_dict, shard.start, shard.stop,
                            inject_failure=shard.index in doomed,
                            profile_hz=self.profile_hz,
                            events_path=events_path,
                            shard_index=shard.index)] = shard
                        events.emit("shard_running", shard=shard.index,
                                    start=shard.start, stop=shard.stop)
                    remaining = set(futures)
                    while remaining:
                        done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                        for future in done:
                            shard = futures[future]
                            try:
                                payload = future.result()
                            except Exception as exc:  # noqa: BLE001
                                finish(shard, None, exc)
                            else:
                                finish(shard, payload, None)

            self._record_cache_metrics()
            # Fold worker telemetry into this context in shard order,
            # so the merged registry is independent of completion order.
            self._absorb_snapshots(run_span, results, states)

            # Phase 3: merge in household order.
            report: Optional[FingerprintReport] = None
            if results:
                merged = [results[index] for index in sorted(results)]
                if obs.enabled:
                    with obs.tracer.span("fleet.merge", _parent=run_span,
                                         shards=len(merged)):
                        report = merge_shard_results(self.spec, merged)
                else:
                    report = merge_shard_results(self.spec, merged)

            if failures and not self.keep_going:
                first = failures[0]
                events.emit("run_end", kind="fleet", shards=len(shards),
                            failed=len(failures), complete=False)
                raise FleetError(
                    f"shard {first.shard} (households [{first.start}, "
                    f"{first.stop})) failed: {first.error}")

            result = FleetResult(
                spec=self.spec,
                workers=self.workers,
                report=report,
                shard_states=[states[index] for index in sorted(states)],
                failures=failures,
                cache_hits=self.cache.hits if self.cache is not None else 0,
                cache_misses=self.cache.misses if self.cache is not None else 0,
                cache_writes=self.cache.writes if self.cache is not None else 0,
                wall_seconds=time.perf_counter() - started,
                resumed=resumed,
            )
            if run_span is not None:
                run_span.set_attr("failed_shards", len(failures))
                run_span.set_attr("cache_hits", result.cache_hits)
            if obs.enabled:
                logger.info("run_complete", shards=result.shards_total,
                            failed=len(failures), cache_hits=result.cache_hits,
                            wall_seconds=result.wall_seconds)
            events.emit("run_end", kind="fleet", shards=result.shards_total,
                        failed=len(failures), cache_hits=result.cache_hits,
                        wall_seconds=round(result.wall_seconds, 6),
                        complete=result.complete)
            return result


def run_fleet(
    spec: Optional[FleetSpec] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    keep_going: bool = True,
    obs: Optional[Observability] = None,
    profile_hz: float = 0.0,
) -> FleetResult:
    """One-call fleet run; see :class:`FleetRunner` for the knobs."""
    return FleetRunner(
        spec=spec, workers=workers, cache_dir=cache_dir, resume=resume,
        fault_plan=fault_plan, keep_going=keep_going, obs=obs,
        profile_hz=profile_hz,
    ).run()
