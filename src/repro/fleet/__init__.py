"""``repro.fleet`` — the sharded household-fleet runner (§6.3 at scale).

IoT Inspector ingests households independently and aggregates; the
fleet runner exploits exactly that shard boundary.  It partitions the
synthetic crowdsourced population into contiguous household ranges,
generates + analyzes each range in a worker process, and merges the
per-shard partials into a :class:`~repro.core.fingerprint.FingerprintReport`
that is **byte-identical** to the serial
:func:`~repro.core.fingerprint.fingerprint_households` path for the
same seed — regardless of worker count.

Completed shards land in a content-addressed cache (key = hash of the
generation spec + shard range + analysis code version), which doubles
as the checkpoint store: a killed run restarts from its completed
shards.  See ``docs/fleet.md`` for the sharding model, determinism
guarantees, and cache/resume semantics.
"""

from repro.fleet.cache import ShardCache
from repro.fleet.merge import merge_shard_results
from repro.fleet.runner import (
    FleetConfigError,
    FleetError,
    FleetResult,
    FleetRunner,
    ShardFailure,
    ShardState,
    run_fleet,
)
from repro.fleet.shard import ShardFaultInjected, run_shard
from repro.fleet.spec import FleetSpec, ShardRange, code_version, shard_key

__all__ = [
    "FleetConfigError",
    "FleetError",
    "FleetResult",
    "FleetRunner",
    "FleetSpec",
    "ShardCache",
    "ShardFailure",
    "ShardFaultInjected",
    "ShardRange",
    "ShardState",
    "code_version",
    "merge_shard_results",
    "run_fleet",
    "run_shard",
    "shard_key",
]
