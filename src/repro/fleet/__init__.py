"""``repro.fleet`` — the sharded household-fleet runner (§6.3 at scale).

IoT Inspector ingests households independently and aggregates; the
fleet runner exploits exactly that shard boundary.  It partitions the
synthetic crowdsourced population into contiguous household ranges,
generates + analyzes each range in a worker process, and merges the
per-shard partials into a :class:`~repro.core.fingerprint.FingerprintReport`
that is **byte-identical** to the serial
:func:`~repro.core.fingerprint.fingerprint_households` path for the
same seed — regardless of worker count.

Completed shards land in a content-addressed cache (key = hash of the
generation spec + shard range + analysis code version), which doubles
as the checkpoint store: a killed run restarts from its completed
shards.  See ``docs/fleet.md`` for the sharding model, determinism
guarantees, and cache/resume semantics.

Runs are supervised (see :mod:`repro.fleet.supervisor`): per-shard
wall-clock deadlines enforced by a heartbeat watchdog, retry budgets
with exponential backoff, a poison quarantine for shards that exhaust
them, and SIGINT/SIGTERM graceful shutdown that checkpoints the
manifest so ``--resume`` merges byte-identically.
"""

from repro.fleet.cache import ShardCache
from repro.fleet.merge import merge_shard_results
from repro.fleet.runner import (
    FleetConfigError,
    FleetError,
    FleetResult,
    FleetRunner,
    QuarantinedShard,
    ShardFailure,
    ShardState,
    run_fleet,
)
from repro.fleet.shard import ShardFaultInjected, run_shard
from repro.fleet.spec import FleetSpec, ShardRange, code_version, shard_key
from repro.fleet.supervisor import (
    RunInterrupted,
    ShardSupervisor,
    default_shard_deadline,
    default_shard_retries,
    interrupt_guard,
)

__all__ = [
    "FleetConfigError",
    "FleetError",
    "FleetResult",
    "FleetRunner",
    "FleetSpec",
    "QuarantinedShard",
    "RunInterrupted",
    "ShardCache",
    "ShardFailure",
    "ShardFaultInjected",
    "ShardRange",
    "ShardState",
    "ShardSupervisor",
    "code_version",
    "default_shard_deadline",
    "default_shard_retries",
    "interrupt_guard",
    "merge_shard_results",
    "run_fleet",
    "run_shard",
    "shard_key",
]
