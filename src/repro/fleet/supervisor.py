"""Run supervision: deadlines, retries, quarantine, graceful shutdown.

The fleet's crowdsourced ancestor (IoT Inspector) only scaled because
its collection pipeline assumed every participant could hang, crash,
or disappear mid-upload.  This module is the equivalent layer for the
fleet runner: a heartbeat-driven watchdog that gives every shard a
wall-clock deadline and a retry budget, and a signal guard that turns
SIGINT/SIGTERM into an orderly checkpoint-and-exit instead of a
traceback.

Three cooperating pieces:

* :class:`WorkerClaim` — the heartbeat channel.  Each dispatched shard
  gets a *claim file* in a per-run spool directory; the worker process
  writes its pid into it on startup and touches it at every phase
  heartbeat.  The parent never talks to the worker directly: liveness
  is the claim file's mtime, and the pid inside is how a hung worker
  gets reaped.  (The same heartbeats also stream into the ``--events-out``
  NDJSON file as ``kind="worker"`` records — the claim file is the
  supervisor-readable projection of that stream.)
* :class:`ShardSupervisor` — per-shard bookkeeping: attempts consumed,
  exponential retry backoff gates, deadline derivation, and the
  watchdog scan that declares a silent worker hung.
* :class:`RunInterrupted` / :func:`interrupt_guard` — SIGINT/SIGTERM
  become a typed exception (a :class:`KeyboardInterrupt` subclass, so
  unaware code still treats it as an interrupt) carrying the signal
  number, which the runner catches to flush the manifest, mark
  in-flight shards ``interrupted``, and exit ``128 + signum``
  (130 for SIGINT, 143 for SIGTERM).

Nothing here runs on the zero-fault, zero-retry path beyond a cheap
deadline computation — the supervised run's merged report stays
byte-identical to an unsupervised one.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Seconds of budget per household when deriving a shard's deadline.
DEADLINE_SECONDS_PER_HOUSEHOLD = 0.5

#: Floor for a derived deadline — small shards still get a generous
#: window (process start + import cost dominates tiny shards).
MIN_SHARD_DEADLINE = 60.0

#: First retry waits this long; attempt ``n`` waits ``backoff * 2**(n-1)``.
DEFAULT_RETRY_BACKOFF = 0.5

#: How often the pool loop wakes to run the watchdog scan.
WATCHDOG_POLL_SECONDS = 0.05


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def default_shard_retries() -> int:
    """Programmatic retry default: ``REPRO_FLEET_RETRIES`` or 0.

    Zero keeps :func:`repro.fleet.run_fleet` byte- and
    behaviour-identical to the pre-supervision builds; the ``repro
    fleet`` CLI opts into 2 retries by default (``--shard-retries``).
    """
    raw = os.environ.get("REPRO_FLEET_RETRIES")
    if raw is None:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def default_shard_deadline(households: int) -> float:
    """Deadline for a shard of ``households``: env override or derived.

    ``REPRO_FLEET_DEADLINE`` (seconds) wins when set; otherwise the
    deadline scales with shard size so a re-partition does not silently
    tighten the watchdog.
    """
    override = _env_float("REPRO_FLEET_DEADLINE")
    if override is not None:
        return override
    return max(MIN_SHARD_DEADLINE,
               DEADLINE_SECONDS_PER_HOUSEHOLD * max(1, households))


class RunInterrupted(KeyboardInterrupt):
    """A run stopped by SIGINT/SIGTERM (or a simulated interrupt).

    Subclasses :class:`KeyboardInterrupt` so code that special-cases
    user interrupts keeps working; carries the signal number so the
    CLI can honour the ``128 + signum`` exit-code convention.
    """

    def __init__(self, signum: int = signal.SIGINT):
        self.signum = int(signum)
        super().__init__(f"interrupted by signal {self.signum}")

    @property
    def exit_code(self) -> int:
        return 128 + self.signum


@contextmanager
def interrupt_guard():
    """Convert SIGINT/SIGTERM into :class:`RunInterrupted` while active.

    Installs handlers that raise in the main thread (so a blocking
    ``wait()`` or worker loop unwinds through the caller's cleanup) and
    restores the previous handlers on exit.  A no-op outside the main
    thread — ``signal.signal`` is main-thread-only — and callers there
    still see plain :class:`KeyboardInterrupt` from Ctrl-C.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):  # noqa: ARG001 - signal handler signature
        raise RunInterrupted(signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _raise)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass


class WorkerClaim:
    """The worker side of the heartbeat channel: one file per attempt.

    ``acquire(path)`` writes ``{"pid": ..., "wall": ...}`` atomically;
    every later :meth:`touch` bumps the file's mtime.  The parent reads
    the pid with :func:`read_claim_pid` and liveness with
    :func:`claim_age`.  All methods tolerate a missing path (inline
    runs pass ``None``) and never raise — a full disk must not take a
    worker down.
    """

    def __init__(self, path: Optional[str]):
        self.path = path

    @classmethod
    def acquire(cls, path: Optional[str]) -> "WorkerClaim":
        claim = cls(path)
        if path is not None:
            try:
                tmp = f"{path}.tmp-{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump({"pid": os.getpid(), "wall": time.time()}, handle)
                os.replace(tmp, path)
            except OSError:
                claim.path = None
        return claim

    def touch(self) -> None:
        if self.path is None:
            return
        try:
            os.utime(self.path, None)
        except OSError:
            self.path = None


def read_claim_pid(path: Optional[str]) -> Optional[int]:
    """The pid a worker wrote into its claim file, or ``None``."""
    if path is None:
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            pid = json.load(handle).get("pid")
    except (OSError, json.JSONDecodeError, UnicodeDecodeError, AttributeError):
        return None
    return pid if isinstance(pid, int) else None


def claim_age(path: Optional[str], now: Optional[float] = None) -> Optional[float]:
    """Wall seconds since the worker last touched its claim, or ``None``."""
    if path is None:
        return None
    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return None
    return max(0.0, (now if now is not None else time.time()) - mtime)


@dataclass
class ShardTask:
    """One shard's supervision state across its attempts."""

    index: int
    start: int
    stop: int
    fault: Optional[Dict[str, object]]
    deadline: float
    claim_path: Optional[str] = None
    #: Failed attempts consumed so far (a dispatch in flight is not counted).
    attempts: int = 0
    #: Monotonic gate: the next attempt may not dispatch before this.
    not_before: float = 0.0
    #: Monotonic dispatch time of the in-flight attempt.
    dispatched_at: float = 0.0
    #: Last failure, kept for the quarantine record.
    last_error: str = ""
    last_traceback: str = ""

    @property
    def households(self) -> int:
        return self.stop - self.start

    @property
    def next_attempt(self) -> int:
        """1-based number of the attempt that would run next."""
        return self.attempts + 1


@dataclass
class TimeoutVerdict:
    """One watchdog finding: a task silent past its deadline."""

    task: ShardTask
    silent_seconds: float
    pid: Optional[int]


@dataclass
class ShardSupervisor:
    """Deadline/retry policy shared by the inline and pool dispatchers.

    Pure bookkeeping — no threads, no signals.  The dispatch loops ask
    three questions: what deadline does this shard get
    (:meth:`task_for`), what happens after a failed attempt
    (:meth:`on_attempt_failed` → ``"retry"`` or ``"exhausted"``), and
    which in-flight workers are hung (:meth:`overdue`).
    """

    retries: int = 0
    backoff: float = DEFAULT_RETRY_BACKOFF
    #: Uniform deadline override (``--shard-deadline``); ``None`` derives
    #: per shard from its household count.
    deadline: Optional[float] = None
    clock: object = time.monotonic
    retries_used: int = 0
    watchdog_timeouts: int = 0
    _tasks: List[ShardTask] = field(default_factory=list)

    def task_for(self, shard, fault: Optional[Dict[str, object]] = None,
                 claim_path: Optional[str] = None) -> ShardTask:
        task = ShardTask(
            index=shard.index, start=shard.start, stop=shard.stop,
            fault=fault, claim_path=claim_path,
            deadline=(self.deadline if self.deadline is not None
                      else default_shard_deadline(shard.stop - shard.start)),
        )
        self._tasks.append(task)
        return task

    def record_dispatch(self, task: ShardTask) -> None:
        task.dispatched_at = self.clock()
        if task.claim_path is not None:
            # A fresh attempt must not inherit the previous attempt's
            # heartbeat trail (or its pid).
            try:
                os.unlink(task.claim_path)
            except OSError:
                pass

    def backoff_for(self, failed_attempt: int) -> float:
        """Exponential: attempt 1 waits ``backoff``, attempt 2 ``2×``, ..."""
        if self.backoff <= 0:
            return 0.0
        return self.backoff * (2 ** max(0, failed_attempt - 1))

    def on_attempt_failed(self, task: ShardTask, error: str,
                          traceback: str = "") -> str:
        """Consume one attempt; gate the retry.  ``"retry" | "exhausted"``."""
        task.attempts += 1
        task.last_error = error
        task.last_traceback = traceback
        if task.attempts <= self.retries:
            self.retries_used += 1
            task.not_before = self.clock() + self.backoff_for(task.attempts)
            return "retry"
        return "exhausted"

    def overdue(self, inflight: List[ShardTask]) -> List[TimeoutVerdict]:
        """Watchdog scan: in-flight tasks silent past their deadline.

        Silence is measured from the worker's last sign of life — the
        claim file's mtime when the worker has claimed, the dispatch
        time before that — so a slow-but-heartbeating worker is never
        declared hung, only a silent one.
        """
        verdicts: List[TimeoutVerdict] = []
        now = self.clock()
        wall_now = time.time()
        for task in inflight:
            age = claim_age(task.claim_path, wall_now)
            silent = age if age is not None else now - task.dispatched_at
            if silent > task.deadline:
                verdicts.append(TimeoutVerdict(
                    task=task, silent_seconds=silent,
                    pid=read_claim_pid(task.claim_path)))
        return verdicts

    def note_timeout(self, task: ShardTask) -> None:
        self.watchdog_timeouts += 1
        # A reaped worker leaves no useful traceback; record the verdict.
        task.last_error = (
            f"WatchdogTimeout: worker silent past the {task.deadline:.1f}s "
            f"shard deadline")


def reap(pid: Optional[int]) -> bool:
    """SIGKILL a worker pid; True when a signal was actually sent."""
    if pid is None or pid <= 0 or pid == os.getpid():
        return False
    try:
        os.kill(pid, signal.SIGKILL)
    except (OSError, ProcessLookupError):
        return False
    return True
