"""The content-addressed shard cache (checkpoint store).

One JSON file per shard result, named by the shard's content address
(:func:`repro.fleet.spec.shard_key`).  Because the key covers the full
generation spec *and* the code version, a cache directory can be shared
across runs, seeds, and population sizes without collision — a stale
or foreign entry simply never matches.

Writes are atomic (temp file + ``os.replace``), so a shard is either
fully checkpointed or absent; a killed run never leaves a torn entry.
Corrupt files (truncated by hand, bad JSON) are treated as misses and
quietly replaced on the next store.  A run killed *mid-write* (SIGKILL,
OOM, watchdog reap) can strand ``.tmp-*`` spool files; opening the
cache sweeps any older than :data:`STALE_TMP_SECONDS` so an
interrupt/resume cycle cannot slowly fill the cache dir with litter.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

#: Age (seconds) after which an orphaned ``.tmp-*`` spool file in the
#: cache directory is deleted on open.  Generous: a live writer holds a
#: tmp file for well under a second.
STALE_TMP_SECONDS = 3600.0


class ShardCache:
    """Content-addressed JSON store for shard results."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.swept = self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Delete orphaned atomic-write spool files; returns the count."""
        swept = 0
        cutoff = time.time() - STALE_TMP_SECONDS
        try:
            entries = list(self.root.iterdir())
        except OSError:
            return 0
        for entry in entries:
            if not entry.name.startswith(".tmp-"):
                continue
            try:
                if entry.stat().st_mtime < cutoff:
                    entry.unlink()
                    swept += 1
            except OSError:
                continue  # already gone, or another run's live write
        return swept

    def path_for(self, key: str) -> Path:
        return self.root / f"shard-{key}.json"

    def load(self, key: str) -> Optional[dict]:
        """The cached result for ``key``, or ``None`` (counted as miss)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.corrupt += 1
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> Path:
        """Atomically write ``payload`` under ``key``; returns the path."""
        path = self.path_for(key)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), prefix=".tmp-shard-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }
