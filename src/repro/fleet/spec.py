"""Fleet run specification, shard planning, and content-address keys.

A :class:`FleetSpec` is the complete input of a fleet run: the
generation parameters (seed, population size, product-pool shape), the
analysis toggle (``validate_oui``), and the shard size.  Everything a
worker needs travels as the spec's plain-dict form, so workers can be
separate processes and cache keys can be stated over canonical JSON.

The shard cache key hashes the spec subset that determines a shard's
bytes **plus the code version** — a digest of the generator/analysis
sources — so editing the generator invalidates every cached shard
instead of silently serving stale results.

Env knobs resolved here: ``REPRO_FLEET_SHARD_SIZE`` (households per
shard) and ``REPRO_FLEET_WORKERS`` (pool width).  The supervision
defaults — ``REPRO_FLEET_RETRIES`` and ``REPRO_FLEET_DEADLINE`` — live
in :mod:`repro.fleet.supervisor`, which derives each shard's watchdog
deadline from :attr:`ShardRange.households` when no override is given.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: Default households per shard; override via ``REPRO_FLEET_SHARD_SIZE``.
DEFAULT_SHARD_SIZE = 256


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(minimum, value)


def default_shard_size() -> int:
    return _env_int("REPRO_FLEET_SHARD_SIZE", DEFAULT_SHARD_SIZE)


def default_workers() -> int:
    """Worker-count default: ``REPRO_FLEET_WORKERS`` or the CPU count."""
    return _env_int("REPRO_FLEET_WORKERS", max(1, os.cpu_count() or 1))


@dataclass(frozen=True)
class ShardRange:
    """One contiguous household range ``[start, stop)``."""

    index: int
    start: int
    stop: int

    @property
    def households(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class FleetSpec:
    """The full input of one fleet run (generation + analysis + sharding)."""

    seed: int = 23
    households: int = 3860
    target_devices: int = 12669
    vendor_count: int = 165
    product_count: int = 264
    validate_oui: bool = True
    shard_size: int = field(default_factory=default_shard_size)

    def __post_init__(self) -> None:
        if self.households < 1:
            raise ValueError(f"households must be >= 1, got {self.households}")
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")

    def shards(self) -> List[ShardRange]:
        """Contiguous, disjoint shard ranges covering the population."""
        out: List[ShardRange] = []
        start = 0
        index = 0
        while start < self.households:
            stop = min(start + self.shard_size, self.households)
            out.append(ShardRange(index=index, start=start, stop=stop))
            start = stop
            index += 1
        return out

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FleetSpec":
        return cls(**raw)


#: Modules whose source participates in the cache-key code version:
#: anything that changes the bytes a shard produces.
_VERSIONED_MODULES = (
    "repro.inspector.generate",
    "repro.inspector.entropy",
    "repro.inspector.schema",
    "repro.core.fingerprint",
    "repro.fleet.shard",
    "repro.fleet.merge",
)

_code_version: Optional[str] = None


def code_version() -> str:
    """Digest of the generator/analysis sources (cache-key component)."""
    global _code_version
    if _code_version is None:
        import importlib

        digest = hashlib.blake2b(digest_size=16)
        for name in _VERSIONED_MODULES:
            module = importlib.import_module(name)
            path = getattr(module, "__file__", None)
            digest.update(name.encode("utf-8"))
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version = digest.hexdigest()
    return _code_version


def shard_key(spec: FleetSpec, shard: ShardRange) -> str:
    """Content address of one shard's result.

    Composition: every :class:`FleetSpec` field that shapes the shard's
    bytes, the shard's household range, and :func:`code_version`.
    ``shard_size``/``index`` are deliberately *excluded* — the same
    household range produced under a different shard partition is the
    same content.
    """
    payload = {
        "seed": spec.seed,
        "households": spec.households,
        "target_devices": spec.target_devices,
        "vendor_count": spec.vendor_count,
        "product_count": spec.product_count,
        "validate_oui": spec.validate_oui,
        "start": shard.start,
        "stop": shard.stop,
        "code_version": code_version(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()
