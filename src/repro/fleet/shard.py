"""The shard worker: generate + analyze one household range.

``run_shard`` is the unit of work the fleet dispatches to its
``ProcessPoolExecutor``.  It takes only plain data (the spec's dict
form and a household range) and returns only plain data (a JSON-able
shard result), so it pickles cheaply across the process boundary and
its output can land in the content-addressed cache verbatim.

The result carries everything the merge needs and nothing else: the
serialized :class:`~repro.inspector.entropy.EntropyAnalysis` partial
plus the per-household device counts and vendor/product tallies that
feed the report's context statistics — and, under the ``"obs"`` key,
the worker's own telemetry as an
:class:`~repro.obs.snapshot.ObsSnapshot` (metrics + spans), so a
multi-process fleet run loses nothing to the process boundary.  The
worker registry holds only deterministic counters/gauges (household,
device, vendor tallies); wall-clock timings live in span attrs and the
shard-level ``seconds`` field, keeping the parent's merged counter set
byte-identical at any worker count.

Two opt-in extras ride along, both off by default so an unprofiled
fleet's shard payloads stay byte-identical to earlier builds:

* ``profile_hz > 0`` runs a :class:`~repro.obs.profile.SamplingProfiler`
  (plus a :class:`~repro.obs.profile.SpanResourceProbe`) for the
  shard's lifetime; the sampled profile travels inside the ``"obs"``
  snapshot and — because the cache stores the payload verbatim — cache
  hits replay the stored profile on later runs.
* ``events_path`` appends ``kind="worker"`` heartbeat records (shard
  index + pid + RSS/CPU) to the parent's NDJSON event stream, so a
  ``tail -f`` shows worker liveness, not just the parent's merge loop.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.fleet.supervisor import WorkerClaim
from repro.inspector.entropy import analyze_dataset
from repro.inspector.generate import build_context, generate_households
from repro.inspector.schema import InspectorDataset
from repro.obs import MetricsRegistry, Observability, ObsSnapshot, Tracer, use_obs
from repro.obs.events import NULL_EVENT_BUS, open_event_stream
from repro.obs.logging import NullLogManager
from repro.obs.profile import NULL_PROFILER, SamplingProfiler, SpanResourceProbe


class ShardFaultInjected(RuntimeError):
    """The deterministic worker crash the fault plan's ``shards`` section asks for."""


#: Sleep quantum for the hang/slow fault loops: hangs stay silent but
#: remain interruptible, slowdowns heartbeat once per chunk.
_FAULT_SLEEP_CHUNK = 0.2


def _hang(seconds: float) -> None:
    """Go silent for ``seconds``: no heartbeats, no claim touches."""
    deadline = time.perf_counter() + seconds
    while True:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return
        time.sleep(min(_FAULT_SLEEP_CHUNK, remaining))


def _drag(extra_seconds: float, claim: WorkerClaim) -> None:
    """Pad wall time by ``extra_seconds`` while *keeping* the heartbeat
    alive — a slow worker must never look hung to the watchdog."""
    deadline = time.perf_counter() + extra_seconds
    while True:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return
        time.sleep(min(_FAULT_SLEEP_CHUNK, remaining))
        claim.touch()


def run_shard(
    spec_dict: Dict[str, object],
    start: int,
    stop: int,
    inject_fault: Optional[Dict[str, object]] = None,
    profile_hz: float = 0.0,
    events_path: Optional[str] = None,
    shard_index: Optional[int] = None,
    claim_path: Optional[str] = None,
) -> Dict[str, object]:
    """Generate households ``[start, stop)`` and analyze them.

    ``claim_path`` is the supervisor's heartbeat channel: the worker
    writes its pid there on entry and touches the file at every phase
    boundary, so the parent's watchdog can tell slow from dead (and
    knows which pid to reap).

    ``inject_fault`` is the fleet's per-shard chaos hook, a dict with a
    ``"kind"`` key:

    * ``{"kind": "fail"}`` — raise before generating, so an injected
      crash never pollutes the cache with a partial result;
    * ``{"kind": "hang", "seconds": s}`` — go silent (no heartbeats)
      for ``s`` wall seconds before working, exercising the watchdog;
    * ``{"kind": "slow", "factor": f}`` — finish the work, then pad
      wall time to ``f``× while still heartbeating.

    The fault-free payload is byte-identical to earlier builds.
    """
    claim = WorkerClaim.acquire(claim_path)
    fault_kind = (inject_fault or {}).get("kind")
    if fault_kind == "fail":
        raise ShardFaultInjected(
            f"fault plan killed shard covering households [{start}, {stop})")
    if fault_kind == "hang":
        _hang(float((inject_fault or {}).get("seconds", 300.0)))
        claim.touch()
    started = time.perf_counter()
    profiler = SamplingProfiler(hz=profile_hz) if profile_hz > 0.0 else NULL_PROFILER
    tracer = Tracer()
    obs = Observability(metrics=MetricsRegistry(), tracer=tracer,
                        logs=NullLogManager(), enabled=True, profiler=profiler)
    events = (open_event_stream(events_path, append=True)
              if events_path else NULL_EVENT_BUS)
    probe: Optional[SpanResourceProbe] = None
    if profiler.enabled:
        profiler.bind(tracer)
        probe = SpanResourceProbe()
        tracer.resource_probe = probe
        profiler.start()
    try:
        with use_obs(obs), obs.tracer.span("fleet.worker", start=start, stop=stop):
            events.heartbeat(kind="worker", shard=shard_index,
                             start=start, stop=stop, phase="generate")
            claim.touch()
            with obs.tracer.span("worker.generate"):
                context = build_context(
                    seed=int(spec_dict["seed"]),
                    households=int(spec_dict["households"]),
                    target_devices=int(spec_dict["target_devices"]),
                    vendor_count=int(spec_dict["vendor_count"]),
                    product_count=int(spec_dict["product_count"]),
                )
                households = generate_households(context, start, stop)
                dataset = InspectorDataset(households=households)
            with obs.tracer.span("worker.analyze"):
                analysis = analyze_dataset(
                    dataset, validate_oui=bool(spec_dict["validate_oui"]))
            events.heartbeat(kind="worker", shard=shard_index,
                             start=start, stop=stop, phase="analyze")
            claim.touch()
            if fault_kind == "slow":
                factor = float((inject_fault or {}).get("factor", 4.0))
                _drag((factor - 1.0) * (time.perf_counter() - started), claim)

            vendor_counts: Dict[str, int] = {}
            product_counts: Dict[str, int] = {}
            device_counts: List[int] = []
            for household in households:
                device_counts.append(household.device_count)
                for device in household.devices:
                    vendor_counts[device.truth_vendor] = vendor_counts.get(device.truth_vendor, 0) + 1
                    product_counts[device.truth_product] = product_counts.get(device.truth_product, 0) + 1

            metrics = obs.metrics
            metrics.counter(
                "fleet_worker_households_total",
                "households generated and analyzed by fleet workers",
            ).inc(len(households))
            metrics.counter(
                "fleet_worker_devices_total",
                "devices generated and analyzed by fleet workers",
            ).inc(dataset.device_count)
    finally:
        if profiler.enabled:
            profiler.stop()
            if probe is not None:
                probe.close()
        events.close()

    return {
        "start": start,
        "stop": stop,
        "device_count": dataset.device_count,
        "household_device_counts": device_counts,
        "vendor_counts": vendor_counts,
        "product_counts": product_counts,
        "analysis": analysis.to_dict(),
        "seconds": time.perf_counter() - started,
        "obs": ObsSnapshot.capture(obs).to_dict(),
    }
