"""Merge per-shard results into the population report.

Every aggregate the Table 2 report needs is additive over households —
set unions, integer sums, concatenated per-household counts — so the
merge is **exact**, not approximate: for shards covering the full
population it reproduces the serial
:func:`~repro.core.fingerprint.fingerprint_households` report byte for
byte (pinned by ``tests/fleet/test_equivalence.py``).

Shard results are combined in household order (sorted by ``start``), so
the merged per-household device-count sequence — and therefore the
median — matches the serial sweep regardless of completion order.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.fingerprint import FingerprintReport
from repro.inspector.entropy import EntropyAnalysis
from repro.fleet.spec import FleetSpec


def merge_shard_results(
    spec: FleetSpec, results: List[Dict[str, object]]
) -> FingerprintReport:
    """Combine shard-result dicts into one :class:`FingerprintReport`.

    ``results`` may cover only part of the population (keep-going mode
    after shard failures); the report then describes the households
    actually analyzed.
    """
    if not results:
        raise ValueError("cannot merge zero shard results")
    ordered = sorted(results, key=lambda result: int(result["start"]))
    analysis = EntropyAnalysis.merge(
        [EntropyAnalysis.from_dict(result["analysis"]) for result in ordered]
    )
    vendor_counts: Dict[str, int] = {}
    product_counts: Dict[str, int] = {}
    household_device_counts: List[int] = []
    device_total = 0
    for result in ordered:
        device_total += int(result["device_count"])
        household_device_counts.extend(result["household_device_counts"])
        for vendor, count in result["vendor_counts"].items():
            vendor_counts[vendor] = vendor_counts.get(vendor, 0) + count
        for product, count in result["product_counts"].items():
            product_counts[product] = product_counts.get(product, 0) + count
    return FingerprintReport.from_analysis(
        analysis,
        dataset_devices=device_total,
        dataset_households=len(household_device_counts),
        dataset_vendors=len(vendor_counts),
        dataset_products=len(product_counts),
        household_device_counts=household_device_counts,
    )
