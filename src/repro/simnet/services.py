"""Per-node open-service tables.

Active scans (§4.2) found 178 unique open TCP ports and 115 unique UDP
ports across 61 devices.  Each node carries a :class:`ServiceTable`
describing what listens where; the port scanner and the vulnerability
scanner interrogate it exactly as nmap/Nessus interrogate real stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class ServiceInfo:
    """One open service on a device.

    ``protocol`` is the ground-truth service name ("http", "telnet",
    "dns", ...); scanners must *infer* it (and sometimes get it wrong,
    §3.5).  ``banner`` is what a probe elicits; ``software``/``version``
    feed the vulnerability scanner.
    """

    port: int
    transport: str  # "tcp" or "udp"
    protocol: str
    banner: str = ""
    software: str = ""
    version: str = ""
    notes: str = ""

    @property
    def key(self) -> Tuple[str, int]:
        return (self.transport, self.port)


class ServiceTable:
    """The set of services a node exposes, indexed by (transport, port)."""

    def __init__(self, services: Iterable[ServiceInfo] = ()):
        self._services: Dict[Tuple[str, int], ServiceInfo] = {}
        for service in services:
            self.add(service)

    def add(self, service: ServiceInfo) -> None:
        self._services[service.key] = service

    def get(self, transport: str, port: int) -> Optional[ServiceInfo]:
        return self._services.get((transport, port))

    def is_open(self, transport: str, port: int) -> bool:
        return (transport, port) in self._services

    def open_ports(self, transport: str) -> List[int]:
        return sorted(port for (kind, port) in self._services if kind == transport)

    def __iter__(self):
        return iter(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    @property
    def services(self) -> List[ServiceInfo]:
        return sorted(self._services.values(), key=lambda service: (service.transport, service.port))
