"""The simulated home LAN: an AP/switch delivering frames among nodes.

Delivery semantics mirror a Wi-Fi network in infrastructure mode as
seen from the AP (where the paper runs tcpdump, §3.1): the capture
observes *every* frame; broadcast reaches all nodes, IPv4/IPv6
multicast reaches group members (non-members' NICs filter it), unicast
reaches the owner of the destination MAC.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, List, Optional

from repro.net.decode import DecodedPacket, decode_frame, quick_protocol
from repro.net.ether import EtherType
from repro.net.mac import MacAddress
from repro.net.tcp import TcpFlags, TcpSegment
from repro.obs import get_obs
from repro.simnet.capture import ApCapture
from repro.simnet.node import Node
from repro.simnet.simulator import Simulator


class Lan:
    """A single /24 home network with an AP-side capture."""

    def __init__(
        self,
        simulator: Simulator,
        subnet: str = "192.168.10.0/24",
        ap_mac: str = "02:00:00:00:00:01",
        capture: Optional[ApCapture] = None,
    ):
        self.simulator = simulator
        self.subnet = ipaddress.ip_network(subnet)
        self.ap_mac = MacAddress(ap_mac)
        self.capture = capture if capture is not None else ApCapture()
        self.gateway_ip = str(next(self.subnet.hosts()))
        self.broadcast_address = str(self.subnet.broadcast_address)
        self._nodes_by_mac: Dict[MacAddress, Node] = {}
        self._nodes_by_ip: Dict[str, Node] = {}
        self._next_host = 10
        self.frames_delivered = 0
        #: Set via :meth:`install_injector`; when present and active,
        #: every transmit is routed through the fault layer.
        self.injector = None
        obs = get_obs()
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics.scoped("lan")
            self._frames_delivered_total = metrics.counter(
                "frames_delivered_total",
                "frames that reached at least one receiver, per protocol")
            self._frames_dropped_total = metrics.counter(
                "frames_dropped_total",
                "frames with no receiver (unknown MAC / empty group), per protocol")
            self._capture_packets_total = obs.metrics.counter(
                "capture_packets_total",
                "frames retained by the AP capture, per protocol")

    # -- membership -------------------------------------------------------------

    def attach(self, node: Node, ip: Optional[str] = None) -> Node:
        """Attach a node; allocates the next free host IP when none given."""
        if ip is not None:
            node.ip = str(ipaddress.IPv4Address(ip))
        elif node.ip in (None, "", "0.0.0.0") or node.ip in self._nodes_by_ip:
            node.ip = self.allocate_ip()
        if node.mac in self._nodes_by_mac:
            raise ValueError(f"duplicate MAC on LAN: {node.mac}")
        if node.ip in self._nodes_by_ip:
            raise ValueError(f"duplicate IP on LAN: {node.ip}")
        node.lan = self
        self._nodes_by_mac[node.mac] = node
        self._nodes_by_ip[node.ip] = node
        return node

    def detach(self, node: Node) -> None:
        self._nodes_by_mac.pop(node.mac, None)
        self._nodes_by_ip.pop(node.ip, None)
        node.lan = None

    def allocate_ip(self) -> str:
        base = int(self.subnet.network_address)
        while True:
            candidate = str(ipaddress.IPv4Address(base + self._next_host))
            self._next_host += 1
            if candidate not in self._nodes_by_ip and candidate != self.gateway_ip:
                return candidate

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes_by_mac.values())

    def node_by_name(self, name: str) -> Optional[Node]:
        for node in self._nodes_by_mac.values():
            if node.name == name:
                return node
        return None

    def mac_of(self, ip: str) -> Optional[MacAddress]:
        node = self._nodes_by_ip.get(ip)
        return node.mac if node else None

    def mac_of_v6(self, ip6: str) -> Optional[MacAddress]:
        for node in self._nodes_by_mac.values():
            if node.ipv6_link_local == ip6:
                return node.mac
        return None

    def node_by_ip(self, ip: str) -> Optional[Node]:
        return self._nodes_by_ip.get(ip)

    def node_by_mac(self, mac) -> Optional[Node]:
        try:
            return self._nodes_by_mac.get(MacAddress(mac))
        except ValueError:
            return None

    # -- fault injection -----------------------------------------------------------

    def install_injector(self, injector) -> None:
        """Route every transmit through a :class:`~repro.faults.FaultInjector`.

        An injector whose plan is empty stays installed but inert: the
        delivery path is byte-identical to an un-injected LAN (the
        zero-fault equivalence invariant pinned by
        ``tests/integration/test_chaos.py``).  Pass ``None`` to remove.
        """
        self.injector = injector

    # -- delivery ----------------------------------------------------------------

    def transmit(self, sender: Node, frame_bytes: bytes) -> DecodedPacket:
        """Put a frame on the air; the fault layer may drop or damage it."""
        injector = self.injector
        if injector is not None and injector.active:
            return injector.transmit(sender, frame_bytes)
        return self._deliver(sender, frame_bytes)

    def _deliver(self, sender: Node, frame_bytes: bytes) -> DecodedPacket:
        """Deliver a frame: capture it at the AP, then fan out to receivers."""
        timestamp = self.simulator.now
        self.capture.observe(timestamp, frame_bytes)
        # The capture's own decode pass (ApCapture.decoded) quarantines
        # malformed frames; this live decode is total, so damaged bytes
        # reach receivers as a stub packet rather than raising here.
        packet = decode_frame(frame_bytes, timestamp)
        receivers = self._receivers_of(sender, packet)
        injector = self.injector
        if injector is not None and injector.active:
            receivers = [
                receiver for receiver in receivers
                if injector.allow_delivery(receiver, packet, timestamp)
            ]
        for receiver in receivers:
            receiver.receive(packet)
            self.frames_delivered += 1
        if self._obs.enabled:
            protocol = quick_protocol(packet)
            if self.capture.keep_bytes:
                self._capture_packets_total.inc(protocol=protocol)
            if receivers:
                self._frames_delivered_total.inc(protocol=protocol)
            else:
                self._frames_dropped_total.inc(protocol=protocol)
        return packet

    def _receivers_of(self, sender: Node, packet: DecodedPacket) -> List[Node]:
        dst = packet.frame.dst
        if dst.is_broadcast:
            return [node for node in self._nodes_by_mac.values() if node is not sender]
        if dst.is_multicast:
            group = packet.dst_ip
            receivers = []
            for node in self._nodes_by_mac.values():
                if node is sender:
                    continue
                # Link-local multicast (224.0.0.x / ff02::1 "all nodes",
                # ICMPv6 ND) is processed by every stack; other groups
                # only by subscribed members.
                if group is None or self._is_link_local_group(group) or group in node.multicast_groups:
                    receivers.append(node)
            return receivers
        owner = self._nodes_by_mac.get(dst)
        if owner is not None and owner is not sender:
            return [owner]
        return []

    @staticmethod
    def _is_link_local_group(group: str) -> bool:
        if group.startswith("224.0.0."):
            return True
        if group.lower().startswith("ff02::1") and not group.lower().startswith("ff02::1:"):
            return True
        return group.lower() in ("ff02::fb", "ff02::2")

    # -- composite behaviours ------------------------------------------------------

    def tcp_exchange(
        self,
        client: Node,
        server: Node,
        dst_port: int,
        client_payloads: List[bytes],
        server_payloads: List[bytes],
        src_port: Optional[int] = None,
        packet_gap: float = 0.002,
    ) -> Optional[int]:
        """Emit a full TCP conversation (handshake, data, FIN) on the wire.

        Returns the client source port, or None when the server port is
        closed (the exchange then ends with the server's RST).
        """
        sport = src_port if src_port is not None else client.ephemeral_port()
        syn = TcpSegment(sport, dst_port, seq=100, flags=TcpFlags.SYN)
        client.send_tcp_segment(server.ip, syn)
        if not server.services.is_open("tcp", dst_port):
            return None
        injector = self.injector
        if injector is not None and injector.active:
            now = self.simulator.now
            # A crashed or filtered server never completes the
            # handshake; the client gives up after its SYN (the capture
            # shows the half-open attempt, like a real timeout).
            if injector.is_down(server, now) or injector.port_unresponsive(
                    server, "tcp", dst_port, now):
                return None

        sim = self.simulator
        delay = packet_gap
        ack = TcpSegment(sport, dst_port, seq=101, ack=1001, flags=TcpFlags.ACK)
        sim.schedule(delay, lambda: client.send_tcp_segment(server.ip, ack))
        delay += packet_gap
        seq_client = 101
        seq_server = 1001
        turns = max(len(client_payloads), len(server_payloads))
        for index in range(turns):
            if index < len(client_payloads):
                payload = client_payloads[index]
                segment = TcpSegment(
                    sport, dst_port, seq=seq_client, ack=seq_server,
                    flags=TcpFlags.ACK | TcpFlags.PSH, payload=payload,
                )
                sim.schedule(delay, lambda seg=segment: client.send_tcp_segment(server.ip, seg))
                seq_client += len(payload)
                delay += packet_gap
            if index < len(server_payloads):
                payload = server_payloads[index]
                segment = TcpSegment(
                    dst_port, sport, seq=seq_server, ack=seq_client,
                    flags=TcpFlags.ACK | TcpFlags.PSH, payload=payload,
                )
                sim.schedule(delay, lambda seg=segment: server.send_tcp_segment(client.ip, seg))
                seq_server += len(payload)
                delay += packet_gap
        fin = TcpSegment(sport, dst_port, seq=seq_client, ack=seq_server, flags=TcpFlags.FIN | TcpFlags.ACK)
        sim.schedule(delay, lambda: client.send_tcp_segment(server.ip, fin))
        fin_reply = TcpSegment(dst_port, sport, seq=seq_server, ack=seq_client + 1, flags=TcpFlags.FIN | TcpFlags.ACK)
        sim.schedule(delay + packet_gap, lambda: server.send_tcp_segment(client.ip, fin_reply))
        return sport
