"""The discrete-event scheduler driving the virtual testbed clock."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class Simulator:
    """A deterministic discrete-event simulator.

    Events fire in (time, insertion-order) order, so runs are exactly
    reproducible for a fixed seed and schedule.
    """

    def __init__(self, start_time: float = 0.0):
        self.now = start_time
        self._queue = []
        self._counter = itertools.count()
        self._cancelled = set()

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` after ``delay`` seconds; returns an event id."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> int:
        if when < self.now:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        event_id = next(self._counter)
        heapq.heappush(self._queue, (when, event_id, callback))
        return event_id

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        first_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Run ``callback`` every ``interval`` seconds until ``until``."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")

        def fire():
            if until is not None and self.now > until:
                return
            callback()
            if until is None or self.now + interval <= until:
                self.schedule(interval, fire)

        self.schedule(interval if first_delay is None else first_delay, fire)

    def cancel(self, event_id: int) -> None:
        self._cancelled.add(event_id)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events; returns the number of events executed."""
        executed = 0
        while self._queue:
            when, event_id, callback = self._queue[0]
            if until is not None and when > until:
                break
            if max_events is not None and executed >= max_events:
                break
            heapq.heappop(self._queue)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self.now = when
            callback()
            executed += 1
        if until is not None and self.now < until:
            self.now = until
        return executed

    @property
    def pending(self) -> int:
        return len(self._queue)
