"""The discrete-event scheduler driving the virtual testbed clock."""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, Optional, Union

from repro.obs import get_obs


class PeriodicHandle:
    """Cancellable handle for :meth:`Simulator.schedule_periodic`.

    The periodic loop reschedules itself with a fresh event id on every
    firing; the handle tracks the *current* id so ``cancel()`` (or
    ``Simulator.cancel(handle)``) stops the loop no matter how many
    times it has already fired.
    """

    __slots__ = ("_simulator", "_event_id", "cancelled")

    def __init__(self, simulator: "Simulator"):
        self._simulator = simulator
        self._event_id: Optional[int] = None
        self.cancelled = False

    @property
    def active(self) -> bool:
        return not self.cancelled

    def cancel(self) -> None:
        self.cancelled = True
        if self._event_id is not None:
            self._simulator.cancel(self._event_id)


class Simulator:
    """A deterministic discrete-event simulator.

    Events fire in (time, insertion-order) order, so runs are exactly
    reproducible for a fixed seed and schedule.
    """

    def __init__(self, start_time: float = 0.0):
        self.now = start_time
        self._queue = []
        self._counter = itertools.count()
        self._cancelled = set()
        self._pending_ids = set()
        obs = get_obs()
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics.scoped("sim")
            self._events_total = metrics.counter(
                "events_total", "events executed by Simulator.run")
            self._queue_depth = metrics.gauge(
                "queue_depth", "pending events after each run() call")
            self._callback_seconds = metrics.histogram(
                "callback_seconds", "wall-clock latency per event callback")

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Run ``callback`` after ``delay`` seconds; returns an event id."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> int:
        if when < self.now:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        event_id = next(self._counter)
        heapq.heappush(self._queue, (when, event_id, callback))
        self._pending_ids.add(event_id)
        return event_id

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        first_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> PeriodicHandle:
        """Run ``callback`` every ``interval`` seconds until ``until``.

        Returns a :class:`PeriodicHandle` whose ``cancel()`` stops the
        loop even after it has rescheduled itself.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        handle = PeriodicHandle(self)

        def fire():
            if handle.cancelled:
                return
            if until is not None and self.now > until:
                return
            callback()
            if until is None or self.now + interval <= until:
                handle._event_id = self.schedule(interval, fire)

        handle._event_id = self.schedule(
            interval if first_delay is None else first_delay, fire)
        return handle

    def cancel(self, event: Union[int, PeriodicHandle]) -> None:
        """Cancel a scheduled event id or a periodic handle.

        Cancelling an id that already executed (or never existed) is a
        no-op — it is *not* remembered, so ``_cancelled`` cannot grow
        without bound over a long campaign.
        """
        if isinstance(event, PeriodicHandle):
            event.cancel()
            return
        if event in self._pending_ids:
            self._cancelled.add(event)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        on_event: Optional[Callable[[int, float], None]] = None,
        on_event_every: int = 1000,
    ) -> int:
        """Process events; returns the number of events executed.

        ``on_event(executed, sim_now)`` — a liveness hook for long
        campaigns — is invoked after every ``on_event_every`` executed
        events (and once more at the end of the run when any events ran
        since the last report).
        """
        if on_event is not None and on_event_every <= 0:
            raise ValueError(f"on_event_every must be positive, got {on_event_every}")
        obs_on = self._obs.enabled
        executed = 0
        last_report = 0
        while self._queue:
            when, event_id, callback = self._queue[0]
            if until is not None and when > until:
                break
            if max_events is not None and executed >= max_events:
                break
            heapq.heappop(self._queue)
            self._pending_ids.discard(event_id)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self.now = when
            if obs_on:
                started = time.perf_counter()
                callback()
                self._callback_seconds.observe(time.perf_counter() - started)
            else:
                callback()
            executed += 1
            if on_event is not None and executed - last_report >= on_event_every:
                last_report = executed
                on_event(executed, self.now)
        if until is not None and self.now < until:
            self.now = until
        if on_event is not None and executed > last_report:
            on_event(executed, self.now)
        if obs_on:
            self._events_total.inc(executed)
            self._queue_depth.set(len(self._queue))
        return executed

    @property
    def pending(self) -> int:
        return len(self._queue)
