"""AP-side traffic capture, tcpdump-style.

§3.1: "a Wi-Fi AP captures all network traffic utilizing tcpdump.  The
captured traffic is stored in separate files for each MAC address,
enabling us to distinguish traffic from individual devices."  This
module reproduces both the global capture and the per-MAC split, and
can persist either as classic pcap files.

Decode-once contract: :meth:`ApCapture.decoded` memoizes the decode of
every frame, extends incrementally as new frames are observed, and
invalidates on :meth:`ApCapture.clear`.  ``per_mac``/``packets_of``
reuse the cached :class:`~repro.net.decode.DecodedPacket` objects, and
:meth:`ApCapture.index` layers a cached
:class:`~repro.net.index.CaptureIndex` on top, so the whole analysis
stack downstream decodes each frame exactly once per run.  Large decode
backlogs fan out over a thread pool in order-preserving chunks (see
``docs/performance.md`` for the thresholds and env knobs).
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from functools import partial

from repro.net.decode import DecodedPacket, DecodeErrorLog, decode_records
from repro.net.index import CaptureIndex
from repro.net.mac import MacAddress
from repro.net.pcap import PcapWriter
from repro.obs import get_obs


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Backlogs below the threshold decode serially — thread-pool dispatch
#: has a fixed cost that small test captures should never pay.
DEFAULT_PARALLEL_THRESHOLD = 50_000
#: Records per worker-chunk when decoding in parallel.
DEFAULT_DECODE_CHUNK = 8_192


class RecordsView(Sequence):
    """A read-only, live view of the capture's ``(timestamp, bytes)`` records.

    Replaces the old ``list(...)`` copy that ``ApCapture.records``
    rebuilt on every property access (O(n) per call on the hot path).
    The view compares equal to lists/tuples of the same records so
    existing ``capture.records == []``-style assertions keep working,
    but offers no mutating methods — the capture owns the storage.
    """

    __slots__ = ("_records",)

    def __init__(self, records: List[Tuple[float, bytes]]):
        self._records = records

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return list(self._records[item])
        return self._records[item]

    def __iter__(self):
        return iter(self._records)

    def __eq__(self, other) -> bool:
        if isinstance(other, RecordsView):
            return self._records == other._records
        if isinstance(other, (list, tuple)):
            return self._records == list(other)
        return NotImplemented

    __hash__ = None  # mutable view: unhashable, like a list

    def __repr__(self) -> str:
        return f"RecordsView({self._records!r})"


class ApCapture:
    """Collects every frame crossing the AP, with per-MAC indexing."""

    def __init__(
        self,
        keep_bytes: bool = True,
        parallel_threshold: Optional[int] = None,
        decode_chunk_size: Optional[int] = None,
        decode_workers: Optional[int] = None,
    ):
        self.keep_bytes = keep_bytes
        #: Minimum decode backlog before the thread pool is used.
        self.parallel_threshold = (
            parallel_threshold if parallel_threshold is not None
            else _env_int("REPRO_DECODE_PARALLEL_THRESHOLD", DEFAULT_PARALLEL_THRESHOLD)
        )
        #: Records per chunk when decoding in parallel.
        self.decode_chunk_size = (
            decode_chunk_size if decode_chunk_size is not None
            else _env_int("REPRO_DECODE_CHUNK", DEFAULT_DECODE_CHUNK)
        )
        #: Worker count for parallel decode; 0 means ``os.cpu_count()``.
        self.decode_workers = (
            decode_workers if decode_workers is not None
            else _env_int("REPRO_DECODE_WORKERS", 0)
        )
        self._records: List[Tuple[float, bytes]] = []
        self._decoded: List[DecodedPacket] = []
        self._decoded_upto = 0
        self._index: Optional[CaptureIndex] = None
        self.packet_count = 0
        self.byte_count = 0
        #: Malformed frames are quarantined (counted, sampled) here
        #: instead of ever raising mid-analysis.
        self.decode_errors = DecodeErrorLog()
        obs = get_obs()
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics.scoped("capture")
            self._frames_observed_total = metrics.counter(
                "frames_observed_total", "every frame seen by the AP capture")
            self._bytes_observed_total = metrics.counter(
                "bytes_observed_total", "bytes seen by the AP capture")
            self._decode_cache_hits = metrics.counter(
                "decode_cache_hits_total",
                "frames served from the decode cache instead of re-decoding")
            self._decode_cache_misses = metrics.counter(
                "decode_cache_misses_total",
                "frames decoded for the first time (cache fills)")
            self._decode_chunks_total = metrics.counter(
                "decode_chunks_total", "decode batches executed, per mode")
            self._decode_quarantined_total = metrics.counter(
                "decode_quarantined_total",
                "malformed frames quarantined by the decode layer, per reason")
            self._decode_pool_workers = metrics.gauge(
                "decode_pool_workers",
                "thread-pool width of the most recent parallel decode")

    def observe(self, timestamp: float, frame_bytes: bytes) -> None:
        self.packet_count += 1
        self.byte_count += len(frame_bytes)
        if self._obs.enabled:
            self._frames_observed_total.inc()
            self._bytes_observed_total.inc(len(frame_bytes))
        if self.keep_bytes:
            self._records.append((timestamp, frame_bytes))

    # -- access -----------------------------------------------------------------

    @property
    def records(self) -> RecordsView:
        """Read-only view of the raw records (no per-access copy)."""
        return RecordsView(self._records)

    def decoded(self) -> List[DecodedPacket]:
        """Decode the full capture (chronological order), memoized.

        Each frame is decoded exactly once: repeated calls return the
        same list object, which extends in place as new frames are
        observed and empties on :meth:`clear`.  Callers must treat the
        returned list as read-only.
        """
        total = len(self._records)
        cached = self._decoded_upto
        if cached < total:
            quarantined_before = self.decode_errors.snapshot()
            self._decoded.extend(self._decode_backlog(self._records[cached:total]))
            self._decoded_upto = total
            if self._obs.enabled:
                # Metric writes stay on this thread; workers only touch
                # the (locked) DecodeErrorLog.
                for reason, count in self.decode_errors.snapshot().items():
                    delta = count - quarantined_before.get(reason, 0)
                    if delta:
                        self._decode_quarantined_total.inc(delta, reason=reason)
        if self._obs.enabled:
            if cached:
                self._decode_cache_hits.inc(cached)
            if total - cached:
                self._decode_cache_misses.inc(total - cached)
        return self._decoded

    def _decode_backlog(self, records: List[Tuple[float, bytes]]) -> List[DecodedPacket]:
        """Decode a backlog serially, or in order-preserving parallel chunks."""
        threshold = self.parallel_threshold
        if threshold <= 0 or len(records) < threshold:
            if self._obs.enabled:
                self._decode_chunks_total.inc(mode="serial")
            return decode_records(records, self.decode_errors)
        chunk_size = max(1, self.decode_chunk_size)
        chunks = [records[i:i + chunk_size] for i in range(0, len(records), chunk_size)]
        workers = self.decode_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(chunks)))
        out: List[DecodedPacket] = []
        decode_chunk = partial(decode_records, errors=self.decode_errors)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves submission order, so the
            # concatenation below reproduces capture order exactly.
            for part in pool.map(decode_chunk, chunks):
                out.extend(part)
        if self._obs.enabled:
            self._decode_chunks_total.inc(len(chunks), mode="parallel")
            self._decode_pool_workers.set(workers)
        return out

    def index(self) -> CaptureIndex:
        """The capture's :class:`CaptureIndex`, built once per snapshot.

        Rebuilt only when new frames were observed since the last call;
        the underlying decode cache is always reused.
        """
        packets = self.decoded()
        if self._index is None or self._index.packet_count != len(packets):
            self._index = CaptureIndex(packets)
        return self._index

    def per_mac(self) -> Dict[MacAddress, List[Tuple[float, bytes]]]:
        """Split the capture per source/destination MAC, as the testbed does.

        A frame appears in the file of its source MAC and, when unicast,
        also in the destination's file (the AP attributes both ends).
        Reuses the decode cache instead of re-parsing Ethernet headers.
        """
        split: Dict[MacAddress, List[Tuple[float, bytes]]] = {}
        for packet, record in zip(self.decoded(), self._records):
            frame = packet.frame
            split.setdefault(frame.src, []).append(record)
            if not frame.dst.is_multicast:
                split.setdefault(frame.dst, []).append(record)
        return split

    def packets_of(self, mac) -> List[DecodedPacket]:
        """Decoded packets sent *by* the given MAC (from the cache)."""
        wanted = MacAddress(mac)
        return [packet for packet in self.decoded() if packet.frame.src == wanted]

    # -- persistence --------------------------------------------------------------

    def write_pcap(self, path) -> int:
        """Write the whole capture to one pcap file; returns packet count."""
        with PcapWriter(path) as writer:
            for timestamp, data in self._records:
                writer.write(timestamp, data)
            return writer.packet_count

    def write_per_mac_pcaps(self, directory) -> Dict[str, Path]:
        """Write one pcap per MAC (testbed layout); returns {mac: path}."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}
        for mac, records in self.per_mac().items():
            path = directory / f"{mac.compact()}.pcap"
            with PcapWriter(path) as writer:
                for timestamp, data in records:
                    writer.write(timestamp, data)
            paths[str(mac)] = path
        return paths

    def clear(self) -> None:
        self._records.clear()
        self._decoded.clear()
        self._decoded_upto = 0
        self._index = None
        self.packet_count = 0
        self.byte_count = 0
        self.decode_errors.clear()
