"""AP-side traffic capture, tcpdump-style.

§3.1: "a Wi-Fi AP captures all network traffic utilizing tcpdump.  The
captured traffic is stored in separate files for each MAC address,
enabling us to distinguish traffic from individual devices."  This
module reproduces both the global capture and the per-MAC split, and
can persist either as classic pcap files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.net.decode import DecodedPacket, decode_frame
from repro.net.ether import EthernetFrame
from repro.net.mac import MacAddress
from repro.net.pcap import PcapWriter
from repro.obs import get_obs


class ApCapture:
    """Collects every frame crossing the AP, with per-MAC indexing."""

    def __init__(self, keep_bytes: bool = True):
        self.keep_bytes = keep_bytes
        self._records: List[Tuple[float, bytes]] = []
        self.packet_count = 0
        self.byte_count = 0
        obs = get_obs()
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics.scoped("capture")
            self._frames_observed_total = metrics.counter(
                "frames_observed_total", "every frame seen by the AP capture")
            self._bytes_observed_total = metrics.counter(
                "bytes_observed_total", "bytes seen by the AP capture")

    def observe(self, timestamp: float, frame_bytes: bytes) -> None:
        self.packet_count += 1
        self.byte_count += len(frame_bytes)
        if self._obs.enabled:
            self._frames_observed_total.inc()
            self._bytes_observed_total.inc(len(frame_bytes))
        if self.keep_bytes:
            self._records.append((timestamp, frame_bytes))

    # -- access -----------------------------------------------------------------

    @property
    def records(self) -> List[Tuple[float, bytes]]:
        return list(self._records)

    def decoded(self) -> List[DecodedPacket]:
        """Decode the full capture (chronological order)."""
        return [decode_frame(data, ts) for ts, data in self._records]

    def per_mac(self) -> Dict[MacAddress, List[Tuple[float, bytes]]]:
        """Split the capture per source/destination MAC, as the testbed does.

        A frame appears in the file of its source MAC and, when unicast,
        also in the destination's file (the AP attributes both ends).
        """
        split: Dict[MacAddress, List[Tuple[float, bytes]]] = {}
        for timestamp, data in self._records:
            frame = EthernetFrame.decode(data)
            split.setdefault(frame.src, []).append((timestamp, data))
            if not frame.dst.is_multicast:
                split.setdefault(frame.dst, []).append((timestamp, data))
        return split

    def packets_of(self, mac) -> List[DecodedPacket]:
        """Decoded packets sent *by* the given MAC."""
        wanted = MacAddress(mac)
        return [
            decode_frame(data, ts)
            for ts, data in self._records
            if EthernetFrame.decode(data).src == wanted
        ]

    # -- persistence --------------------------------------------------------------

    def write_pcap(self, path) -> int:
        """Write the whole capture to one pcap file; returns packet count."""
        with PcapWriter(path) as writer:
            for timestamp, data in self._records:
                writer.write(timestamp, data)
            return writer.packet_count

    def write_per_mac_pcaps(self, directory) -> Dict[str, Path]:
        """Write one pcap per MAC (testbed layout); returns {mac: path}."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}
        for mac, records in self.per_mac().items():
            path = directory / f"{mac.compact()}.pcap"
            with PcapWriter(path) as writer:
                for timestamp, data in records:
                    writer.write(timestamp, data)
            paths[str(mac)] = path
        return paths

    def clear(self) -> None:
        self._records.clear()
        self.packet_count = 0
        self.byte_count = 0
