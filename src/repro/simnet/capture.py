"""AP-side traffic capture, tcpdump-style.

§3.1: "a Wi-Fi AP captures all network traffic utilizing tcpdump.  The
captured traffic is stored in separate files for each MAC address,
enabling us to distinguish traffic from individual devices."  This
module reproduces both the global capture and the per-MAC split, and
can persist either as classic pcap files.

Decode-once contract, columnar edition: observed frames land in a
:class:`~repro.net.columnar.PacketTable` in one ingest pass (raw-byte
fast path, per-frame quarantining fallback).  :meth:`ApCapture.index`
layers a cached :class:`~repro.net.index.CaptureIndex` of zero-copy
row-id views directly over the table — no ``DecodedPacket`` objects are
built for the analyses' hot loops.  :meth:`ApCapture.decoded` still
returns the memoized list of fully materialized packets for raw-list
consumers, extending incrementally as new frames are observed and
invalidating on :meth:`ApCapture.clear`; ``per_mac``/``packets_of``
read the table's columns and reuse the same materialized objects.
Large materialization backlogs fan out over a thread pool in
order-preserving chunks — except on small machines, where the pool is
a measured pessimization and auto-disables (see ``docs/performance.md``
for thresholds and env knobs).
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.net.columnar import F_UNICAST, PacketTable
from repro.net.decode import DecodedPacket, DecodeErrorLog
from repro.net.index import CaptureIndex
from repro.net.mac import MacAddress
from repro.net.pcap import PcapWriter
from repro.obs import get_obs


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Backlogs below the threshold materialize serially — thread-pool
#: dispatch has a fixed cost that small test captures should never pay.
DEFAULT_PARALLEL_THRESHOLD = 50_000
#: Records per worker-chunk when materializing in parallel.
DEFAULT_DECODE_CHUNK = 8_192
#: With this many CPUs or fewer, the thread pool cannot win: chunk
#: dispatch overhead on top of GIL-serialized decode makes the parallel
#: path strictly slower (seed BENCH_decode.json shows it).  Unless the
#: caller opted in explicitly, such machines decode serially.
MIN_PARALLEL_CPUS = 3


class RecordsView(Sequence):
    """A read-only, live view of the capture's ``(timestamp, bytes)`` records.

    Replaces the old ``list(...)`` copy that ``ApCapture.records``
    rebuilt on every property access (O(n) per call on the hot path).
    The view compares equal to lists/tuples of the same records so
    existing ``capture.records == []``-style assertions keep working,
    but offers no mutating methods — the capture owns the storage.
    """

    __slots__ = ("_records",)

    def __init__(self, records: List[Tuple[float, bytes]]):
        self._records = records

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return list(self._records[item])
        return self._records[item]

    def __iter__(self):
        return iter(self._records)

    def __eq__(self, other) -> bool:
        if isinstance(other, RecordsView):
            return self._records == other._records
        if isinstance(other, (list, tuple)):
            return self._records == list(other)
        return NotImplemented

    __hash__ = None  # mutable view: unhashable, like a list

    def __repr__(self) -> str:
        return f"RecordsView({self._records!r})"


class ApCapture:
    """Collects every frame crossing the AP, with per-MAC indexing."""

    def __init__(
        self,
        keep_bytes: bool = True,
        parallel_threshold: Optional[int] = None,
        decode_chunk_size: Optional[int] = None,
        decode_workers: Optional[int] = None,
    ):
        self.keep_bytes = keep_bytes
        #: True when the caller (ctor arg or env) chose the parallel
        #: threshold explicitly — the small-machine auto-disable only
        #: applies to the built-in default.
        self._parallel_explicit = (
            parallel_threshold is not None
            or "REPRO_DECODE_PARALLEL_THRESHOLD" in os.environ
        )
        #: Minimum materialization backlog before the thread pool is used.
        self.parallel_threshold = (
            parallel_threshold if parallel_threshold is not None
            else _env_int("REPRO_DECODE_PARALLEL_THRESHOLD", DEFAULT_PARALLEL_THRESHOLD)
        )
        #: Records per chunk when materializing in parallel.
        self.decode_chunk_size = (
            decode_chunk_size if decode_chunk_size is not None
            else _env_int("REPRO_DECODE_CHUNK", DEFAULT_DECODE_CHUNK)
        )
        #: Worker count for parallel materialization; 0 means ``os.cpu_count()``.
        self.decode_workers = (
            decode_workers if decode_workers is not None
            else _env_int("REPRO_DECODE_WORKERS", 0)
        )
        self._records: List[Tuple[float, bytes]] = []
        self._table = PacketTable()
        self._decoded: List[DecodedPacket] = []
        self._decoded_upto = 0
        self._index: Optional[CaptureIndex] = None
        self.packet_count = 0
        self.byte_count = 0
        #: Malformed frames are quarantined (counted, sampled) here
        #: instead of ever raising mid-analysis.
        self.decode_errors = DecodeErrorLog()
        #: Live subscribers called as ``tap(timestamp, frame_bytes)`` on
        #: every observed frame — how ``repro monitor --simulate``
        #: streams frames without the capture retaining them
        #: (``keep_bytes=False`` keeps the capture itself O(1)).
        self.frame_taps: List[callable] = []
        obs = get_obs()
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics.scoped("capture")
            self._frames_observed_total = metrics.counter(
                "frames_observed_total", "every frame seen by the AP capture")
            self._bytes_observed_total = metrics.counter(
                "bytes_observed_total", "bytes seen by the AP capture")
            self._decode_cache_hits = metrics.counter(
                "decode_cache_hits_total",
                "frames served from the decode cache instead of re-decoding")
            self._decode_cache_misses = metrics.counter(
                "decode_cache_misses_total",
                "frames decoded for the first time (cache fills)")
            self._decode_chunks_total = metrics.counter(
                "decode_chunks_total", "decode batches executed, per mode")
            self._decode_quarantined_total = metrics.counter(
                "decode_quarantined_total",
                "malformed frames quarantined by the decode layer, per reason")
            self._decode_pool_workers = metrics.gauge(
                "decode_pool_workers",
                "thread-pool width of the most recent parallel decode")
            self._decode_parallel_disabled = metrics.counter(
                "decode_parallel_disabled_total",
                "parallel decode auto-disabled on a small machine")

    def observe(self, timestamp: float, frame_bytes: bytes) -> None:
        self.packet_count += 1
        self.byte_count += len(frame_bytes)
        if self._obs.enabled:
            self._frames_observed_total.inc()
            self._bytes_observed_total.inc(len(frame_bytes))
        if self.keep_bytes:
            self._records.append((timestamp, frame_bytes))
        if self.frame_taps:
            for tap in self.frame_taps:
                tap(timestamp, frame_bytes)

    # -- access -----------------------------------------------------------------

    @property
    def records(self) -> RecordsView:
        """Read-only view of the raw records (no per-access copy)."""
        return RecordsView(self._records)

    def table(self) -> PacketTable:
        """The columnar packet table, ingesting any observed backlog first."""
        return self._ensure_table()

    def _ensure_table(self) -> PacketTable:
        """Ingest observed-but-uningested records into the columnar table.

        This is where frames are decoded (columnar fast path, layered
        fallback), so the decode-cache *miss* accounting and quarantine
        deltas live here: every newly ingested row is one cache fill,
        whether the analyses later read it as columns or as a
        materialized packet.
        """
        table = self._table
        built = len(table)
        total = len(self._records)
        if built < total:
            quarantined_before = self.decode_errors.snapshot()
            table.extend_records(self._records[built:total], self.decode_errors)
            if self._obs.enabled:
                self._decode_cache_misses.inc(total - built)
                self._decode_chunks_total.inc(mode="columnar")
                for reason, count in self.decode_errors.snapshot().items():
                    delta = count - quarantined_before.get(reason, 0)
                    if delta:
                        self._decode_quarantined_total.inc(delta, reason=reason)
        return table

    def decoded(self) -> List[DecodedPacket]:
        """Materialize the full capture (chronological order), memoized.

        Each frame is decoded exactly once: repeated calls return the
        same list object, which extends in place as new frames are
        observed and empties on :meth:`clear`.  Callers must treat the
        returned list as read-only.
        """
        table = self._ensure_table()
        cached = self._decoded_upto
        total = len(table)
        if cached < total:
            self._decoded.extend(self._materialize_backlog(table, cached, total))
            self._decoded_upto = total
        if self._obs.enabled and cached:
            self._decode_cache_hits.inc(cached)
        return self._decoded

    def _materialize_backlog(self, table: PacketTable,
                             start: int, stop: int) -> List[DecodedPacket]:
        """Materialize rows ``[start, stop)`` serially or in parallel chunks."""
        count = stop - start
        threshold = self.parallel_threshold
        use_pool = 0 < threshold <= count
        if (use_pool and not self._parallel_explicit
                and (os.cpu_count() or 1) < MIN_PARALLEL_CPUS):
            use_pool = False
            if self._obs.enabled:
                self._decode_parallel_disabled.inc()
        if not use_pool:
            if self._obs.enabled:
                self._decode_chunks_total.inc(mode="serial")
            packet = table.packet
            return [packet(rid) for rid in range(start, stop)]
        chunk_size = max(1, self.decode_chunk_size)
        chunks = [range(i, min(i + chunk_size, stop))
                  for i in range(start, stop, chunk_size)]
        workers = self.decode_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(chunks)))

        def materialize_chunk(rids) -> List[DecodedPacket]:
            packet = table.packet
            return [packet(rid) for rid in rids]

        out: List[DecodedPacket] = []
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves submission order, so the
            # concatenation below reproduces capture order exactly.
            for part in pool.map(materialize_chunk, chunks):
                out.extend(part)
        if self._obs.enabled:
            self._decode_chunks_total.inc(len(chunks), mode="parallel")
            self._decode_pool_workers.set(workers)
        return out

    def index(self) -> CaptureIndex:
        """The capture's :class:`CaptureIndex`, built once per snapshot.

        Rebuilt only when new frames were observed since the last call.
        The index is layered directly over the columnar table — no
        packet materialization happens here.
        """
        table = self._ensure_table()
        if self._index is None or self._index.packet_count != len(table):
            self._index = CaptureIndex(table)
        return self._index

    def per_mac(self) -> Dict[MacAddress, List[Tuple[float, bytes]]]:
        """Split the capture per source/destination MAC, as the testbed does.

        A frame appears in the file of its source MAC and, when unicast,
        also in the destination's file (the AP attributes both ends).
        Reads the table's MAC-id columns — no packet objects.
        """
        table = self._ensure_table()
        src_col, dst_col, flags_col = table.src_mac, table.dst_mac, table.flags
        mac_object = table.mac_object
        split: Dict[MacAddress, List[Tuple[float, bytes]]] = {}
        for rid, record in enumerate(self._records):
            split.setdefault(mac_object(src_col[rid]), []).append(record)
            if flags_col[rid] & F_UNICAST:
                split.setdefault(mac_object(dst_col[rid]), []).append(record)
        return split

    def packets_of(self, mac) -> List[DecodedPacket]:
        """Decoded packets sent *by* the given MAC (from the cache)."""
        table = self._ensure_table()
        mac_id = table.mac_id_of(mac)
        if mac_id is None:
            return []
        src_col = table.src_mac
        packet = table.packet
        return [packet(rid) for rid in range(len(table)) if src_col[rid] == mac_id]

    # -- persistence --------------------------------------------------------------

    def write_pcap(self, path) -> int:
        """Write the whole capture to one pcap file; returns packet count."""
        with PcapWriter(path) as writer:
            for timestamp, data in self._records:
                writer.write(timestamp, data)
            return writer.packet_count

    def write_per_mac_pcaps(self, directory) -> Dict[str, Path]:
        """Write one pcap per MAC (testbed layout); returns {mac: path}."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}
        for mac, records in self.per_mac().items():
            path = directory / f"{mac.compact()}.pcap"
            with PcapWriter(path) as writer:
                for timestamp, data in records:
                    writer.write(timestamp, data)
            paths[str(mac)] = path
        return paths

    def clear(self) -> None:
        self._records.clear()
        self._table = PacketTable()
        self._decoded.clear()
        self._decoded_upto = 0
        self._index = None
        self.packet_count = 0
        self.byte_count = 0
        self.decode_errors.clear()
