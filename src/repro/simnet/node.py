"""Network nodes: the simulated stacks devices and phones run on.

A :class:`Node` owns a MAC/IP identity, a service table, multicast
memberships, and handler registries.  Its default packet handling
reproduces the stack behaviours the paper's scans depend on: ARP
replies (broadcast vs unicast policies differ per §5.1), SYN/ACK vs RST
for open/closed TCP ports, ICMP port-unreachable for closed UDP ports,
and ICMP echo replies.
"""

from __future__ import annotations

import ipaddress
from typing import Callable, Dict, List, Optional

from repro.net.arp import ArpOp, ArpPacket
from repro.net.decode import DecodedPacket
from repro.net.eapol import EapolFrame
from repro.net.ether import EthernetFrame, EtherType
from repro.net.icmp import IcmpMessage, Icmpv6Message, IcmpType, Icmpv6Type
from repro.net.igmp import IgmpMessage
from repro.net.ipv4 import IpProtocol, Ipv4Packet
from repro.net.ipv6 import Ipv6Packet, link_local_from_mac
from repro.net.mac import (
    BROADCAST_MAC,
    MacAddress,
    ipv4_multicast_mac,
    ipv6_multicast_mac,
)
from repro.net.tcp import TcpFlags, TcpSegment
from repro.net.udp import UdpDatagram
from repro.simnet.services import ServiceTable

#: signature: handler(node, packet) -> None
UdpHandler = Callable[["Node", DecodedPacket], None]
TcpHandler = Callable[["Node", DecodedPacket], None]


class Node:
    """A device/phone/honeypot attached to the simulated LAN."""

    def __init__(
        self,
        name: str,
        mac,
        ip: str,
        hostname: str = "",
        vendor: str = "",
        services: Optional[ServiceTable] = None,
    ):
        self.name = name
        self.mac = MacAddress(mac)
        self.ip = str(ipaddress.IPv4Address(ip))
        self.ipv6_link_local = link_local_from_mac(self.mac)
        self.hostname = hostname or name
        self.vendor = vendor
        self.ipv6_enabled = True
        self.services = services or ServiceTable()
        self.lan = None  # set by Lan.attach
        self.multicast_groups: set = set()
        #: §5.1: only 58% of devices answer Echo's *broadcast* ARP scans,
        #: while all of them answer unicast ARP.
        self.responds_to_broadcast_arp = True
        #: §3.1: only 54 devices responded to TCP SYN scans at all.
        self.responds_to_tcp_scan = True
        #: Behaviour for UDP to a closed port: "icmp" or "drop".
        self.udp_closed_behavior = "icmp"
        self.responds_to_ping = True
        self._udp_handlers: Dict[int, List[UdpHandler]] = {}
        self._tcp_handlers: Dict[int, List[TcpHandler]] = {}
        self._raw_hooks: List[Callable[["Node", DecodedPacket], None]] = []
        self._next_ephemeral = 49152

    # -- wiring ---------------------------------------------------------------

    @property
    def simulator(self):
        return self.lan.simulator if self.lan else None

    @property
    def now(self) -> float:
        return self.simulator.now if self.simulator else 0.0

    def on_udp(self, port: int, handler: UdpHandler) -> None:
        """Register a handler for UDP datagrams arriving on ``port``."""
        self._udp_handlers.setdefault(port, []).append(handler)

    def on_tcp(self, port: int, handler: TcpHandler) -> None:
        """Register a handler for TCP payload segments arriving on ``port``."""
        self._tcp_handlers.setdefault(port, []).append(handler)

    def add_raw_hook(self, hook: Callable[["Node", DecodedPacket], None]) -> None:
        """Observe every frame delivered to this node (promiscuous hook)."""
        self._raw_hooks.append(hook)

    def ephemeral_port(self) -> int:
        if self._next_ephemeral > 65535:
            self._next_ephemeral = 49152
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # -- transmit helpers -------------------------------------------------------

    def _require_lan(self):
        if self.lan is None:
            raise RuntimeError(f"node {self.name!r} is not attached to a LAN")
        return self.lan

    def send_frame(self, dst_mac, ethertype: int, payload: bytes) -> None:
        frame = EthernetFrame(MacAddress(dst_mac), self.mac, ethertype, payload)
        self._require_lan().transmit(self, frame.encode())

    def send_udp(
        self,
        dst_ip: str,
        dst_port: int,
        payload: bytes,
        src_port: Optional[int] = None,
        dst_mac=None,
    ) -> int:
        """Send a UDP datagram; returns the source port used."""
        lan = self._require_lan()
        src_port = src_port if src_port is not None else self.ephemeral_port()
        datagram = UdpDatagram(src_port, dst_port, payload)
        address = ipaddress.IPv4Address(dst_ip)
        packet = Ipv4Packet(self.ip, dst_ip, IpProtocol.UDP, datagram.encode(self.ip, dst_ip))
        if dst_mac is None:
            if address.is_multicast:
                dst_mac = ipv4_multicast_mac(dst_ip)
            elif dst_ip == "255.255.255.255" or dst_ip == lan.broadcast_address:
                dst_mac = BROADCAST_MAC
            else:
                dst_mac = lan.mac_of(dst_ip) or BROADCAST_MAC
        self.send_frame(dst_mac, EtherType.IPV4, packet.encode())
        return src_port

    def send_udp6(self, dst_ip6: str, dst_port: int, payload: bytes, src_port: Optional[int] = None) -> int:
        lan = self._require_lan()
        src_port = src_port if src_port is not None else self.ephemeral_port()
        datagram = UdpDatagram(src_port, dst_port, payload)
        packet = Ipv6Packet(self.ipv6_link_local, dst_ip6, IpProtocol.UDP, datagram.encode())
        address = ipaddress.IPv6Address(dst_ip6)
        if address.is_multicast:
            dst_mac = ipv6_multicast_mac(dst_ip6)
        else:
            dst_mac = lan.mac_of_v6(dst_ip6) or BROADCAST_MAC
        self.send_frame(dst_mac, EtherType.IPV6, packet.encode())
        return src_port

    def send_tcp_segment(self, dst_ip: str, segment: TcpSegment, dst_mac=None) -> None:
        lan = self._require_lan()
        packet = Ipv4Packet(self.ip, dst_ip, IpProtocol.TCP, segment.encode(self.ip, dst_ip))
        if dst_mac is None:
            dst_mac = lan.mac_of(dst_ip) or BROADCAST_MAC
        self.send_frame(dst_mac, EtherType.IPV4, packet.encode())

    def send_arp_request(self, target_ip: str, unicast_to=None) -> None:
        """ARP who-has: broadcast by default, targeted when ``unicast_to``."""
        arp = ArpPacket(ArpOp.REQUEST, self.mac, self.ip, "00:00:00:00:00:00", target_ip)
        dst = MacAddress(unicast_to) if unicast_to is not None else BROADCAST_MAC
        self.send_frame(dst, EtherType.ARP, arp.encode())

    def send_arp_reply(self, requester_mac, requester_ip: str) -> None:
        arp = ArpPacket(ArpOp.REPLY, self.mac, self.ip, requester_mac, requester_ip)
        self.send_frame(requester_mac, EtherType.ARP, arp.encode())

    def send_icmp_echo(self, dst_ip: str, ident: int = 1, seq: int = 1) -> None:
        message = IcmpMessage.echo_request(ident, seq)
        packet = Ipv4Packet(self.ip, dst_ip, IpProtocol.ICMP, message.encode())
        dst_mac = self._require_lan().mac_of(dst_ip) or BROADCAST_MAC
        self.send_frame(dst_mac, EtherType.IPV4, packet.encode())

    def send_eapol_handshake(self) -> None:
        """Emit the WPA2 4-way handshake toward the AP."""
        lan = self._require_lan()
        for message_number in (2, 4):  # supplicant's half of the handshake
            self.send_frame(lan.ap_mac, EtherType.EAPOL, EapolFrame.key_frame(message_number).encode())

    def join_group(self, group: str) -> None:
        """Join an IPv4 multicast group (emits an IGMP membership report)."""
        if group in self.multicast_groups:
            return
        self.multicast_groups.add(group)
        report = IgmpMessage.join(group)
        packet = Ipv4Packet(self.ip, group, IpProtocol.IGMP, report.encode(), ttl=1)
        self.send_frame(ipv4_multicast_mac(group), EtherType.IPV4, packet.encode())

    def send_neighbor_solicitation(self, target_ip6: str) -> None:
        message = Icmpv6Message.neighbor_solicitation(
            ipaddress.IPv6Address(target_ip6).packed, self.mac
        )
        group = "ff02::1"
        packet = Ipv6Packet(self.ipv6_link_local, group, IpProtocol.IPV6_ICMP, message.encode(), hop_limit=255)
        self.send_frame(ipv6_multicast_mac(group), EtherType.IPV6, packet.encode())

    # -- receive path -----------------------------------------------------------

    def receive(self, packet: DecodedPacket) -> None:
        """Entry point called by the LAN for every frame addressed here."""
        for hook in self._raw_hooks:
            hook(self, packet)
        if packet.arp is not None:
            self._handle_arp(packet)
        elif packet.udp is not None:
            self._handle_udp(packet)
        elif packet.tcp is not None:
            self._handle_tcp(packet)
        elif packet.icmp is not None:
            self._handle_icmp(packet)
        elif packet.icmpv6 is not None:
            self._handle_icmpv6(packet)

    def _handle_arp(self, packet: DecodedPacket) -> None:
        arp = packet.arp
        if arp.op is not ArpOp.REQUEST or arp.target_ip != self.ip:
            return
        if packet.frame.is_broadcast and not self.responds_to_broadcast_arp:
            return
        self.send_arp_reply(arp.sender_mac, arp.sender_ip)

    def _handle_udp(self, packet: DecodedPacket) -> None:
        port = packet.udp.dst_port
        handlers = self._udp_handlers.get(port)
        if handlers:
            for handler in list(handlers):
                handler(self, packet)
            return
        if self.services.is_open("udp", port):
            return  # open but no active responder registered
        if port >= 49152:
            # Ephemeral range: a client socket this node opened for a
            # discovery query is still listening for (and consuming)
            # unicast replies, so no port-unreachable is generated.
            return
        if (
            self.udp_closed_behavior == "icmp"
            and packet.is_unicast
            and packet.src_ip is not None
            and packet.ipv4 is not None
        ):
            unreachable = IcmpMessage(IcmpType.DEST_UNREACHABLE, 3, bytes(4))
            reply = Ipv4Packet(self.ip, packet.src_ip, IpProtocol.ICMP, unreachable.encode())
            self.send_frame(packet.frame.src, EtherType.IPV4, reply.encode())

    def _handle_tcp(self, packet: DecodedPacket) -> None:
        segment = packet.tcp
        if segment.is_syn:
            if self.services.is_open("tcp", segment.dst_port):
                reply = TcpSegment(
                    segment.dst_port,
                    segment.src_port,
                    seq=1000,
                    ack=segment.seq + 1,
                    flags=TcpFlags.SYN | TcpFlags.ACK,
                )
                self.send_tcp_segment(packet.src_ip, reply, dst_mac=packet.frame.src)
            elif self.responds_to_tcp_scan:
                reply = TcpSegment(
                    segment.dst_port,
                    segment.src_port,
                    seq=0,
                    ack=segment.seq + 1,
                    flags=TcpFlags.RST | TcpFlags.ACK,
                )
                self.send_tcp_segment(packet.src_ip, reply, dst_mac=packet.frame.src)
            return
        if segment.payload:
            for handler in list(self._tcp_handlers.get(segment.dst_port, [])):
                handler(self, packet)

    def _handle_icmp(self, packet: DecodedPacket) -> None:
        if packet.icmp.icmp_type == IcmpType.ECHO_REQUEST and self.responds_to_ping:
            reply = Ipv4Packet(
                self.ip, packet.src_ip, IpProtocol.ICMP, IcmpMessage.echo_reply().encode()
            )
            self.send_frame(packet.frame.src, EtherType.IPV4, reply.encode())

    def _handle_icmpv6(self, packet: DecodedPacket) -> None:
        if not self.ipv6_enabled:
            return
        message = packet.icmpv6
        if message.icmp_type != Icmpv6Type.NEIGHBOR_SOLICITATION:
            return
        target = message.body[4:20]
        if len(target) == 16 and str(ipaddress.IPv6Address(target)) == self.ipv6_link_local:
            advert = Icmpv6Message.neighbor_advertisement(target, self.mac)
            reply = Ipv6Packet(
                self.ipv6_link_local,
                packet.ipv6.src,
                IpProtocol.IPV6_ICMP,
                advert.encode(),
                hop_limit=255,
            )
            self.send_frame(packet.frame.src, EtherType.IPV6, reply.encode())

    def __repr__(self) -> str:
        return f"Node({self.name!r}, mac={self.mac}, ip={self.ip})"
