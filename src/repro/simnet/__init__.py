"""Deterministic discrete-event LAN simulator.

This is the stand-in for the MonIoTr "living lab" (§3.1): a Wi-Fi
AP/switch that delivers unicast, multicast, and broadcast frames among
nodes, captures everything it sees (tcpdump-style) into per-MAC pcap
streams, and drives per-device behaviour profiles on a virtual clock.
"""

from repro.simnet.simulator import Simulator
from repro.simnet.lan import Lan
from repro.simnet.node import Node, UdpHandler
from repro.simnet.capture import ApCapture
from repro.simnet.services import ServiceInfo, ServiceTable

__all__ = [
    "Simulator",
    "Lan",
    "Node",
    "UdpHandler",
    "ApCapture",
    "ServiceInfo",
    "ServiceTable",
]
