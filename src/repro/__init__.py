"""repro — a full reproduction of "In the Room Where It Happens:
Characterizing Local Communication and Threats in Smart Homes" (IMC '23).

Quick start::

    from repro import StudyPipeline

    pipeline = StudyPipeline(seed=7, passive_duration=900.0)
    report = pipeline.run()
    print(report.device_graph.summary())

Subpackages
-----------
``repro.net``        packet codecs, pcap I/O, flows, local-traffic filter
``repro.protocols``  application-layer codecs (mDNS, SSDP, DHCP, ...)
``repro.simnet``     the discrete-event home-LAN simulator
``repro.devices``    the 93-device MonIoTr testbed catalog + behaviours
``repro.scan``       nmap/Nessus analogues
``repro.honeypot``   SSDP/mDNS/HTTP/telnet honeypots
``repro.classify``   tshark-like and nDPI-like traffic classifiers
``repro.apps``       the 2,335-app dataset + instrumented Android runtime
``repro.inspector``  the crowdsourced (IoT Inspector-style) dataset
``repro.core``       the paper's analyses (one module per table/figure)
``repro.fleet``      sharded, cached multi-process crowdsourced runner
``repro.obs``        opt-in metrics / sim-time tracing / structured logs
``repro.faults``     seed-deterministic fault injection (chaos plans)
``repro.report``     ASCII table rendering
"""

__version__ = "1.0.0"

from repro.core.pipeline import StudyPipeline, StudyReport
from repro.devices.behaviors import build_testbed, Testbed
from repro.devices.catalog import build_catalog
from repro.apps.dataset import generate_app_dataset
from repro.inspector.generate import generate_dataset as generate_inspector_dataset
from repro.core.fingerprint import fingerprint_households
from repro.fleet import FleetSpec, run_fleet

__all__ = [
    "__version__",
    "StudyPipeline",
    "StudyReport",
    "build_testbed",
    "Testbed",
    "build_catalog",
    "generate_app_dataset",
    "generate_inspector_dataset",
    "fingerprint_households",
    "FleetSpec",
    "run_fleet",
]
