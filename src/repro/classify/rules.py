"""Manual classification rules and the corrected (final) classifier.

§3.5: "we selected nDPI to classify the captured IoT traffic and
augmented it with manually-defined rules informed by our manual
evaluation, thus allowing us to handle errors and coverage limitations."
The manual rules below encode the corrections the paper describes:
STUN-on-10000-10010 is really RTP (Appendix C.2), Echo's 55444 is RTP
(multi-room audio), 56700 broadcasts are an unknown Lifx-style
protocol, CISCOVPN/AMAZONAWS are classifier artifacts, and encrypted
cluster chatter stays UNKNOWN rather than unlabeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.classify.labels import Label
from repro.classify.ndpi_like import NdpiLikeClassifier
from repro.net.decode import DecodedPacket
from repro.net.flows import Flow


@dataclass
class ManualRule:
    """One manually-defined correction rule."""

    name: str
    applies: Callable[[DecodedPacket, Optional[Label]], bool]
    label: Label


def default_rules() -> List[ManualRule]:
    """The corrections the paper's manual evaluation produced."""
    return [
        ManualRule(
            name="google-10000-range-is-rtp",
            applies=lambda packet, label: label is Label.STUN
            and packet.udp is not None
            and any(10000 <= (port or 0) <= 10010 for port in (packet.src_port, packet.dst_port)),
            label=Label.RTP,
        ),
        ManualRule(
            name="echo-multiroom-55444-is-rtp",
            applies=lambda packet, label: packet.udp is not None
            and 55444 in (packet.src_port, packet.dst_port),
            label=Label.RTP,
        ),
        ManualRule(
            name="ciscovpn-artifact-is-ssdp",
            applies=lambda packet, label: label is Label.CISCOVPN,
            label=Label.SSDP,
        ),
        ManualRule(
            name="amazonaws-artifact-is-eapol",
            applies=lambda packet, label: label is Label.AMAZON_AWS,
            label=Label.EAPOL,
        ),
        ManualRule(
            name="lifx-56700-broadcast-unknown",
            applies=lambda packet, label: packet.udp is not None
            and packet.dst_port == 56700,
            label=Label.UNKNOWN,
        ),
        ManualRule(
            name="unlabeled-transport-is-unknown",
            applies=lambda packet, label: label is None
            and (packet.udp is not None or packet.tcp is not None),
            label=Label.UNKNOWN,
        ),
    ]


class ManualRules:
    """An ordered rule set applied on top of a base classifier's output."""

    def __init__(self, rules: Optional[List[ManualRule]] = None):
        self.rules = rules if rules is not None else default_rules()

    def apply(self, packet: DecodedPacket, label: Optional[Label]) -> Optional[Label]:
        for rule in self.rules:
            if rule.applies(packet, label):
                return rule.label
        return label


class CorrectedClassifier:
    """nDPI + manual rules: the paper's final classification method."""

    name = "nDPI+manual"

    def __init__(self, base=None, rules: Optional[ManualRules] = None):
        self.base = base if base is not None else NdpiLikeClassifier()
        self.rules = rules if rules is not None else ManualRules()

    def classify_packet(self, packet: DecodedPacket) -> Optional[Label]:
        return self.rules.apply(packet, self.base.classify_packet(packet))

    def classify_flow(self, flow: Flow) -> Optional[Label]:
        for packet in flow.packets[:8]:
            label = self.classify_packet(packet)
            if label is not None:
                return label
        # A transport flow with no classifiable packet is still UNKNOWN
        # under the manual overlay.
        return Label.UNKNOWN if flow.packets else None
