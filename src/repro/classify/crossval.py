"""Cross-validation of the two classifiers — regenerates Figure 3.

Appendix C.2 applies tshark and nDPI to 366K local packets/flows from
the idle lab: tshark labels 76% of flows (35 labels), nDPI 74% (18
labels), they disagree on 16%, and neither labels 7.5% (mostly layer-3
traffic).  :func:`cross_validate` computes the same quantities plus the
confusion matrix the heatmap renders.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.classify.labels import Label
from repro.classify.ndpi_like import NdpiLikeClassifier
from repro.classify.tshark_like import TsharkLikeClassifier
from repro.net.decode import DecodedPacket
from repro.net.flows import FlowTable, assemble_flows
from repro.net.index import CaptureIndex


@dataclass
class CrossValidation:
    """The outcome of comparing two classifiers on one capture."""

    total_units: int
    tshark_labeled: int
    ndpi_labeled: int
    agree: int
    disagree: int
    neither: int
    confusion: Dict[Tuple[str, str], int] = field(default_factory=dict)
    tshark_label_count: int = 0
    ndpi_label_count: int = 0

    @property
    def tshark_coverage(self) -> float:
        return self.tshark_labeled / self.total_units if self.total_units else 0.0

    @property
    def ndpi_coverage(self) -> float:
        return self.ndpi_labeled / self.total_units if self.total_units else 0.0

    @property
    def disagree_fraction(self) -> float:
        return self.disagree / self.total_units if self.total_units else 0.0

    @property
    def neither_fraction(self) -> float:
        return self.neither / self.total_units if self.total_units else 0.0

    def heatmap(self) -> Tuple[List[str], List[str], List[List[int]]]:
        """(tshark_labels, ndpi_labels, matrix) for Figure 3 rendering."""
        tshark_axis = sorted({pair[0] for pair in self.confusion})
        ndpi_axis = sorted({pair[1] for pair in self.confusion})
        matrix = [
            [self.confusion.get((t_label, n_label), 0) for t_label in tshark_axis]
            for n_label in ndpi_axis
        ]
        return tshark_axis, ndpi_axis, matrix


def _label_name(label: Optional[Label]) -> str:
    return str(label) if label is not None else "UNDETECTED"


def _normalize(label: Optional[Label]) -> Optional[Label]:
    """Collapse aliases before agreement accounting (HTTPS is TLS)."""
    if label is Label.HTTPS:
        return Label.TLS
    return label


def cross_validate(
    packets: "Iterable[DecodedPacket] | CaptureIndex",
    tshark: Optional[TsharkLikeClassifier] = None,
    ndpi: Optional[NdpiLikeClassifier] = None,
) -> CrossValidation:
    """Classify a capture with both engines and compare, per flow.

    Units of comparison are RFC 6146 flows for transport traffic plus
    individual packets for non-transport traffic (the layer-3 tail the
    paper reports as mostly unlabeled).  With a prebuilt
    :class:`CaptureIndex` the flow table is the index's shared, lazily
    assembled one instead of a fresh :func:`assemble_flows` pass.
    """
    tshark = tshark or TsharkLikeClassifier()
    ndpi = ndpi or NdpiLikeClassifier()
    table = CaptureIndex.ensure(packets).flows

    pairs: List[Tuple[Optional[Label], Optional[Label]]] = []
    for flow in table:
        pairs.append((tshark.classify_flow(flow), ndpi.classify_flow(flow)))
    # Non-transport traffic is grouped per (source MAC, layer kind) — one
    # comparison unit per device per L2/L3 protocol, mirroring how the
    # paper treats the layer-3 tail ("mostly corresponded to layer 3
    # traffic", Appendix C.2).
    groups: Dict[Tuple[str, str], DecodedPacket] = {}
    for packet in table.non_flow_packets:
        kind = (
            "arp" if packet.arp else
            "eapol" if packet.eapol else
            "icmp" if packet.icmp else
            "icmpv6" if packet.icmpv6 else
            "igmp" if packet.igmp else
            "l3"
        )
        groups.setdefault((str(packet.frame.src), kind), packet)
    for packet in groups.values():
        t_label = tshark.classify_packet(packet)
        n_label = ndpi.classify_packet(packet)
        # Pure layer-3 packets that neither engine dissects form the
        # "neither reported a label" bucket.
        t_label = None if t_label is Label.UNKNOWN_L3 else t_label
        n_label = None if n_label is Label.UNKNOWN_L3 else n_label
        pairs.append((t_label, n_label))

    confusion: Counter = Counter()
    tshark_labeled = ndpi_labeled = agree = disagree = neither = 0
    for t_label, n_label in pairs:
        confusion[(_label_name(t_label), _label_name(n_label))] += 1
        if t_label is not None:
            tshark_labeled += 1
        if n_label is not None:
            ndpi_labeled += 1
        if t_label is None and n_label is None:
            neither += 1
        elif t_label is not None and n_label is not None:
            if _normalize(t_label) is _normalize(n_label):
                agree += 1
            else:
                disagree += 1

    return CrossValidation(
        total_units=len(pairs),
        tshark_labeled=tshark_labeled,
        ndpi_labeled=ndpi_labeled,
        agree=agree,
        disagree=disagree,
        neither=neither,
        confusion=dict(confusion),
        tshark_label_count=len({pair[0] for pair in confusion if pair[0] != "UNDETECTED"}),
        ndpi_label_count=len({pair[1] for pair in confusion if pair[1] != "UNDETECTED"}),
    )
