"""The tshark-like classifier: dissection driven by specs and port numbers.

tshark "relies on packet header and payload information to identify
application-layer protocols using predefined specifications" (§3.5) —
in practice the dissector chosen is usually determined by the
destination/source port, which is exactly why it mislabels traffic on
non-standard ports.  Appendix C.2 documents the resulting failure
modes, which this implementation reproduces:

* SSDP unicast *responses* (port 1900 -> ephemeral) fall outside the
  port table and come back unlabeled (the "generic transport-layer
  traffic" bucket) or, for encrypted TP-Link-port traffic, as
  TPLINK_SHP.
* Google's UDP 10000-10010 RTP is labeled STUN (port-range heuristic).
* RTP on non-standard ports is missed entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.classify.labels import Label
from repro.net.decode import DecodedPacket
from repro.net.ether import EtherType
from repro.net.flows import Flow


#: port -> label, for both UDP and TCP unless overridden below.
PORT_TABLE = {
    53: Label.DNS,
    67: Label.DHCP,
    68: Label.DHCP,
    123: Label.NTP,
    137: Label.NETBIOS,
    138: Label.NETBIOS,
    319: Label.PTP,
    320: Label.PTP,
    546: Label.DHCPV6,
    547: Label.DHCPV6,
    1900: Label.SSDP,
    3478: Label.STUN,
    5349: Label.STUN,
    5353: Label.MDNS,
    5683: Label.COAP,
    5684: Label.COAP,
    5540: Label.MATTER,
    9999: Label.TPLINK_SHP,
}

TCP_PORT_TABLE = {
    23: Label.TELNET,
    80: Label.HTTP,
    443: Label.HTTPS,
    554: Label.RTSP,
    1080: Label.SOCKS5,
    8008: Label.HTTP,
    8009: Label.TLS,
    8060: Label.HTTP,
    8001: Label.HTTP,
    8080: Label.HTTP,
    8443: Label.HTTPS,
    7000: Label.TLS,
    4070: Label.HTTPS,
    55442: Label.HTTP,
    55443: Label.HTTP,
}

#: tshark's classicstun heuristic fires on these UDP ports (App. C.2:
#: Google's 10000-10010 traffic "was initially classified as STUN").
STUN_HEURISTIC_PORTS = set(range(10000, 10011))


class TsharkLikeClassifier:
    """Spec/port-driven dissection of packets and flows."""

    name = "tshark"

    def classify_packet(self, packet: DecodedPacket) -> Optional[Label]:
        """Label a single packet; None when no dissector claims it."""
        kind = packet.frame.kind
        if kind is EtherType.ARP:
            return Label.ARP
        if kind is EtherType.EAPOL:
            return Label.EAPOL
        if kind is EtherType.LLC:
            return Label.XID_LLC
        if packet.icmp is not None:
            return Label.ICMP
        if packet.icmpv6 is not None:
            return Label.ICMPV6
        if packet.igmp is not None:
            return Label.IGMP
        if packet.udp is None and packet.tcp is None:
            return Label.UNKNOWN_L3 if (packet.ipv4 or packet.ipv6) else None
        return self._classify_ports(packet)

    def _classify_ports(self, packet: DecodedPacket) -> Optional[Label]:
        # Dissector selection keys on the *destination* port; this is
        # what makes tshark miss unicast discovery *responses* (which
        # run well-known -> ephemeral) — the dominant disagreement class
        # of Appendix C.2.
        table = dict(PORT_TABLE)
        if packet.tcp is not None:
            table.update(TCP_PORT_TABLE)
        port = packet.dst_port
        if port in table:
            label = table[port]
            # The TCP TLS dissector confirms with the record header
            # when payload is present.
            if label in (Label.HTTPS, Label.TLS) and packet.app_payload:
                if packet.app_payload[0] not in (20, 21, 22, 23):
                    return Label.UNKNOWN
            return label
        # The TP-Link dissector registers on UDP/TCP 9999 and claims the
        # reverse direction too — so encrypted responses from port 9999
        # come back labeled TPLINK_SHP even on ephemeral destinations.
        if packet.src_port == 9999:
            return Label.TPLINK_SHP
        if packet.udp is not None:
            if port in STUN_HEURISTIC_PORTS and len(packet.app_payload) >= 12:
                return Label.STUN
            if packet.src_port in STUN_HEURISTIC_PORTS and len(packet.app_payload) >= 12:
                return Label.STUN
        # HTTP heuristic dissector: requests and responses on any TCP
        # port (Wireshark's "HTTP over random ports" heuristic).
        if packet.tcp is not None:
            head = packet.app_payload[:8]
            if head[:4] in (b"GET ", b"POST", b"HEAD", b"PUT ") or head.startswith(b"HTTP/1."):
                return Label.HTTP
        # Anything else with payload is dissected only as generic
        # transport-layer traffic ("Data" in Wireshark terms).
        if packet.app_payload:
            return Label.UNKNOWN
        return None

    def classify_flow(self, flow: Flow) -> Optional[Label]:
        """Label a flow by its first classifiable packet."""
        for packet in flow.packets:
            label = self.classify_packet(packet)
            if label is not None:
                return label
        return None
