"""Canonical protocol labels (the normalized axes of Figures 2 and 3)."""

from __future__ import annotations

import enum


class Label(str, enum.Enum):
    """Normalized protocol labels across classifiers.

    Values match the x-axis names of Figure 2 where the paper names
    them, so reports read like the paper's.
    """

    ARP = "ARP"
    DHCP = "DHCP"
    DHCPV6 = "DHCPv6"
    EAPOL = "EAPOL"
    XID_LLC = "XID/LLC"
    ICMP = "ICMP"
    ICMPV6 = "ICMPv6"
    IGMP = "IGMP"
    MDNS = "mDNS"
    DNS = "DNS"
    SSDP = "SSDP"
    HTTP = "HTTP"
    HTTPS = "HTTPS"
    TLS = "TLS"
    TPLINK_SHP = "TPLINK_SHP"
    TUYALP = "TuyaLP"
    COAP = "COAP"
    NETBIOS = "NETBIOS"
    TELNET = "TELNET"
    RTP = "RTP"
    RTCP = "RTCP"
    RTSP = "HTTP.RTSP"
    STUN = "STUN"
    NTP = "NTP"
    PTP = "PTP"
    MATTER = "MATTER"
    SOCKS5 = "SOCKS5"
    AJP = "AJP"
    WEAVE = "WEAVE"
    UNKNOWN = "UNKNOWN"
    UNKNOWN_L3 = "UNKNOWN-L3"
    # Deliberate misclassification labels the paper documents (App. C.2).
    AMAZON_AWS = "AMAZONAWS"
    CISCOVPN = "CISCOVPN"

    def __str__(self) -> str:  # so f"{label}" prints the wire name
        return self.value


#: Labels that denote discovery protocols (used by §5.1 analyses).
DISCOVERY_LABELS = {
    Label.ARP,
    Label.DHCP,
    Label.DHCPV6,
    Label.ICMPV6,
    Label.MDNS,
    Label.SSDP,
    Label.TPLINK_SHP,
    Label.TUYALP,
    Label.COAP,
    Label.NETBIOS,
}

#: Labels that are link/network management rather than application data.
MANAGEMENT_LABELS = {
    Label.ARP,
    Label.DHCP,
    Label.DHCPV6,
    Label.EAPOL,
    Label.XID_LLC,
    Label.ICMP,
    Label.ICMPV6,
    Label.IGMP,
}
