"""Traffic classification: two independent engines + manual overlay.

The paper compares tshark (spec/port-driven dissection) against nDPI
(signature/behaviour-based detection) on 366K local packets (Appendix
C.2), finds the documented disagreement modes, and settles on nDPI plus
manually-defined rules (§3.5).  This package implements both engines,
the manual-rule overlay, and the cross-validation that regenerates
Figure 3.
"""

from repro.classify.labels import Label
from repro.classify.tshark_like import TsharkLikeClassifier
from repro.classify.ndpi_like import NdpiLikeClassifier
from repro.classify.rules import ManualRules, CorrectedClassifier
from repro.classify.crossval import CrossValidation, cross_validate

__all__ = [
    "Label",
    "TsharkLikeClassifier",
    "NdpiLikeClassifier",
    "ManualRules",
    "CorrectedClassifier",
    "CrossValidation",
    "cross_validate",
]
