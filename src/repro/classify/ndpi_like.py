"""The nDPI-like classifier: signature/behaviour-based deep inspection.

nDPI "utilizes signature- and behavioral-based detection, and heuristic
techniques" (§3.5).  This engine inspects payload bytes — so it
correctly labels SSDP on any port, TPLINK-SHP by decrypting the XOR
autokey, TuyaLP by its frame magic — but also reproduces the
misclassifications Appendix C.2 documents:

* a small fraction of SSDP flows labeled CISCOVPN;
* Nintendo's EAPOL layer-2 traffic labeled AMAZONAWS;
* RTP-without-STUN-cookie on ports 10000-10010 labeled STUN.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.classify.labels import Label
from repro.net.decode import DecodedPacket
from repro.net.ether import EtherType
from repro.net.flows import Flow
from repro.protocols.coap import CoapMessage
from repro.protocols.dns import DnsMessage
from repro.protocols.netbios import NetbiosNsQuery
from repro.protocols.rtp import looks_like_rtp
from repro.protocols.stun import looks_like_stun
from repro.protocols.tplink_shp import TplinkShpMessage
from repro.protocols.tuyalp import TuyaLpMessage

#: OUI of the Nintendo Switch whose EAPOL frames nDPI mislabels.
_NINTENDO_OUI = "98:b6:e9"

_HTTP_METHODS = (b"GET ", b"POST", b"PUT ", b"HEAD", b"DELETE", b"OPTIONS", b"SUBSCRIBE", b"NOTIFY /")


class NdpiLikeClassifier:
    """Signature-based DPI over packets and flows."""

    name = "nDPI"

    def classify_packet(self, packet: DecodedPacket) -> Optional[Label]:
        kind = packet.frame.kind
        if kind is EtherType.ARP:
            return Label.ARP
        if kind is EtherType.EAPOL:
            # Appendix C.2: Nintendo Switch layer-2 traffic mislabeled.
            if packet.frame.src.oui == _NINTENDO_OUI:
                return Label.AMAZON_AWS
            return Label.EAPOL
        if kind is EtherType.LLC:
            return Label.XID_LLC
        if packet.icmp is not None:
            return Label.ICMP
        if packet.icmpv6 is not None:
            return Label.ICMPV6
        if packet.igmp is not None:
            return Label.IGMP
        payload = packet.app_payload
        if packet.udp is None and packet.tcp is None:
            return Label.UNKNOWN_L3 if (packet.ipv4 or packet.ipv6) else None
        if not payload:
            return None
        return self._classify_payload(packet, payload)

    def _classify_payload(self, packet: DecodedPacket, payload: bytes) -> Optional[Label]:
        # Text signatures first.
        head = payload[:16]
        if head.startswith(b"M-SEARCH") or head.startswith(b"NOTIFY * "):
            return self._ssdp_or_ciscovpn(payload)
        if head.startswith(b"HTTP/1.1 200 OK"):
            # SSDP responses carry an ST header; plain HTTP does not.
            upper = payload[:512].upper()
            if b"\r\nST:" in upper or b"\r\nNT:" in upper or b"\r\nUSN:" in upper:
                return self._ssdp_or_ciscovpn(payload)
            return Label.HTTP
        if any(head.startswith(method) for method in _HTTP_METHODS):
            if head.startswith(b"NOTIFY /"):
                return Label.HTTP
            return Label.HTTP
        if head.startswith(b"RTSP/1.0") or b" RTSP/1.0" in payload[:64]:
            return Label.RTSP
        # Binary signatures.
        if payload[0:1] and payload[0] in (20, 21, 22, 23) and len(payload) >= 5:
            version = payload[1:3]
            if version[:1] == b"\x03" and version[1] <= 4:
                return Label.TLS
        if looks_like_stun(payload):
            return Label.STUN
        if self._is_dhcp(packet, payload):
            return Label.DHCP
        if self._is_dhcpv6(packet, payload):
            return Label.DHCPV6
        dns_label = self._try_dns(packet, payload)
        if dns_label is not None:
            return dns_label
        if self._try_decode(TuyaLpMessage.decode, payload):
            return Label.TUYALP
        if self._try_decode(TplinkShpMessage.decode, payload):
            return Label.TPLINK_SHP
        if packet.tcp is not None and self._is_tplink_tcp(payload):
            return Label.TPLINK_SHP
        if packet.udp is not None and self._try_coap(packet, payload):
            return Label.COAP
        if self._try_decode(NetbiosNsQuery.decode, payload):
            return Label.NETBIOS
        if packet.udp is not None and looks_like_rtp(payload):
            # Appendix C.2: the 10000-10010 range was (mis)labeled STUN.
            port = packet.dst_port or 0
            sport = packet.src_port or 0
            if 10000 <= port <= 10010 or 10000 <= sport <= 10010:
                return Label.STUN
            return Label.RTP
        return None

    @staticmethod
    def _ssdp_or_ciscovpn(payload: bytes) -> Label:
        # Appendix C.2: "nDPI incorrectly identified a small fraction of
        # SSDP flows as CiscoVPN".  The real bug involves a signature
        # collision on packet sizes; we reproduce it deterministically
        # for NOTIFY payloads of one specific length bucket (~1-2%).
        if payload.startswith(b"NOTIFY") and len(payload) % 97 == 0:
            return Label.CISCOVPN
        return Label.SSDP

    @staticmethod
    def _is_dhcp(packet: DecodedPacket, payload: bytes) -> bool:
        if packet.udp is None:
            return False
        if packet.udp.dst_port not in (67, 68) and packet.udp.src_port not in (67, 68):
            return False
        return len(payload) > 240 and payload[236:240] == b"\x63\x82\x53\x63"

    @staticmethod
    def _is_dhcpv6(packet: DecodedPacket, payload: bytes) -> bool:
        if packet.udp is None:
            return False
        if packet.udp.dst_port not in (546, 547) and packet.udp.src_port not in (546, 547):
            return False
        from repro.protocols.dhcpv6 import Dhcpv6Message

        try:
            Dhcpv6Message.decode(payload)
        except (ValueError, struct.error):
            return False
        return True

    @staticmethod
    def _try_dns(packet: DecodedPacket, payload: bytes) -> Optional[Label]:
        if packet.udp is None or len(payload) < 12:
            return None
        ports = (packet.udp.src_port, packet.udp.dst_port)
        if not any(port in (53, 5353) for port in ports):
            return None
        try:
            message = DnsMessage.decode(payload)
        except ValueError:
            return None
        if 5353 in ports:
            # Matter runs its discovery inside mDNS; nDPI reports it as
            # its own protocol when the service names match (§4.1).
            names = [question.name for question in message.questions]
            names += [record.name for record in message.all_records]
            if any("_matter" in name for name in names):
                return Label.MATTER
            return Label.MDNS
        return Label.DNS

    @staticmethod
    def _try_coap(packet: DecodedPacket, payload: bytes) -> bool:
        ports = (packet.udp.src_port, packet.udp.dst_port)
        if not any(port in (5683, 5684) for port in ports):
            return False
        try:
            CoapMessage.decode(payload)
        except (ValueError, IndexError):
            return False
        return True

    @staticmethod
    def _is_tplink_tcp(payload: bytes) -> bool:
        if len(payload) < 8:
            return False
        try:
            TplinkShpMessage.decode(payload, transport="tcp")
        except ValueError:
            return False
        return True

    @staticmethod
    def _try_decode(decoder, payload: bytes) -> bool:
        try:
            decoder(payload)
        except (ValueError, IndexError, struct.error):
            return False
        return True

    def classify_flow(self, flow: Flow) -> Optional[Label]:
        """Label a flow from its first packets with payload (DPI style)."""
        for packet in flow.packets[:8]:  # nDPI inspects the first packets only
            label = self.classify_packet(packet)
            if label is not None:
                return label
        return None
