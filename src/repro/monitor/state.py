"""Incremental, mergeable analysis state — the ``repro monitor`` core.

Four state classes mirror the four batch analyses the study pipeline
runs over a completed capture:

===================  ===========================================  =====================
state                batch function                               artifact
===================  ===========================================  =====================
IncrementalCensus    ``repro.core.protocol_census``               ``ProtocolCensus``
IncrementalDevice\\  ``repro.core.device_graph``                   ``DeviceGraph``
Graph
IncrementalExposure  ``repro.core.exposure``                      ``ExposureMatrix``
IncrementalPeriod\\  ``repro.core.periodicity``                    ``PeriodicityResult``
icity
===================  ===========================================  =====================

Each state absorbs packets via ``update(packets, row_ids=None)`` over a
columnar :class:`~repro.net.columnar.PacketTable` (or a prebuilt
:class:`~repro.net.index.CaptureIndex`, the fast path the monitor uses
so classifier labels are memoized once per chunk across all four
states), and supports the exact additive merge contract the fleet
layer proved (PR 4/5):

* ``absorb(other)`` folds another state of the same configuration in;
* ``merge(states)`` (classmethod) folds a chronological sequence;
* ``to_dict()`` / ``from_dict()`` round-trip through plain JSON data;
* ``fresh()`` returns an empty state with the same configuration.

``finalize()`` rebuilds the batch analysis object.  When the absorbed
rows cover a capture in chronological order the result is
**byte-identical** to the batch function's output through
:mod:`repro.report.artifacts` — including insertion-order-sensitive
pieces (exposure example lists, periodicity group order), which is why
every update path processes rows chronologically and every merge folds
states in pane order.  The equivalence tests under ``tests/monitor``
pin this contract.

Device attribution follows the batch analyses: an explicit
``device_macs`` map (MAC → device name) restricts every analysis to
mapped devices, while ``device_macs=None`` selects **identity mode** —
each observed *source* MAC is its own device, exactly what
``repro ingest`` does when no ``--device-map`` is given.  Identity mode
has one global dependency: the batch device graph keeps an edge only
when both endpoints appear as a source *somewhere in the whole
capture*.  The incremental graph therefore records candidate edges
unfiltered and applies the endpoint filter at ``finalize()`` against
the merged observed-source set, which reproduces the batch result for
any chunking.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.classify.labels import DISCOVERY_LABELS, Label
from repro.core.device_graph import _DISCOVERY_PORTS, DeviceGraph
from repro.core.exposure import ExposureMatrix, analyze_exposure
from repro.core.periodicity import PeriodicityResult, detect_groups
from repro.core.protocol_census import ProtocolCensus
from repro.net.columnar import F_ARP, F_UDP, F_UNICAST, TRANSPORT_UDP
from repro.net.index import CaptureIndex


def _ensure_compatible(a: "IncrementalState", b: "IncrementalState") -> None:
    if type(a) is not type(b):
        raise ValueError(f"cannot merge {type(b).__name__} into {type(a).__name__}")
    if a.config() != b.config():
        raise ValueError(
            f"cannot merge {type(a).__name__} states with different "
            f"configurations")


class IncrementalState:
    """Shared contract for the four incremental analyses."""

    #: Snapshot-artifact key; also the per-state name the monitor uses.
    name = "state"

    def config(self) -> Tuple:
        """Hashable configuration; merges require equal configs."""
        raise NotImplementedError

    def fresh(self) -> "IncrementalState":
        """An empty state with this state's configuration."""
        raise NotImplementedError

    def update(self, packets, row_ids: Optional[Sequence[int]] = None) -> None:
        """Absorb rows (all rows by default) in chronological order."""
        raise NotImplementedError

    def absorb(self, other: "IncrementalState") -> None:
        """Fold ``other`` (chronologically later or disjoint) into self."""
        raise NotImplementedError

    def finalize(self):
        """Rebuild the batch analysis object from the absorbed state."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "IncrementalState":
        raise NotImplementedError

    @classmethod
    def merge(cls, states: "Iterable[IncrementalState]") -> "IncrementalState":
        """Fold states (in chronological pane order) into a new state."""
        states = list(states)
        if not states:
            raise ValueError(f"{cls.__name__}.merge: no states to merge")
        merged = states[0].fresh()
        for state in states:
            merged.absorb(state)
        return merged


def _device_map_out(device_macs: Optional[Dict[str, str]]):
    return None if device_macs is None else dict(device_macs)


class IncrementalCensus(IncrementalState):
    """Streaming Figure 2: per-protocol device sets, additively merged."""

    name = "census"

    def __init__(self, device_macs: Optional[Dict[str, str]] = None,
                 total_devices: Optional[int] = None):
        self.device_macs = _device_map_out(device_macs)
        self.total_devices = total_devices
        #: protocol label -> devices observed using it passively.
        self.passive: Dict[str, Set[str]] = {}
        #: Identity mode only: every source MAC observed (labelled or
        #: not) — the batch census counts them all as devices.
        self.observed: Set[str] = set()

    def config(self) -> Tuple:
        frozen = None if self.device_macs is None \
            else tuple(sorted(self.device_macs.items()))
        return (frozen, self.total_devices)

    def fresh(self) -> "IncrementalCensus":
        return IncrementalCensus(self.device_macs, self.total_devices)

    def update(self, packets, row_ids: Optional[Sequence[int]] = None) -> None:
        index = CaptureIndex.ensure(packets)
        table = index.table
        src_col = table.src_mac
        mac_strings = table.mac_strings
        identity = self.device_macs is None
        device_of = mac_strings if identity \
            else [self.device_macs.get(mac) for mac in mac_strings]
        label_at = index.label_at
        passive = self.passive
        observed = self.observed
        rids = index.rows.rids if row_ids is None else row_ids
        for rid in rids:
            device = device_of[src_col[rid]]
            if device is None:
                continue
            if identity:
                observed.add(device)
            label = label_at(rid)
            if label is None:
                continue
            bucket = passive.get(str(label))
            if bucket is None:
                bucket = passive.setdefault(str(label), set())
            bucket.add(device)

    def absorb(self, other: "IncrementalCensus") -> None:
        _ensure_compatible(self, other)
        for label, devices in other.passive.items():
            self.passive.setdefault(label, set()).update(devices)
        self.observed.update(other.observed)

    def finalize(self) -> ProtocolCensus:
        total = self.total_devices
        if total is None:
            total = len(self.observed) if self.device_macs is None \
                else len(self.device_macs)
        census = ProtocolCensus(total_devices=total)
        for label, devices in self.passive.items():
            census.passive[label] = set(devices)
        return census

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.name,
            "device_macs": self.device_macs,
            "total_devices": self.total_devices,
            "passive": {label: sorted(devices)
                        for label, devices in self.passive.items()},
            "observed": sorted(self.observed),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "IncrementalCensus":
        state = cls(raw.get("device_macs"), raw.get("total_devices"))
        for label, devices in dict(raw.get("passive", {})).items():
            state.passive[label] = set(devices)
        state.observed = set(raw.get("observed", ()))
        return state


class IncrementalDeviceGraph(IncrementalState):
    """Streaming Figures 1/4: the unicast device-pair edge set."""

    name = "device_graph"

    def __init__(self, device_macs: Optional[Dict[str, str]] = None,
                 device_vendor: Optional[Dict[str, str]] = None):
        self.device_macs = _device_map_out(device_macs)
        self.device_vendor = dict(device_vendor or {})
        #: (a, b, transport) in first-seen order (insertion-ordered
        #: dict used as a set).  Identity mode stores *candidates* —
        #: the both-endpoints-observed filter runs at finalize().
        self.edges: Dict[Tuple[str, str, str], None] = {}
        #: Identity mode only: source MACs observed so far.
        self.observed: Set[str] = set()

    def config(self) -> Tuple:
        macs = None if self.device_macs is None \
            else tuple(sorted(self.device_macs.items()))
        return (macs, tuple(sorted(self.device_vendor.items())))

    def fresh(self) -> "IncrementalDeviceGraph":
        return IncrementalDeviceGraph(self.device_macs, self.device_vendor)

    def update(self, packets, row_ids: Optional[Sequence[int]] = None) -> None:
        index = CaptureIndex.ensure(packets)
        table = index.table
        src_col, dst_col = table.src_mac, table.dst_mac
        sport_col, dport_col = table.src_port, table.dst_port
        flags_col, trans_col = table.flags, table.transport
        mac_strings = table.mac_strings
        identity = self.device_macs is None
        device_of = mac_strings if identity \
            else [self.device_macs.get(mac) for mac in mac_strings]
        label_at = index.label_at
        edges = self.edges
        observed = self.observed
        rids = index.rows.rids if row_ids is None else row_ids
        for rid in rids:
            if identity:
                observed.add(mac_strings[src_col[rid]])
            if not trans_col[rid] or not flags_col[rid] & F_UNICAST:
                continue
            src = device_of[src_col[rid]]
            dst = device_of[dst_col[rid]]
            if src is None or dst is None or src == dst:
                continue
            # Same exclusion as the batch graph: unicast UDP discovery
            # responses on well-known ports are not conversations.
            if flags_col[rid] & F_UDP and (
                sport_col[rid] in _DISCOVERY_PORTS
                or dport_col[rid] in _DISCOVERY_PORTS
            ):
                label = label_at(rid)
                if label in DISCOVERY_LABELS or label is Label.DNS:
                    continue
            pair = (src, dst) if src <= dst else (dst, src)
            transport = "udp" if trans_col[rid] == TRANSPORT_UDP else "tcp"
            edges.setdefault((pair[0], pair[1], transport))

    def absorb(self, other: "IncrementalDeviceGraph") -> None:
        _ensure_compatible(self, other)
        for key in other.edges:
            self.edges.setdefault(key)
        self.observed.update(other.observed)

    def finalize(self) -> DeviceGraph:
        import networkx as nx

        graph = nx.MultiGraph()
        identity = self.device_macs is None
        if identity:
            graph.add_nodes_from(self.observed)
        else:
            graph.add_nodes_from(self.device_macs.values())
        for a, b, transport in self.edges:
            if identity and (a not in self.observed or b not in self.observed):
                continue
            graph.add_edge(a, b, transport=transport)
        return DeviceGraph(graph=graph, device_vendor=dict(self.device_vendor))

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.name,
            "device_macs": self.device_macs,
            "device_vendor": dict(self.device_vendor),
            "edges": [list(key) for key in self.edges],
            "observed": sorted(self.observed),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "IncrementalDeviceGraph":
        state = cls(raw.get("device_macs"), raw.get("device_vendor"))
        for edge in raw.get("edges", ()):
            a, b, transport = edge
            state.edges.setdefault((str(a), str(b), str(transport)))
        state.observed = set(raw.get("observed", ()))
        return state


class IncrementalExposure(IncrementalState):
    """Streaming Table 1: exposure cells + chronological example lists.

    Each chunk runs the *batch* mining pass
    (:func:`repro.core.exposure.analyze_exposure`) over the chunk's
    rows into this state's matrix — one source of truth for the payload
    miners.  Per-cell example order survives chunking because every
    cell draws from a single bucket kind (ARP or UDP) and chunks are
    processed chronologically.
    """

    name = "exposure"

    def __init__(self, device_macs: Optional[Dict[str, str]] = None):
        self.device_macs = _device_map_out(device_macs)
        self.matrix = ExposureMatrix()

    def config(self) -> Tuple:
        macs = None if self.device_macs is None \
            else tuple(sorted(self.device_macs.items()))
        return (macs,)

    def fresh(self) -> "IncrementalExposure":
        return IncrementalExposure(self.device_macs)

    def update(self, packets, row_ids: Optional[Sequence[int]] = None) -> None:
        index = CaptureIndex.ensure(packets)
        if self.device_macs is None:
            # Identity mode: exposure only attributes *source* MACs, so
            # the chunk-local identity map equals the global one.
            device_macs = {mac: mac for mac in index.by_src_mac}
        else:
            device_macs = self.device_macs
        if row_ids is None:
            arp_rids = udp_rids = None
        else:
            flags_col = index.table.flags
            arp_rids = [rid for rid in row_ids if flags_col[rid] & F_ARP]
            udp_rids = [rid for rid in row_ids if flags_col[rid] & F_UDP]
        analyze_exposure(index, device_macs, arp_rids=arp_rids,
                         udp_rids=udp_rids, matrix=self.matrix)

    def absorb(self, other: "IncrementalExposure") -> None:
        _ensure_compatible(self, other)
        for protocol, kinds in other.matrix.cells.items():
            for kind, devices in kinds.items():
                self.matrix.cells[protocol][kind].update(devices)
        for key, values in other.matrix.examples.items():
            self.matrix.examples.setdefault(key, []).extend(values)

    def finalize(self) -> ExposureMatrix:
        out = ExposureMatrix()
        for protocol, kinds in self.matrix.cells.items():
            for kind, devices in kinds.items():
                out.cells[protocol][kind].update(devices)
        for key, values in self.matrix.examples.items():
            out.examples[key] = list(values)
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.name,
            "device_macs": self.device_macs,
            "cells": {protocol: {kind: sorted(devices)
                                 for kind, devices in kinds.items()}
                      for protocol, kinds in self.matrix.cells.items()},
            "examples": [[protocol, kind, list(values)]
                         for (protocol, kind), values
                         in self.matrix.examples.items()],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "IncrementalExposure":
        state = cls(raw.get("device_macs"))
        for protocol, kinds in dict(raw.get("cells", {})).items():
            for kind, devices in kinds.items():
                state.matrix.cells[protocol][kind].update(devices)
        for protocol, kind, values in raw.get("examples", ()):
            state.matrix.examples[(protocol, kind)] = list(values)
        return state


class IncrementalPeriodicity(IncrementalState):
    """Streaming Appendix D.1: per-group event series, detected lazily.

    The state is the grouped timestamp series — detection
    (:func:`repro.core.periodicity.detect_groups`) runs only at
    ``finalize()``, over groups whose first-seen order reproduces the
    batch order for any chunking.
    """

    name = "periodicity"

    def __init__(self, device_macs: Optional[Dict[str, str]] = None,
                 discovery_only: bool = True, min_events: int = 4,
                 use_dft: bool = True, use_autocorr: bool = True):
        self.device_macs = _device_map_out(device_macs)
        self.discovery_only = discovery_only
        self.min_events = min_events
        self.use_dft = use_dft
        self.use_autocorr = use_autocorr
        #: (device, destination, protocol) -> chronological timestamps,
        #: keys in first-seen order.
        self.groups: Dict[Tuple[str, str, str], List[float]] = {}

    def config(self) -> Tuple:
        macs = None if self.device_macs is None \
            else tuple(sorted(self.device_macs.items()))
        return (macs, self.discovery_only, self.min_events,
                self.use_dft, self.use_autocorr)

    def fresh(self) -> "IncrementalPeriodicity":
        return IncrementalPeriodicity(
            self.device_macs, discovery_only=self.discovery_only,
            min_events=self.min_events, use_dft=self.use_dft,
            use_autocorr=self.use_autocorr)

    def update(self, packets, row_ids: Optional[Sequence[int]] = None) -> None:
        index = CaptureIndex.ensure(packets)
        table = index.table
        ts_col = table.timestamps
        src_col, dst_col, dip_col = table.src_mac, table.dst_mac, table.dst_ip
        mac_strings, ip_strings = table.mac_strings, table.ip_strings
        identity = self.device_macs is None
        device_of = mac_strings if identity \
            else [self.device_macs.get(mac) for mac in mac_strings]
        label_at = index.label_at
        groups = self.groups
        discovery_only = self.discovery_only
        rids = index.rows.rids if row_ids is None else row_ids
        for rid in rids:
            device = device_of[src_col[rid]]
            if device is None:
                continue
            label = label_at(rid)
            if label is None:
                continue
            if discovery_only and label not in DISCOVERY_LABELS:
                continue
            dip = dip_col[rid]
            destination = ip_strings[dip] if dip >= 0 \
                else mac_strings[dst_col[rid]]
            key = (device, destination, str(label))
            bucket = groups.get(key)
            if bucket is None:
                bucket = groups.setdefault(key, [])
            bucket.append(ts_col[rid])

    def absorb(self, other: "IncrementalPeriodicity") -> None:
        _ensure_compatible(self, other)
        for key, timestamps in other.groups.items():
            self.groups.setdefault(key, []).extend(timestamps)

    def finalize(self) -> PeriodicityResult:
        return detect_groups(self.groups, min_events=self.min_events,
                             use_dft=self.use_dft,
                             use_autocorr=self.use_autocorr)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.name,
            "device_macs": self.device_macs,
            "discovery_only": self.discovery_only,
            "min_events": self.min_events,
            "use_dft": self.use_dft,
            "use_autocorr": self.use_autocorr,
            "groups": [[device, destination, protocol, list(timestamps)]
                       for (device, destination, protocol), timestamps
                       in self.groups.items()],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "IncrementalPeriodicity":
        state = cls(raw.get("device_macs"),
                    discovery_only=bool(raw.get("discovery_only", True)),
                    min_events=int(raw.get("min_events", 4)),
                    use_dft=bool(raw.get("use_dft", True)),
                    use_autocorr=bool(raw.get("use_autocorr", True)))
        for device, destination, protocol, timestamps in raw.get("groups", ()):
            state.groups[(device, destination, protocol)] = [
                float(ts) for ts in timestamps]
        return state


#: Snapshot-artifact name -> state class, in the order snapshots list them.
STATE_CLASSES: Dict[str, type] = {
    IncrementalCensus.name: IncrementalCensus,
    IncrementalDeviceGraph.name: IncrementalDeviceGraph,
    IncrementalExposure.name: IncrementalExposure,
    IncrementalPeriodicity.name: IncrementalPeriodicity,
}


def state_from_dict(raw: Dict[str, object]) -> IncrementalState:
    """Revive any serialized state by its ``kind`` tag."""
    kind = raw.get("kind")
    cls = STATE_CLASSES.get(str(kind))
    if cls is None:
        raise ValueError(f"unknown incremental state kind {kind!r}")
    return cls.from_dict(raw)
