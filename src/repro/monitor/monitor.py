"""The monitor orchestrator: chunks in, windowed snapshots out.

:class:`Monitor` turns a stream of ``(timestamp, frame_bytes)`` record
chunks into a bounded-memory sliding window of incremental analysis
state (see :mod:`repro.monitor.state` / :mod:`repro.monitor.window`)
and serves snapshot artifacts at any point:

* ``absorb_chunk(records)`` decodes one chunk into a throwaway
  columnar table + index (labels memoized once, shared by all four
  states), builds one immutable pane, pushes it through the window and
  emits a ``window_advanced`` event;
* ``snapshot()`` merges the live panes and finalizes all four analyses
  into the canonical artifact shapes of
  :mod:`repro.report.artifacts` — byte-identical to the batch
  artifacts whenever the window still covers everything absorbed;
* ``write_snapshot(path)`` writes that JSON atomically-enough (single
  write) and emits ``snapshot_written``.

Metrics land on the ambient observability context under the
``monitor_`` prefix (``monitor_window_packets``,
``monitor_evictions_total``, ``monitor_rss_bytes``, ...); see
``docs/observability.md`` for the full rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.monitor.state import (
    IncrementalCensus,
    IncrementalDeviceGraph,
    IncrementalExposure,
    IncrementalPeriodicity,
    IncrementalState,
)
from repro.monitor.window import Pane, SlidingWindow
from repro.net.columnar import PacketTable
from repro.net.decode import DecodeErrorLog
from repro.net.index import CaptureIndex
from repro.obs import get_obs
from repro.obs.events import process_stats
from repro.report.artifacts import (
    canonical_json,
    census_artifact,
    device_graph_artifact,
    exposure_artifact,
    periodicity_artifact,
)

#: Snapshot document schema; bump when the layout changes shape.
SNAPSHOT_SCHEMA = 1

#: artifact key -> serializer over the finalized batch object.
_ARTIFACT_SERIALIZERS = {
    IncrementalCensus.name: census_artifact,
    IncrementalDeviceGraph.name: device_graph_artifact,
    IncrementalExposure.name: exposure_artifact,
    IncrementalPeriodicity.name: periodicity_artifact,
}


class Monitor:
    """Online incremental analysis over a sliding window of panes."""

    def __init__(
        self,
        device_macs: Optional[Dict[str, str]] = None,
        device_vendor: Optional[Dict[str, str]] = None,
        window_packets: Optional[int] = None,
        window_seconds: Optional[float] = None,
        obs=None,
    ):
        self.device_macs = None if device_macs is None else dict(device_macs)
        self.device_vendor = dict(device_vendor or {})
        self.window = SlidingWindow(window_packets=window_packets,
                                    window_seconds=window_seconds)
        self.errors = DecodeErrorLog()
        self.chunks = 0
        self.packets_seen = 0
        self.snapshots = 0
        self._seq = 0
        obs = obs if obs is not None else get_obs()
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics.scoped("monitor")
            self._window_packets_gauge = metrics.gauge(
                "window_packets", "packets held by the live sliding window")
            self._window_panes_gauge = metrics.gauge(
                "window_panes", "panes held by the live sliding window")
            self._evictions_total = metrics.counter(
                "evictions_total", "panes evicted from the sliding window")
            self._rss_gauge = metrics.gauge(
                "rss_bytes", "process RSS sampled after each absorbed chunk")
            self._chunks_total = metrics.counter(
                "chunks_total", "record chunks absorbed")
            self._packets_total = metrics.counter(
                "packets_total", "packets absorbed across all chunks")
            self._snapshots_total = metrics.counter(
                "snapshots_total", "snapshot artifacts written")

    # -- state construction ---------------------------------------------------------

    def fresh_states(self) -> Dict[str, IncrementalState]:
        """One empty state per analysis, with this monitor's config."""
        return {
            IncrementalCensus.name: IncrementalCensus(self.device_macs),
            IncrementalDeviceGraph.name: IncrementalDeviceGraph(
                self.device_macs, self.device_vendor),
            IncrementalExposure.name: IncrementalExposure(self.device_macs),
            IncrementalPeriodicity.name: IncrementalPeriodicity(
                self.device_macs),
        }

    # -- absorbing ------------------------------------------------------------------

    def absorb_chunk(self, records: Sequence[Tuple[float, bytes]],
                     ) -> Optional[Pane]:
        """Absorb one chronological record chunk; returns its pane.

        Empty chunks are ignored (``None``).  The chunk is decoded into
        a chunk-local table + index (transient, ``O(chunk)``); only the
        pane's incremental states survive.
        """
        if not records:
            return None
        table = PacketTable()
        table.extend_records(list(records), self.errors)
        index = CaptureIndex(table)
        states = self.fresh_states()
        for state in states.values():
            state.update(index)
        self._seq += 1
        count = len(table)
        pane = Pane(
            seq=self._seq,
            packets=count,
            first_timestamp=table.timestamps[0],
            last_timestamp=table.timestamps[count - 1],
            states=states,
        )
        evicted = self.window.push(pane)
        self.chunks += 1
        self.packets_seen += count
        obs = self._obs
        if obs.enabled:
            self._chunks_total.inc()
            self._packets_total.inc(count)
            self._window_packets_gauge.set(self.window.packets)
            self._window_panes_gauge.set(len(self.window))
            if evicted:
                self._evictions_total.inc(len(evicted))
            self._rss_gauge.set(process_stats()["rss_bytes"])
            obs.events.emit(
                "window_advanced",
                pane=pane.seq,
                pane_packets=pane.packets,
                window_packets=self.window.packets,
                window_panes=len(self.window),
                evicted_panes=len(evicted),
                evicted_packets=sum(p.packets for p in evicted),
                packets_seen=self.packets_seen,
                first_timestamp=self.window.first_timestamp,
                last_timestamp=self.window.last_timestamp,
            )
        return pane

    # -- snapshots ------------------------------------------------------------------

    def merged_states(self) -> Dict[str, IncrementalState]:
        """The window's merged states (empty-but-configured when idle)."""
        merged = self.window.merged()
        return merged if merged else self.fresh_states()

    def snapshot(self) -> Dict[str, object]:
        """The windowed analyses as one canonical snapshot document."""
        artifacts = {
            name: _ARTIFACT_SERIALIZERS[name](state.finalize())
            for name, state in self.merged_states().items()
        }
        return {
            "schema": SNAPSHOT_SCHEMA,
            "window": {
                "panes": len(self.window),
                "packets": self.window.packets,
                "first_timestamp": self.window.first_timestamp,
                "last_timestamp": self.window.last_timestamp,
                "window_packets": self.window.window_packets,
                "window_seconds": self.window.window_seconds,
                "evicted_panes": self.window.evicted_panes,
                "evicted_packets": self.window.evicted_packets,
            },
            "stream": {
                "chunks": self.chunks,
                "packets_seen": self.packets_seen,
                "quarantined": dict(self.errors.counts),
            },
            "artifacts": artifacts,
        }

    def write_snapshot(self, path) -> Dict[str, object]:
        """Write :meth:`snapshot` as canonical JSON; returns the document."""
        document = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(document))
        self.snapshots += 1
        obs = self._obs
        if obs.enabled:
            self._snapshots_total.inc()
            obs.events.emit(
                "snapshot_written",
                path=str(path),
                snapshot=self.snapshots,
                window_packets=self.window.packets,
                window_panes=len(self.window),
                packets_seen=self.packets_seen,
            )
        return document
