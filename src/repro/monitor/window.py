"""Pane-based sliding window with deterministic eviction.

The window is a deque of immutable **panes** — one per absorbed chunk,
each holding that chunk's four incremental states plus its packet count
and timestamp span.  Eviction never decrements anything: expiring data
means dropping the oldest pane whole, so the windowed result is always
an exact additive merge of the live panes (the same merge contract the
fleet layer uses), and eviction is deterministic by construction —
identical chunk sequences produce identical pane sequences, eviction
counts, and merged states, no matter when or how often the window is
inspected.

Two bounds compose (either or both may be unset):

* ``window_packets`` — after each push, the oldest panes are evicted
  while the window holds *more* than this many packets and more than
  one pane.  A single oversized pane is never evicted, so the window
  always contains the newest chunk.
* ``window_seconds`` — panes whose newest timestamp has fallen more
  than this far behind the newest pane's newest timestamp are evicted.

Memory therefore stays ``O(window)``: at most
``window_packets + chunk_size`` packets of state, independent of how
long the capture grows (see ``docs/monitor.md`` for the bounds table).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional


@dataclass
class Pane:
    """One absorbed chunk: its states plus bookkeeping for eviction."""

    seq: int
    packets: int
    first_timestamp: float
    last_timestamp: float
    states: Dict[str, object] = field(default_factory=dict)


class SlidingWindow:
    """A deque of panes under packet-count and/or time-span bounds."""

    def __init__(self, window_packets: Optional[int] = None,
                 window_seconds: Optional[float] = None):
        if window_packets is not None and window_packets <= 0:
            raise ValueError(
                f"window_packets must be positive, got {window_packets}")
        if window_seconds is not None and window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}")
        self.window_packets = window_packets
        self.window_seconds = window_seconds
        self.panes: Deque[Pane] = deque()
        #: Packets across live panes.
        self.packets = 0
        #: Lifetime eviction tallies (monotonic).
        self.evicted_panes = 0
        self.evicted_packets = 0

    def __len__(self) -> int:
        return len(self.panes)

    @property
    def first_timestamp(self) -> Optional[float]:
        return self.panes[0].first_timestamp if self.panes else None

    @property
    def last_timestamp(self) -> Optional[float]:
        return self.panes[-1].last_timestamp if self.panes else None

    def _pop_oldest(self) -> Pane:
        pane = self.panes.popleft()
        self.packets -= pane.packets
        self.evicted_panes += 1
        self.evicted_packets += pane.packets
        return pane

    def push(self, pane: Pane) -> List[Pane]:
        """Append a pane; returns the panes evicted by the bounds."""
        self.panes.append(pane)
        self.packets += pane.packets
        evicted: List[Pane] = []
        if self.window_packets is not None:
            while len(self.panes) > 1 and self.packets > self.window_packets:
                evicted.append(self._pop_oldest())
        if self.window_seconds is not None:
            horizon = self.panes[-1].last_timestamp - self.window_seconds
            while len(self.panes) > 1 and self.panes[0].last_timestamp < horizon:
                evicted.append(self._pop_oldest())
        return evicted

    def merged(self) -> Dict[str, object]:
        """Merge the live panes' states, oldest first (chronological).

        Returns ``{}`` when no pane has been pushed yet.
        """
        if not self.panes:
            return {}
        merged: Dict[str, object] = {}
        for name in self.panes[0].states:
            states = [pane.states[name] for pane in self.panes]
            merged[name] = type(states[0]).merge(states)
        return merged
