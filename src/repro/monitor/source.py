"""Chunk sources for the monitor: static pcap, growing pcap, live sim.

Three ways packets reach :class:`repro.monitor.Monitor`, all yielding
the same shape — lists of ``(timestamp, frame_bytes)`` records, at most
``chunk_records`` long, in capture order:

* a **completed pcap** — ``repro.net.ingest.iter_pcap_chunks`` (reused
  directly by the CLI; nothing here);
* a **growing pcap** (:func:`follow_pcap_chunks`) — a ``tail -f``-style
  reader for a file another process is still appending to.
  :class:`~repro.net.pcap.PcapReader` cannot do this: its iterator
  consumes partial trailing bytes and stops.  This reader buffers
  incomplete records itself, polls for growth, flushes a partial chunk
  whenever the file goes quiet (so analyses stay live), and ends after
  ``idle_timeout`` seconds without new bytes;
* the **simulator's live feed** (:func:`simulated_chunks`) — runs the
  MonIoTr testbed in small time slices and drains frames through an
  :class:`~repro.simnet.capture.ApCapture` frame tap, with
  ``keep_bytes=False`` so the capture itself stays O(1): the monitor's
  window is the only thing holding traffic state.
"""

from __future__ import annotations

import struct
import time
from typing import Callable, Iterator, List, Optional, Tuple

from repro.net.ingest import DEFAULT_CHUNK_RECORDS
from repro.net.pcap import PCAP_MAGIC, PCAP_MAGIC_SWAPPED

#: Seconds of simulated time per slice of :func:`simulated_chunks`.
SIM_STEP_SECONDS = 5.0

_GLOBAL_HEADER_SIZE = 24
_READ_SIZE = 1 << 16

Record = Tuple[float, bytes]


def follow_pcap_chunks(
    path,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    poll_interval: float = 0.5,
    idle_timeout: float = 10.0,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> Iterator[List[Record]]:
    """Tail a (possibly still growing) classic pcap in bounded chunks.

    Yields full ``chunk_records``-sized chunks as soon as they are
    available and flushes a partial chunk whenever the file stops
    growing for one poll, so downstream windows advance while the
    capture is live.  Returns cleanly after ``idle_timeout`` seconds
    without new bytes.  Raises ``ValueError`` on a bad magic number, or
    when the file never grows a complete 24-byte global header within
    the timeout; raises ``FileNotFoundError`` when the file never
    appears within the timeout.

    A truncated trailing record is *not* an error here — it is simply a
    record the writer has not finished appending yet.
    """
    if chunk_records <= 0:
        raise ValueError(f"chunk_records must be positive, got {chunk_records}")
    poll_interval = max(poll_interval, 0.0)
    started = clock()
    handle = None
    while handle is None:
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            if clock() - started >= idle_timeout:
                raise
            sleep(poll_interval)
    with handle:
        header = b""
        idle_since = clock()
        while len(header) < _GLOBAL_HEADER_SIZE:
            data = handle.read(_GLOBAL_HEADER_SIZE - len(header))
            if data:
                header += data
                idle_since = clock()
                continue
            if clock() - idle_since >= idle_timeout:
                raise ValueError(f"{path}: not a pcap file (too short)")
            sleep(poll_interval)
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            record = struct.Struct("<IIII")
        elif magic == PCAP_MAGIC_SWAPPED:
            record = struct.Struct(">IIII")
        else:
            raise ValueError(f"{path}: bad pcap magic {magic:#x}")

        pending = b""
        chunk: List[Record] = []
        idle_since = clock()
        while True:
            data = handle.read(_READ_SIZE)
            if data:
                idle_since = clock()
                pending += data
                offset = 0
                while len(pending) - offset >= record.size:
                    ts_sec, ts_usec, incl_len, _orig = record.unpack_from(
                        pending, offset)
                    if len(pending) - offset - record.size < incl_len:
                        break
                    start = offset + record.size
                    chunk.append((ts_sec + ts_usec / 1_000_000,
                                  pending[start:start + incl_len]))
                    offset = start + incl_len
                    if len(chunk) >= chunk_records:
                        yield chunk
                        chunk = []
                if offset:
                    pending = pending[offset:]
                continue
            # No new bytes: flush what we have, then wait or give up.
            if chunk:
                yield chunk
                chunk = []
            if clock() - idle_since >= idle_timeout:
                return
            sleep(poll_interval)


def simulated_chunks(
    seed: int = 7,
    duration: float = 300.0,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    step_seconds: float = SIM_STEP_SECONDS,
    testbed=None,
) -> Iterator[List[Record]]:
    """Stream the simulated lab's frames live, in bounded chunks.

    Builds the MonIoTr testbed (or uses a caller-supplied one), turns
    off the capture's record accumulation, taps every frame the AP
    observes, and advances simulated time in ``step_seconds`` slices —
    yielding full chunks as they fill and the remainder at the end.
    Deterministic for a given ``(seed, duration, chunk_records)``.
    """
    if chunk_records <= 0:
        raise ValueError(f"chunk_records must be positive, got {chunk_records}")
    if step_seconds <= 0:
        raise ValueError(f"step_seconds must be positive, got {step_seconds}")
    if testbed is None:
        from repro.devices.behaviors import build_testbed

        testbed = build_testbed(seed=seed)
    capture = testbed.lan.capture
    capture.keep_bytes = False
    buffer: List[Record] = []
    capture.frame_taps.append(
        lambda timestamp, frame: buffer.append((timestamp, frame)))
    simulator = testbed.simulator
    end = simulator.now + duration
    while simulator.now < end:
        testbed.run(min(step_seconds, end - simulator.now))
        while len(buffer) >= chunk_records:
            yield buffer[:chunk_records]
            del buffer[:chunk_records]
    if buffer:
        yield buffer
