"""``repro.monitor`` — online incremental analysis with bounded memory.

The batch pipeline (``repro ingest``) needs the whole capture before it
can say anything.  This package runs the same four analyses — protocol
census, device graph, exposure matrix, periodicity — **online**: packets
arrive in chunks, each chunk becomes one immutable pane of incremental
state, a sliding window evicts whole panes deterministically, and any
moment's windowed answer is an exact additive merge of the live panes.
When the window still covers everything absorbed, ``finalize()`` is
byte-identical to the batch artifacts (pinned by the equivalence suite
in ``tests/monitor/``).

See ``docs/monitor.md`` for the state model, window semantics, and the
``repro monitor`` CLI walkthrough.
"""

from repro.monitor.monitor import SNAPSHOT_SCHEMA, Monitor
from repro.monitor.source import (
    SIM_STEP_SECONDS,
    follow_pcap_chunks,
    simulated_chunks,
)
from repro.monitor.state import (
    IncrementalCensus,
    IncrementalDeviceGraph,
    IncrementalExposure,
    IncrementalPeriodicity,
    IncrementalState,
    STATE_CLASSES,
    state_from_dict,
)
from repro.monitor.window import Pane, SlidingWindow

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SIM_STEP_SECONDS",
    "STATE_CLASSES",
    "IncrementalCensus",
    "IncrementalDeviceGraph",
    "IncrementalExposure",
    "IncrementalPeriodicity",
    "IncrementalState",
    "Monitor",
    "Pane",
    "SlidingWindow",
    "follow_pcap_chunks",
    "simulated_chunks",
    "state_from_dict",
]
