"""Scripted device interactions — the §3.1 labeled-traffic dataset.

"...traffic generated from 7,191 interactions when we manually or
automatically interact with the different IoT devices in our testbed.
The interactions are triggered by (i) IoT companion apps running on a
Google Pixel 3 and an iPhone 7 ... or (ii) voice commands to activate
different voice assistants, which subsequently interact with the
corresponding device."

Each :class:`Interaction` runs on the simulated LAN, emits the real
control traffic for its kind, and records a labeled trace entry
(start/end timestamps + endpoints), producing the same artifact the
paper's controlled experiments produce: a capture plus a label file.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.devices.behaviors import DeviceNode, Testbed
from repro.protocols.http import HttpRequest, HttpResponse
from repro.protocols.rtp import RtpPacket
from repro.protocols.rtsp import RtspRequest, RtspResponse
from repro.protocols.upnp_soap import play, set_av_transport_uri
from repro.protocols.tls import TlsRecord, TlsVersion
from repro.protocols.tplink_shp import TPLINK_SHP_PORT, TplinkShpMessage
from repro.simnet.node import Node


class InteractionKind(str, enum.Enum):
    """The §3.1 trigger classes."""

    COMPANION_APP = "companion-app"  # phone -> device
    VOICE_ASSISTANT = "voice"  # assistant -> device


class Action(str, enum.Enum):
    POWER_TOGGLE = "power-toggle"
    SET_BRIGHTNESS = "set-brightness"
    START_STREAM = "start-stream"
    CAST_MEDIA = "cast-media"
    STATUS_QUERY = "status-query"


@dataclass
class InteractionRecord:
    """One labeled interaction (the per-experiment ground truth row)."""

    index: int
    kind: InteractionKind
    action: Action
    controller: str  # phone or assistant name
    target: str  # device name
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class ControllerPhone(Node):
    """The companion-app phone used to trigger interactions."""

    def __init__(self, name: str = "pixel-3", mac: str = "02:00:5e:00:20:01"):
        super().__init__(name=name, mac=mac, ip="0.0.0.0", vendor="Google")


@dataclass
class InteractionRunner:
    """Drives scripted interactions on a testbed and logs the labels."""

    testbed: Testbed
    rng: random.Random = field(default_factory=lambda: random.Random(0xACE))
    records: List[InteractionRecord] = field(default_factory=list)
    phone: Optional[ControllerPhone] = None

    def __post_init__(self):
        if self.phone is None:
            self.phone = ControllerPhone()
            self.testbed.lan.attach(self.phone)

    # -- target selection --------------------------------------------------------

    def _controllable_devices(self) -> List[DeviceNode]:
        return [
            node for node in self.testbed.devices
            if node.profile.tplink_role == "server"
            or node.profile.tls is not None
            or any(service.protocol == "http" for service in node.profile.open_services)
        ]

    def _assistants(self) -> List[DeviceNode]:
        return [
            node for node in self.testbed.devices
            if node.profile.category == "Voice Assistant" and node.vendor in ("Amazon", "Google")
        ]

    def _action_for(self, target: DeviceNode) -> Action:
        model = target.profile.model.lower()
        if "plug" in model or "bulb" in model:
            return Action.POWER_TOGGLE if self.rng.random() < 0.7 else Action.SET_BRIGHTNESS
        if target.profile.category == "Surveillance":
            return Action.START_STREAM
        if target.profile.category == "Media/TV":
            return Action.CAST_MEDIA
        return Action.STATUS_QUERY

    # -- execution -----------------------------------------------------------------

    def run(self, count: int, gap: float = 2.0) -> List[InteractionRecord]:
        """Execute ``count`` interactions, ``gap`` seconds apart."""
        targets = self._controllable_devices()
        assistants = self._assistants()
        if not targets:
            raise RuntimeError("testbed has no controllable devices")
        for index in range(count):
            target = self.rng.choice(targets)
            use_voice = bool(assistants) and self.rng.random() < 0.4
            controller: Node = self.rng.choice(assistants) if use_voice else self.phone
            kind = InteractionKind.VOICE_ASSISTANT if use_voice else InteractionKind.COMPANION_APP
            action = self._action_for(target)
            start = self.testbed.simulator.now
            self._execute(controller, target, action)
            self.testbed.run(gap)
            self.records.append(
                InteractionRecord(
                    index=index,
                    kind=kind,
                    action=action,
                    controller=controller.name,
                    target=target.name,
                    start=start,
                    end=self.testbed.simulator.now,
                )
            )
        return self.records

    def _execute(self, controller: Node, target: DeviceNode, action: Action) -> None:
        if action is Action.START_STREAM:
            rtsp_service = next(
                (service for service in target.profile.open_services
                 if service.transport == "tcp" and service.protocol == "rtsp"),
                None,
            )
            if rtsp_service is not None:
                self._stream_rtsp(controller, target, rtsp_service.port)
                return
        if target.profile.tplink_role == "server":
            command = TplinkShpMessage.set_relay_state(action is Action.POWER_TOGGLE)
            reply = TplinkShpMessage({"system": {"set_relay_state": {"err_code": 0}}})
            self.testbed.lan.tcp_exchange(
                controller, target, TPLINK_SHP_PORT,
                [command.encode("tcp")], [reply.encode("tcp")],
            )
            return
        http_service = next(
            (service for service in target.profile.open_services
             if service.transport == "tcp" and service.protocol == "http"),
            None,
        )
        if http_service is not None and action is Action.CAST_MEDIA:
            # Casting runs as UPnP SOAP: the CurrentURI reveals what the
            # household watches to any on-path observer (§5.2).
            media = f"http://media.example/{self.rng.randrange(10_000)}.mp4"
            actions = [set_av_transport_uri(media), play()]
            self.testbed.lan.tcp_exchange(
                controller, target, http_service.port,
                [soap.to_http_request().encode() for soap in actions],
                [soap.to_http_response().encode() for soap in actions],
            )
            return
        if http_service is not None and action in (Action.STATUS_QUERY, Action.SET_BRIGHTNESS):
            request = HttpRequest("POST" if action is not Action.STATUS_QUERY else "GET",
                                  f"/control/{action.value}",
                                  {"Host": f"{target.ip}:{http_service.port}"})
            response = HttpResponse(200, "OK", {"Server": http_service.software or "httpd"},
                                    b'{"ok":true}')
            self.testbed.lan.tcp_exchange(
                controller, target, http_service.port,
                [request.encode()], [response.encode()],
            )
            return
        # Fall back to a TLS control exchange (camera streams, hubs).
        tls = target.profile.tls
        version = TlsVersion.TLS_1_3 if (tls and tls.version == "1.3") else TlsVersion.TLS_1_2
        port = tls.port if tls else 443
        self.testbed.lan.tcp_exchange(
            controller, target, port,
            [TlsRecord.client_hello(version).encode(),
             TlsRecord.application_data(196, version).encode()],
            [TlsRecord.server_hello(version).encode(),
             TlsRecord.application_data(512, version).encode()],
        )

    def _stream_rtsp(self, controller: Node, target: DeviceNode, port: int) -> None:
        """DESCRIBE/SETUP/PLAY over RTSP, then a short RTP burst."""
        url = f"rtsp://{target.ip}:{port}/live"
        requests = [
            RtspRequest("DESCRIBE", url, cseq=1, headers={"Accept": "application/sdp"}),
            RtspRequest("SETUP", url + "/track1", cseq=2,
                        headers={"Transport": "RTP/AVP;unicast;client_port=55000-55001"}),
            RtspRequest("PLAY", url, cseq=3, headers={"Session": "12345678"}),
        ]
        responses = [
            RtspResponse.describe_reply(1, target.profile.model, target.ip),
            RtspResponse(cseq=2, headers={"Session": "12345678",
                                          "Transport": "RTP/AVP;unicast;server_port=56000-56001"}),
            RtspResponse(cseq=3, headers={"Session": "12345678", "Range": "npt=0.000-"}),
        ]
        self.testbed.lan.tcp_exchange(
            controller, target, port,
            [request.encode() for request in requests],
            [response.encode() for response in responses],
        )
        sim = self.testbed.simulator
        for index in range(6):
            def send_frame(index=index, target=target, controller=controller):
                packet = RtpPacket(
                    payload_type=96,
                    sequence=index,
                    timestamp=index * 3000,
                    ssrc=0x51BEA7,
                    payload=self.rng.randbytes(160),
                )
                target.send_udp(controller.ip, 55000, packet.encode(), src_port=56000)

            sim.schedule(0.2 + index * 0.04, send_frame)

    # -- labeled-trace artifacts ------------------------------------------------------

    def label_rows(self) -> List[Tuple[int, str, str, str, str, float, float]]:
        """The label file the paper's controlled experiments produce."""
        return [
            (record.index, record.kind.value, record.action.value,
             record.controller, record.target, record.start, record.end)
            for record in self.records
        ]

    def traffic_during(self, record: InteractionRecord) -> List:
        """Capture slice for one interaction (label-aligned extraction)."""
        return [
            packet for packet in self.testbed.lan.capture.decoded()
            if record.start <= packet.timestamp <= record.end
        ]

    def interaction_reached_target(self, record: InteractionRecord) -> bool:
        """Did labeled traffic actually involve the target device?"""
        target = self.testbed.device(record.target)
        controller = self.testbed.lan.node_by_name(record.controller)
        if target is None or controller is None:
            return False
        for packet in self.traffic_during(record):
            if (str(packet.frame.src) == str(controller.mac)
                    and str(packet.frame.dst) == str(target.mac)):
                return True
        return False
