"""The MonIoTr testbed catalog: 93 devices, 78 unique models (Table 3).

Each entry is a :class:`DeviceProfile` whose behaviour encodes the
paper's per-vendor findings:

* Amazon Echo — daily broadcast ARP sweeps + unicast probes, SSDP
  ``ssdp:all``/``upnp:rootdevice`` every 2-3 h, mDNS every 20-100 s,
  TLS 1.2 with 3-month self-signed IP-CN certificates and mutual auth,
  RTP multi-room on UDP 55444, periodic broadcast to UDP 56700 (Lifx),
  open TCP 55442/55443/4070, Matter over IPv6.
* Google — SSDP M-SEARCH every 20 s for specific targets, mDNS,
  TLS 1.2 on 8009 with short keys (SWEET32 exposure), internal PKI with
  20-year leaf certs, UDP 10000-10010 RTP mislabeled as STUN,
  Chromecast User-Agent strings.
* Apple — TLS 1.3 with encrypted certificates, mDNS/Bonjour (AirPlay,
  HomeKit, sleep-proxy), HomePod Mini's SheerDNS 1.0.0 cache-snooping DNS.
* TP-Link — TPLINK-SHP servers answering sysinfo (incl. plaintext
  lat/lon) without authentication.
* Tuya — TuyaLP broadcasts with gwId/productKey; only answer companion apps.
* Cameras — Lefun backup-file HTTP server, Microseven jQuery 1.2 +
  unauthenticated ONVIF snapshots + telnet, etc.
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.profiles import (
    ArpScanConfig,
    DeviceProfile,
    DhcpConfig,
    HostnameScheme,
    MdnsConfig,
    SsdpConfig,
    TlsConfig,
    Vulnerability,
)
from repro.simnet.services import ServiceInfo

#: Table 3 row/column totals, used to validate the catalog.
TESTBED_CATEGORY_COUNTS: Dict[str, int] = {
    "Game Console": 1,
    "Generic IoT": 7,
    "Home Appliance": 10,
    "Home Automation": 21,
    "Media/TV": 7,
    "Surveillance": 19,
    "Voice Assistant": 28,
}

GOOGLE_SSDP_TARGETS = [
    "urn:dial-multiscreen-org:service:dial:1",
    "urn:schemas-upnp-org:device:MediaRenderer:1",
]
AMAZON_SSDP_TARGETS = ["ssdp:all", "upnp:rootdevice"]


def _tcp(port: int, protocol: str, banner: str = "", software: str = "", version: str = "") -> ServiceInfo:
    return ServiceInfo(port, "tcp", protocol, banner, software, version)


def _udp(port: int, protocol: str, banner: str = "", software: str = "", version: str = "") -> ServiceInfo:
    return ServiceInfo(port, "udp", protocol, banner, software, version)


def _amazon_echo(index: int, model: str) -> DeviceProfile:
    name = f"amazon-{model.lower().replace(' ', '-').replace('(', '').replace(')', '')}-{index}"
    return DeviceProfile(
        name=name,
        vendor="Amazon",
        model=model,
        category="Voice Assistant",
        display_name=f"{model}",
        platforms=["alexa"],
        supports_ipv6=True,
        mdns=MdnsConfig(
            advertise=[("_amzn-alexa._tcp.local", "mac_suffix", 443, {"dn": model})],
            query_services=["_amzn-wplay._tcp.local", "_googlecast._tcp.local", "_spotify-connect._tcp.local"],
            query_interval=45.0,
            respond_multicast=True,
        ),
        ssdp=SsdpConfig(
            msearch_targets=AMAZON_SSDP_TARGETS,
            msearch_interval=9000.0,  # every 2-3 hours (§5.1)
            server_header="Linux/4.9 UPnP/1.0 Amazon-Echo/1.0",
        ),
        arp_scan=ArpScanConfig(
            broadcast_sweep_interval=86400.0,  # daily full-IP-space sweep
            unicast_probe_fraction=0.83,
        ),
        dhcp=DhcpConfig(
            hostname_scheme=HostnameScheme.MODEL,
            vendor_class="udhcp 1.21.1",  # old/custom client (§5.1)
            parameter_request=[1, 3, 6, 12, 15, 28, 42],
        ),
        tls=TlsConfig(
            version="1.2",
            cert_validity_days=90.0,
            self_signed=True,
            cn_scheme="local_ip",
            mutual_auth=True,
            port=4070,
        ),
        tplink_role="client",
        rtp_port=55444,
        unknown_broadcast_port=56700,
        unknown_broadcast_interval=7200.0,
        open_services=[
            _tcp(55442, "http", "HTTP/1.1 200 OK", "echo-audio-cache", "1.0"),
            _tcp(55443, "http", "HTTP/1.1 200 OK", "echo-audio-cache", "1.0"),
            _tcp(4070, "https", "", "echo-device-control", "1.0"),
            _tcp(1080, "socks5", "", "dante", "1.4"),
            _tcp(8888, "http-proxy", "", "echo-proxy", "1.0"),
        ],
        responds_to_udp_scan=False,
        matter=True,
    )


def _apple_speaker(index: int, model: str) -> DeviceProfile:
    vulnerable_dns = model == "HomePod Mini"
    services = [_tcp(7000, "airplay", "", "AirTunes", "595.13")]
    vulnerabilities = []
    if vulnerable_dns:
        services.append(_udp(53, "dns", "", "SheerDNS", "1.0.0"))
        vulnerabilities = [
            Vulnerability("NESSUS-11535", "SheerDNS < 1.0.1 Multiple Vulnerabilities", "high", 53, "udp"),
            Vulnerability("NESSUS-12217", "DNS Server Cache Snooping Remote Information Disclosure", "medium", 53, "udp"),
        ]
    return DeviceProfile(
        name=f"apple-{model.lower().replace(' ', '-')}-{index}",
        vendor="Apple",
        model=model,
        category="Voice Assistant",
        display_name=f"Jane Doe's Kitchen {model}",
        platforms=["homekit"],
        supports_ipv6=True,
        mdns=MdnsConfig(
            advertise=[
                ("_hap._tcp.local", "display_name", 7000, {"md": model}),
                ("_airplay._tcp.local", "display_name", 7000, {"model": model}),
                ("_sleep-proxy._udp.local", "mac_suffix", 53, {}),
            ],
            query_services=["_companion-link._tcp.local", "_airplay._tcp.local"],
            query_interval=60.0,
            respond_multicast=True,
            respond_unicast=True,
        ),
        dhcp=DhcpConfig(
            hostname_scheme=HostnameScheme.USER_DISPLAY_NAME,
            vendor_class="",  # Apple sends no vendor class
            parameter_request=[1, 3, 6, 15, 119, 121],
        ),
        tls=TlsConfig(version="1.3", cert_validity_days=365.0, self_signed=True, port=7000),
        coap_role="opaque" if model == "HomePod Mini" else None,
        open_services=services,
        vulnerabilities=vulnerabilities,
        responds_to_udp_scan=vulnerable_dns,
    )


def _google_speaker(index: int, model: str, is_hub: bool = False) -> DeviceProfile:
    services = [
        _tcp(8008, "http", "HTTP/1.1 200 OK", "Chromecast", "1.56"),
        _tcp(8009, "tls", "", "cast-tls", "1.56"),
        _tcp(10001, "unknown", "", "", ""),
        _udp(320, "ptp", "", "", ""),
    ]
    vulnerabilities = [
        Vulnerability(
            "CVE-2016-2183",
            "TLS service on port 8009 uses short encryption keys (64-122 bits); "
            "SWEET32 birthday attack on long sessions",
            "high",
            8009,
            "tcp",
        )
    ]
    return DeviceProfile(
        name=f"google-{model.lower().replace(' ', '-')}-{index}",
        vendor="Google",
        model=model,
        category="Voice Assistant",
        display_name=f"Jane Doe's Living Room {model}",
        platforms=["google-home"],
        supports_ipv6=True,
        mdns=MdnsConfig(
            advertise=[("_googlecast._tcp.local", "full_mac", 8009, {"md": model, "fn": "Living Room"})],
            query_services=["_googlecast._tcp.local", "_spotify-connect._tcp.local", "_androidtvremote2._tcp.local"],
            query_interval=25.0,
            respond_multicast=True,
        ),
        ssdp=SsdpConfig(
            msearch_targets=GOOGLE_SSDP_TARGETS,
            msearch_interval=20.0,  # §5.1: every 20 s
            respond=is_hub,  # the two Nest Hubs respond (Chromecast built in)
            server_header="Linux/3.8.13, UPnP/1.0, Portable SDK for UPnP devices/1.6.18",
            upnp_version="UPnP/1.0",
        ),
        dhcp=DhcpConfig(
            hostname_scheme=HostnameScheme.USER_DISPLAY_NAME,
            vendor_class="dhcpcd-6.8.2:Linux-4.9:armv7l",  # custom client (§5.1)
            parameter_request=[1, 3, 6, 12, 15, 26, 28, 42, 121],
        ),
        tls=TlsConfig(
            version="1.2",
            cert_validity_days=20 * 365.25,  # 20-year leaf certs
            self_signed=False,  # internal PKI, roots not in any trust store
            key_bits=96,  # the short-key finding on port 8009
            port=8009,
        ),
        tplink_role="client",
        stun_like_udp_ports=list(range(10000, 10011)),
        http_user_agent=f"Chromecast OS/1.56 {model}",
        open_services=services,
        vulnerabilities=vulnerabilities,
        responds_to_udp_scan=True,
    )


def _meta_portal(index: int) -> DeviceProfile:
    return DeviceProfile(
        name=f"meta-portal-mini-{index}",
        vendor="Meta",
        model="Portal Mini",
        category="Voice Assistant",
        supports_ipv6=True,
        mdns=MdnsConfig(
            advertise=[("_airplay._tcp.local", "plain", 7000, {})],
            query_services=["_googlecast._tcp.local"],
            query_interval=90.0,
        ),
        dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="dhcpcd-7.2.3"),
        open_services=[_tcp(7000, "airplay", "", "portal-airplay", "1.0")],
    )


def _media_devices() -> List[DeviceProfile]:
    devices: List[DeviceProfile] = []
    devices.append(
        DeviceProfile(
            name="amazon-fire-tv-1",
            vendor="Amazon",
            model="Fire TV",
            category="Media/TV",
            platforms=["alexa"],
            supports_ipv6=True,
            mdns=MdnsConfig(
                advertise=[("_amzn-wplay._tcp.local", "mac_suffix", 8009, {"n": "Fire TV"})],
                query_services=["_googlecast._tcp.local"],
                query_interval=60.0,
            ),
            ssdp=SsdpConfig(
                msearch_targets=AMAZON_SSDP_TARGETS,
                msearch_interval=9000.0,
                notify=True,
                notify_interval=1800.0,
                respond=True,
                server_header="Linux/4.9 UPnP/1.0 Cling/2.0",
                upnp_version="UPnP/1.0",
                bad_location_prefix=True,  # announces a /16 location (§5.1)
            ),
            dhcp=DhcpConfig(
                hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.21.1",
                parameter_request=[1, 3, 6, 12, 15, 28],
            ),
            tls=TlsConfig(version="1.2", cert_validity_days=90.0, self_signed=True, cn_scheme="local_ip", port=4070),
            open_services=[
                _tcp(55442, "http", "HTTP/1.1 200 OK", "echo-audio-cache", "1.0"),
                _tcp(4070, "https", "", "echo-device-control", "1.0"),
                _tcp(8009, "tls", "", "cast-tls", "1.36"),
                _tcp(40317, "unknown", "", "", ""),
            ],
        )
    )
    devices.append(
        DeviceProfile(
            name="apple-tv-1",
            vendor="Apple",
            model="Apple TV 4K",
            category="Media/TV",
            uses_eapol=False,  # wired
            platforms=["homekit"],
            supports_ipv6=True,
            mdns=MdnsConfig(
                advertise=[
                    ("_airplay._tcp.local", "display_name", 7000, {"model": "AppleTV11,1"}),
                    ("_companion-link._tcp.local", "display_name", 49152, {}),
                ],
                query_services=["_homekit._tcp.local", "_hap._tcp.local"],
                query_interval=60.0,
                respond_unicast=True,
            ),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.USER_DISPLAY_NAME, parameter_request=[1, 3, 6, 15, 119]),
            tls=TlsConfig(version="1.3", cert_validity_days=365.0, self_signed=True, port=7000),
            open_services=[
                _tcp(7000, "airplay", "", "AirTunes", "595.13"),
                _tcp(49152, "companion-link", "", "", ""),
                _udp(319, "ptp", "", "", ""),
                _udp(320, "ptp", "", "", ""),
            ],
            responds_to_udp_scan=True,
        )
    )
    devices.append(
        DeviceProfile(
            name="google-chromecast-1",
            vendor="Google",
            model="Chromecast with Google TV",
            category="Media/TV",
            platforms=["google-home"],
            supports_ipv6=True,
            mdns=MdnsConfig(
                advertise=[("_googlecast._tcp.local", "full_mac", 8009, {"md": "Chromecast"})],
                query_services=["_googlecast._tcp.local"],
                query_interval=25.0,
            ),
            ssdp=SsdpConfig(
                msearch_targets=GOOGLE_SSDP_TARGETS,
                msearch_interval=20.0,
                respond=True,
                server_header="Linux/3.8.13, UPnP/1.0, Portable SDK for UPnP devices/1.6.18",
                upnp_version="UPnP/1.0",
            ),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.USER_DISPLAY_NAME, vendor_class="dhcpcd-6.8.2"),
            tls=TlsConfig(version="1.2", cert_validity_days=20 * 365.25, key_bits=112, port=8009),
            stun_like_udp_ports=[10002],
            http_user_agent="Chromecast OS/1.56",
            open_services=[
                _tcp(8008, "http", "HTTP/1.1 200 OK", "Chromecast", "1.56"),
                _tcp(8009, "tls", "", "cast-tls", "1.56"),
            ],
            vulnerabilities=[
                Vulnerability("CVE-2016-2183", "Short TLS keys on 8009 (SWEET32)", "high", 8009, "tcp")
            ],
        )
    )
    devices.append(
        DeviceProfile(
            name="lg-tv-1",
            vendor="LG",
            model="LG WebOS TV",
            category="Media/TV",
            supports_ipv6=True,
            uses_eapol=False,  # wired
            mdns=MdnsConfig(
                advertise=[("_lg-smart-device._tcp.local", "plain", 3001, {})],
                query_services=["_airplay._tcp.local"],
                query_interval=120.0,
            ),
            ssdp=SsdpConfig(
                msearch_targets=["urn:schemas-upnp-org:device:MediaRenderer:1", "urn:lge-com:service:webos-second-screen:1"],
                msearch_interval=300.0,
                notify=True,
                respond=True,
                server_header="Linux/3.10 UPnP/1.0 LGE WebOS TV/1.0",
                upnp_version="UPnP/1.0",
                # §5.1: requests arrive from three firmware versions.
                firmware_rotation=["WebOS TV/Version 0.9", "WebOS/1.5", "WebOS/4.1.0"],
            ),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="LG WebOS"),
            http_user_agent="LG WebOS/4.1.0 UPnP/1.0",
            open_services=[
                _tcp(1990, "unknown", "", "", ""),
                _tcp(3000, "http", "HTTP/1.1 200 OK", "webos-secondscreen", "4.1.0"),
                _tcp(3001, "https", "", "webos-secondscreen", "4.1.0"),
                _tcp(9955, "unknown", "", "", ""),
                _tcp(36866, "unknown", "", "", ""),
                _udp(1900, "ssdp", "", "", ""),
            ],
            vulnerabilities=[
                Vulnerability("UPNP-1.0-DEPRECATED", "Runs deprecated UPnP 1.0 stack", "medium", 1900, "udp")
            ],
            responds_to_udp_scan=True,
        )
    )
    devices.append(
        DeviceProfile(
            name="roku-tv-1",
            vendor="Roku",
            model="Roku Express",
            category="Media/TV",
            supports_ipv6=False,
            mdns=MdnsConfig(
                advertise=[("_rsp._tcp.local", "plain", 8060, {})],
                query_services=[],
                query_interval=0.0,
                send_queries=False,
            ),
            ssdp=SsdpConfig(
                msearch_targets=["roku:ecp", "urn:schemas-upnp-org:device:InternetGatewayDevice:1"],
                msearch_interval=600.0,
                notify=True,
                respond=True,
                server_header="Roku/9.3.0 UPnP/1.0 Roku/9.3.0",
                upnp_version="UPnP/1.0",
                search_igd=True,  # §5.1: IGD requests exploitable by malware
            ),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="dhcpcd-5.5.6"),
            open_services=[
                _tcp(8060, "http", "HTTP/1.1 200 OK", "Roku-ECP", "9.3.0"),
                _tcp(7000, "unknown", "", "", ""),
            ],
            vulnerabilities=[
                Vulnerability("SSDP-IGD-EXPOSURE", "Sends IGD SSDP requests abusable for port-forwarding malware", "medium", 1900, "udp"),
                Vulnerability("UPNP-1.0-DEPRECATED", "Runs deprecated UPnP 1.0 stack", "medium", 1900, "udp"),
            ],
        )
    )
    devices.append(
        DeviceProfile(
            name="samsung-tv-1",
            vendor="Samsung",
            model="Samsung Tizen TV",
            category="Media/TV",
            supports_ipv6=True,
            uses_eapol=False,
            mdns=MdnsConfig(
                advertise=[("_airplay._tcp.local", "plain", 7000, {})],
                query_services=["_googlecast._tcp.local"],
                query_interval=90.0,
            ),
            ssdp=SsdpConfig(
                notify=True,
                respond=True,
                server_header="SHP, UPnP/1.0, Samsung UPnP SDK/1.0",
                upnp_version="UPnP/1.0",
            ),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="Samsung-DHCP/1.0"),
            open_services=[
                _tcp(8001, "http", "HTTP/1.1 200 OK", "samsung-remote", "2.0"),
                _tcp(8002, "https", "", "samsung-remote", "2.0"),
                _tcp(9197, "unknown", "", "", ""),
                _udp(1900, "ssdp", "", "", ""),
            ],
            vulnerabilities=[
                Vulnerability("UPNP-1.0-DEPRECATED", "Runs deprecated UPnP 1.0 stack", "medium", 1900, "udp")
            ],
        )
    )
    devices.append(
        DeviceProfile(
            name="tivo-stream-1",
            vendor="TiVo",
            model="TiVo Stream 4K",
            category="Media/TV",
            supports_ipv6=True,
            mdns=MdnsConfig(
                advertise=[("_googlecast._tcp.local", "full_mac", 8009, {"md": "TiVo Stream 4K"})],
                query_services=["_googlecast._tcp.local"],
                query_interval=30.0,
            ),
            dhcp=DhcpConfig(
                # §5.1: TiVo Stream obfuscates its names with random bytes.
                hostname_scheme=HostnameScheme.RANDOMIZED,
                vendor_class="dhcpcd-7.0.1",
            ),
            tls=TlsConfig(version="1.2", cert_validity_days=20 * 365.25, key_bits=112, port=8009),
            open_services=[_tcp(8009, "tls", "", "cast-tls", "1.36")],
        )
    )
    return devices


def _surveillance_devices() -> List[DeviceProfile]:
    devices: List[DeviceProfile] = []
    devices.append(
        DeviceProfile(
            name="amcrest-camera-1",
            vendor="Amcrest",
            model="AMC020SC43PJ749D66",
            category="Surveillance",
            uses_eapol=False,  # PoE camera
            ssdp=SsdpConfig(
                msearch_targets=[],
                notify=True,
                respond=True,
                server_header="Linux, UPnP/1.0, Private UPnP SDK",
                upnp_version="UPnP/1.0",
            ),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 0.9.9"),
            open_services=[
                _tcp(80, "http", "HTTP/1.1 200 OK", "Amcrest-web", "2.420"),
                _tcp(443, "https", "", "Amcrest-web", "2.420"),
                _tcp(554, "rtsp", "RTSP/1.0 200 OK", "Amcrest-rtsp", "1.0"),
                _udp(37810, "unknown", "", "", ""),
            ],
            vulnerabilities=[
                Vulnerability("UPNP-1.0-DEPRECATED", "Runs deprecated UPnP 1.0 stack", "medium", 1900, "udp")
            ],
        )
    )
    for index, model in ((1, "Arlo Base Station"), (2, "Arlo Pro 3")):
        devices.append(
            DeviceProfile(
                name=f"arlo-{index}",
                vendor="Arlo",
                model=model,
                category="Surveillance",
                supports_ipv6=True,

                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.24.1"),
                open_services=[_tcp(443, "https", "", "arlo-web", "1.12")] if "Base" in model else [],
                responds_to_tcp_scan="Base" in model,
                responds_to_ip_proto_scan="Base" in model,
            )
        )
    devices.append(
        DeviceProfile(
            name="blink-camera-1",
            vendor="Blink",
            model="Blink Mini",
            category="Surveillance",
            uses_icmp=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.19.5"),
            responds_to_tcp_scan=False,
            responds_to_ip_proto_scan=False,
        )
    )
    devices.append(
        DeviceProfile(
            name="dlink-camera-1",
            vendor="D-Link",
            model="DCS-8000LH",
            category="Surveillance",
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
            tls=TlsConfig(version="1.2", cert_validity_days=25 * 365.25, self_signed=True, port=443),
            open_services=[
                _tcp(443, "https", "", "dlink-web", "2.01"),
                _tcp(8080, "http", "HTTP/1.1 200 OK", "dlink-stream", "2.01"),
            ],
        )
    )
    for index in (1, 2):
        devices.append(
            DeviceProfile(
                name=f"google-nest-camera-{index}",
                vendor="Google",
                model="Nest Cam",
                category="Surveillance",
                supports_ipv6=True,
                mdns=MdnsConfig(
                    advertise=[("_nest-cam._tcp.local", "mac_suffix", 443, {})],
                    query_services=["_googlecast._tcp.local"],
                    query_interval=60.0,
                ),
                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.USER_DISPLAY_NAME, vendor_class="dhcpcd-6.8.2"),
                tls=TlsConfig(version="1.2", cert_validity_days=20 * 365.25, port=443),
                open_services=[_tcp(443, "tls", "", "nest-cam", "1.0")],
            )
        )
    devices.append(
        DeviceProfile(
            name="icsee-doorbell-1",
            vendor="ICSee",
            model="ICSee Doorbell",
            category="Surveillance",
            responds_to_ip_proto_scan=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 0.9.9"),
            open_services=[
                _tcp(23, "telnet", "login:", "busybox-telnetd", "1.16"),
                _tcp(34567, "unknown", "", "xmeye-dvrip", "1.0"),
            ],
            vulnerabilities=[
                Vulnerability("TELNET-OPEN", "Telnet service with default credentials", "critical", 23, "tcp")
            ],
            responds_to_udp_scan=True,
        )
    )
    devices.append(
        DeviceProfile(
            name="lefun-camera-1",
            vendor="Lefun",
            model="Lefun Camera",
            category="Surveillance",
            responds_to_ip_proto_scan=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.19.4"),
            open_services=[
                _tcp(80, "http", "HTTP/1.1 200 OK", "GoAhead-Webs", "2.5"),
                _tcp(8080, "http", "HTTP/1.1 200 OK", "GoAhead-Webs", "2.5"),
            ],
            vulnerabilities=[
                Vulnerability(
                    "HTTP-BACKUP-EXPOSURE",
                    "HTTP server allows accessing backup files with server configuration details",
                    "high",
                    80,
                    "tcp",
                )
            ],
        )
    )
    devices.append(
        DeviceProfile(
            name="microseven-camera-1",
            vendor="Microseven",
            model="Microseven M7",
            category="Surveillance",
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.19.4"),
            open_services=[
                _tcp(80, "http", "HTTP/1.1 200 OK", "jQuery", "1.2"),
                _tcp(554, "rtsp", "RTSP/1.0 200 OK", "m7-rtsp", "1.0"),
                _tcp(8000, "onvif", "", "m7-onvif", "1.0"),
                _tcp(23, "telnet", "login:", "busybox-telnetd", "1.13"),
            ],
            vulnerabilities=[
                Vulnerability("CVE-2020-11022", "jQuery 1.2 XSS via htmlPrefilter", "medium", 80, "tcp"),
                Vulnerability("CVE-2020-11023", "jQuery 1.2 XSS via option elements", "medium", 80, "tcp"),
                Vulnerability(
                    "ONVIF-UNAUTH-SNAPSHOT",
                    "Remote service allows unauthenticated users to view camera snapshots (ONVIF); "
                    "user accounts and recording directory enumerable",
                    "critical",
                    8000,
                    "tcp",
                ),
                Vulnerability("TELNET-OPEN", "Telnet service enabled", "high", 23, "tcp"),
            ],
            responds_to_udp_scan=True,
        )
    )
    ring_models = ["Ring Video Doorbell", "Ring Video Doorbell", "Ring Indoor Cam", "Ring Indoor Cam"]
    for index, model in enumerate(ring_models, start=1):
        devices.append(
            DeviceProfile(
                name=f"ring-camera-{index}",
                vendor="Ring",
                model=model,
                category="Surveillance",
                responds_to_ip_proto_scan=False,
                # §5.1: Ring cameras use their device model name as hostname.
                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.24.1"),
                open_services=[_tcp(443, "https", "", "ring-device", "3.4")] if "Doorbell" in model else [],
                responds_to_broadcast_arp=False,
                responds_to_tcp_scan="Doorbell" in model,
            )
        )
    devices.append(
        DeviceProfile(
            name="tuya-camera-1",
            vendor="Tuya",
            model="Tuya Smart Camera",
            category="Surveillance",
            uses_icmp=False,
            responds_to_ip_proto_scan=False,
            tuya_broadcast=True,
            tuya_encrypted=True,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
            open_services=[_udp(6669, "tuya-video", "", "tuya-p2p", "3.3")],
            responds_to_broadcast_arp=False,
        )
    )
    devices.append(
        DeviceProfile(
            name="ubell-doorbell-1",
            vendor="Ubell",
            model="Ubell Doorbell",
            category="Surveillance",
            uses_icmp=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 0.9.9"),
            responds_to_tcp_scan=False,
            responds_to_ip_proto_scan=False,
        )
    )
    devices.append(
        DeviceProfile(
            name="wansview-camera-1",
            vendor="Wansview",
            model="Wansview Q5",
            category="Surveillance",
            responds_to_ip_proto_scan=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.19.4"),
            open_services=[
                _tcp(554, "rtsp", "RTSP/1.0 200 OK", "wansview-rtsp", "1.0"),
                _tcp(8554, "rtsp", "RTSP/1.0 200 OK", "wansview-rtsp", "1.0"),
            ],
        )
    )
    devices.append(
        DeviceProfile(
            name="wyze-cam-1",
            vendor="Wyze",
            model="Wyze Cam v2",
            category="Surveillance",
            uses_icmp=False,
            responds_to_ip_proto_scan=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.24.1"),
            open_services=[_udp(10000, "wyze-p2p", "", "tutk-iotc", "3.1")],
            responds_to_tcp_scan=False,
        )
    )
    devices.append(
        DeviceProfile(
            name="yi-camera-1",
            vendor="Yi",
            model="Yi Home Camera",
            category="Surveillance",
            responds_to_ip_proto_scan=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.19.4"),
            open_services=[_tcp(554, "rtsp", "RTSP/1.0 200 OK", "yi-rtsp", "1.0")],
        )
    )
    return devices


def _home_automation_devices() -> List[DeviceProfile]:
    devices: List[DeviceProfile] = []
    devices.append(
        DeviceProfile(
            name="amazon-smart-plug-1",
            vendor="Amazon",
            model="Amazon Smart Plug",
            category="Home Automation",
            platforms=["alexa"],
            supports_ipv6=True,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.21.1"),
        )
    )
    devices.append(
        DeviceProfile(
            name="aqara-hub-1",
            vendor="Aqara",
            model="Aqara Hub M2",
            category="Home Automation",
            supports_ipv6=True,
            responds_to_ip_proto_scan=False,
            platforms=["homekit"],
            mdns=MdnsConfig(
                advertise=[("_hap._tcp.local", "mac_suffix", 80, {"md": "Aqara Hub M2"})],
                query_interval=120.0,
                send_queries=False,
            ),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
            open_services=[_tcp(80, "http", "HTTP/1.1 200 OK", "aqara-hap", "1.0"), _tcp(4443, "https", "", "aqara-hap", "1.0")],
        )
    )
    devices.append(
        DeviceProfile(
            name="google-nest-thermostat-1",
            vendor="Google",
            model="Nest Thermostat",
            category="Home Automation",
            supports_ipv6=True,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.USER_DISPLAY_NAME, vendor_class="dhcpcd-6.8.2"),
            tls=TlsConfig(version="1.2", cert_validity_days=20 * 365.25, port=9543),
            open_services=[_tcp(9543, "tls", "", "nest-weave", "1.0"), _udp(11095, "weave", "", "nest-weave", "1.0")],
            responds_to_udp_scan=True,
        )
    )
    devices.append(
        DeviceProfile(
            name="ikea-tradfri-gateway-1",
            vendor="IKEA",
            model="TRADFRI Gateway",
            category="Home Automation",
            supports_ipv6=True,
            uses_eapol=False,  # Ethernet-only gateway
            mdns=MdnsConfig(advertise=[("_coap._udp.local", "mac_suffix", 5684, {})], send_queries=False),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.24.2"),
            open_services=[_udp(5684, "coaps", "", "tradfri-coap", "1.12")],
            responds_to_udp_scan=True,
        )
    )
    devices.append(
        DeviceProfile(
            name="magichome-strip-1",
            vendor="MagicHome",
            model="MagicHome LED Strip",
            category="Home Automation",
            uses_icmp=False,
            responds_to_ip_proto_scan=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 0.9.9"),
            open_services=[_tcp(5577, "magichome-ctl", "", "magichome", "1.0")],
        )
    )
    meross_models = ["Meross MSS110", "Meross MSS110", "Meross Garage Door Opener"]
    for index, model in enumerate(meross_models, start=1):
        devices.append(
            DeviceProfile(
                name=f"meross-{index}",
                vendor="Meross",
                model=model,
                category="Home Automation",
                supports_ipv6=True,
                responds_to_ip_proto_scan=False,
                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
                open_services=[_tcp(80, "http", "HTTP/1.1 200 OK", "meross-http", "2.1")],
            )
        )
    devices.append(
        DeviceProfile(
            name="philips-hue-hub-1",
            vendor="Philips",
            model="Philips Hue Bridge",
            category="Home Automation",
            uses_eapol=False,  # Ethernet-connected bridge
            platforms=["alexa", "google-home", "homekit"],
            supports_ipv6=True,
            mdns=MdnsConfig(
                # §5.1/Table 5: Philips Hub reveals its MAC in mDNS hostnames.
                advertise=[("_hue._tcp.local", "mac_suffix", 443, {"bridgeid": ""})],
                query_interval=300.0,
                respond_unicast=True,
                send_queries=False,
            ),
            ssdp=SsdpConfig(
                notify=True,
                respond=True,
                server_header="Hue/1.0 UPnP/1.0 IpBridge/1.50.0",
                upnp_version="UPnP/1.0",
            ),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.29.3"),
            tls=TlsConfig(version="1.2", cert_validity_days=28 * 365.25, self_signed=True, port=443),
            open_services=[
                _tcp(80, "http", "HTTP/1.1 200 OK", "hue-api", "1.50"),
                _tcp(443, "https", "", "hue-api", "1.50"),
                _udp(1900, "ssdp", "", "", ""),
            ],
        )
    )
    devices.append(
        DeviceProfile(
            name="ring-chime-1",
            vendor="Ring",
            model="Ring Chime",
            category="Home Automation",
            uses_icmp=False,
            responds_to_ip_proto_scan=False,
            # §5.1: Ring Chime's hostname combines device name and MAC.
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.NAME_AND_MAC, vendor_class="udhcp 1.24.1"),
            responds_to_broadcast_arp=False,
        )
    )
    devices.append(
        DeviceProfile(
            name="sengled-hub-1",
            vendor="Sengled",
            model="Sengled Smart Hub",
            category="Home Automation",
            supports_ipv6=True,
            uses_eapol=False,  # Ethernet-connected hub
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
            open_services=[_tcp(9080, "http", "HTTP/1.1 200 OK", "sengled-hub", "1.0")],
        )
    )
    devices.append(
        DeviceProfile(
            name="smartthings-hub-1",
            vendor="SmartThings",
            model="SmartThings Hub v3",
            category="Home Automation",
            uses_eapol=False,  # Ethernet-connected hub
            platforms=["alexa", "google-home"],
            supports_ipv6=True,
            mdns=MdnsConfig(advertise=[("_smartthings._tcp.local", "mac_suffix", 443, {})], query_interval=120.0),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.29.3"),
            tls=TlsConfig(version="1.2", cert_validity_days=24 * 365.25, self_signed=True, port=443),
            open_services=[_tcp(443, "https", "", "smartthings-hub", "2.0"), _tcp(39500, "http", "", "smartthings-hub", "2.0")],
        )
    )
    devices.append(
        DeviceProfile(
            name="switchbot-hub-1",
            vendor="SwitchBot",
            model="SwitchBot Hub Mini",
            category="Home Automation",
            uses_icmp=False,
            responds_to_ip_proto_scan=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
            responds_to_tcp_scan=False,
        )
    )
    for index, model in ((1, "TP-Link HS110 Plug"), (2, "TP-Link KL110 Bulb")):
        devices.append(
            DeviceProfile(
                name=f"tplink-{index}",
                vendor="TP-Link",
                model=model,
                category="Home Automation",
                platforms=["alexa", "google-home"],
                tplink_role="server",
                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.19.4"),
                open_services=[
                    _tcp(9999, "tplink-shp", "", "tplink-shp", "1.5.4"),
                    _udp(9999, "tplink-shp", "", "tplink-shp", "1.5.4"),
                ],
                vulnerabilities=[
                    Vulnerability(
                        "TPLINK-SHP-NOAUTH",
                        "TPLINK-SHP allows unauthenticated local control and leaks plaintext geolocation",
                        "high",
                        9999,
                        "tcp",
                    )
                ],
                responds_to_udp_scan=True,
            )
        )
    tuya_models = ["Tuya Smart Plug", "Tuya Smart Plug", "Jinvoo Bulb"]
    for index, model in enumerate(tuya_models, start=1):
        devices.append(
            DeviceProfile(
                name=f"tuya-automation-{index}",
                vendor="Tuya",
                model=model,
                category="Home Automation",
                uses_icmp=False,
                responds_to_ip_proto_scan=False,
                tuya_broadcast=True,
                tuya_encrypted=model != "Jinvoo Bulb",  # Jinvoo: plaintext gwId/productKey
                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
                open_services=[_tcp(6668, "tuya-ctl", "", "tuya-local", "3.3")],
                responds_to_broadcast_arp=False,
            )
        )
    devices.append(
        DeviceProfile(
            name="wemo-plug-1",
            vendor="Belkin",
            model="WeMo Mini Plug",
            category="Home Automation",
            supports_ipv6=False,
            ssdp=SsdpConfig(
                notify=True,
                server_header="Unspecified, UPnP/1.0, Unspecified",
                upnp_version="UPnP/1.0",
            ),
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 0.9.9"),
            open_services=[
                _tcp(49153, "http.soap", "HTTP/1.1 200 OK", "wemo-upnp", "1.0"),
                _udp(53, "dns", "", "dnsmasq", "2.47"),
            ],
            vulnerabilities=[
                Vulnerability("NESSUS-12217", "DNS Server Cache Snooping Remote Information Disclosure", "medium", 53, "udp"),
                Vulnerability("UPNP-1.0-DEPRECATED", "Runs deprecated UPnP 1.0 stack", "medium", 1900, "udp"),
            ],
            responds_to_udp_scan=True,
        )
    )
    devices.append(
        DeviceProfile(
            name="wiz-bulb-1",
            vendor="Wiz",
            model="Wiz Color Bulb",
            category="Home Automation",
            supports_ipv6=True,
            responds_to_ip_proto_scan=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
            open_services=[_udp(38899, "wiz-ctl", "", "wiz-local", "1.22")],
            responds_to_udp_scan=True,
            responds_to_tcp_scan=False,
        )
    )
    devices.append(
        DeviceProfile(
            name="yeelight-bulb-1",
            vendor="Yeelight",
            model="Yeelight Color Bulb",
            category="Home Automation",
            supports_ipv6=True,
            responds_to_ip_proto_scan=False,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.18.4"),
            open_services=[_tcp(55443, "yeelight-ctl", "", "yeelight-local", "1.4")],
        )
    )
    return devices


def _home_appliance_devices() -> List[DeviceProfile]:
    devices: List[DeviceProfile] = []
    simple = [
        ("anova-sousvide-1", "Anova", "Anova Precision Cooker", "udhcp 1.22.1"),
        ("behmor-brewer-1", "Behmor", "Behmor Connected Brewer", "udhcp 0.9.9"),
        ("smarter-coffee-1", "Smarter", "Smarter Coffee 2nd Gen", "udhcp 1.18.4"),
        ("xiaomi-ricecooker-1", "Xiaomi", "Xiaomi Rice Cooker", "udhcp 1.22.1"),
    ]
    for name, vendor, model, client in simple:
        devices.append(
            DeviceProfile(
                name=name,
                vendor=vendor,
                model=model,
                category="Home Appliance",
                uses_icmp=name in ("anova-sousvide-1", "xiaomi-ricecooker-1"),
                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class=client),
                responds_to_tcp_scan=False,
            )
        )
    devices.append(
        DeviceProfile(
            name="blueair-purifier-1",
            vendor="Blueair",
            model="Blueair Classic 480i",
            category="Home Appliance",
            supports_ipv6=True,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
        )
    )
    devices.append(
        DeviceProfile(
            name="ge-microwave-1",
            vendor="GE",
            model="GE Smart Microwave",
            category="Home Appliance",
            # §5.1: GE Microwave obfuscates hostnames with random bytes.
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.RANDOMIZED, vendor_class="udhcp 1.24.2"),
            responds_to_tcp_scan=False,
        )
    )
    devices.append(
        DeviceProfile(
            name="lg-dishwasher-1",
            vendor="LG",
            model="LG ThinQ Dishwasher",
            category="Home Appliance",
            supports_ipv6=True,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="LG ThinQ-DHCP/1.0"),
            responds_to_tcp_scan=False,
        )
    )
    devices.append(
        DeviceProfile(
            name="samsung-fridge-1",
            vendor="Samsung",
            model="Samsung Family Hub Fridge",
            category="Home Appliance",
            supports_ipv6=True,
            # §5.1: the fridge requests an IoTivity URI over CoAP.
            coap_role="iotivity-client",
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="Samsung-DHCP/1.0"),
            open_services=[_tcp(8001, "http", "HTTP/1.1 200 OK", "family-hub", "3.0"), _udp(5683, "coap", "", "iotivity", "2.0")],
            responds_to_udp_scan=True,
        )
    )
    for index, model in ((1, "Samsung Smart Washer"), (2, "Samsung Smart Dryer")):
        devices.append(
            DeviceProfile(
                name=f"samsung-laundry-{index}",
                vendor="Samsung",
                model=model,
                category="Home Appliance",
                supports_ipv6=True,
                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="Samsung-DHCP/1.0"),
                responds_to_tcp_scan=False,
            )
        )
    return devices


def _generic_iot_devices() -> List[DeviceProfile]:
    devices: List[DeviceProfile] = []
    simple = [
        ("keyco-air-1", "Keyco", "Keyco Air Sensor", "udhcp 0.9.9"),
        ("oxylink-oximeter-1", "Oxylink", "Oxylink Oximeter", "udhcp 1.18.4"),
        ("renpho-scale-1", "Renpho", "Renpho Smart Scale", "udhcp 1.18.4"),
    ]
    for name, vendor, model, client in simple:
        devices.append(
            DeviceProfile(
                name=name,
                vendor=vendor,
                model=model,
                category="Generic IoT",
                uses_icmp=False,
                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class=client),
                responds_to_tcp_scan=False,
                responds_to_ip_proto_scan=False,
            )
        )
    devices.append(
        DeviceProfile(
            name="tuya-sensor-1",
            vendor="Tuya",
            model="Tuya Motion Sensor",
            category="Generic IoT",
            uses_icmp=False,
            responds_to_ip_proto_scan=False,
            tuya_broadcast=True,
            tuya_encrypted=True,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.VENDOR_AND_PARTIAL_MAC, vendor_class="udhcp 1.22.1"),
            responds_to_broadcast_arp=False,
            responds_to_tcp_scan=False,
        )
    )
    for index, model in ((1, "Withings Body+ Scale"), (2, "Withings Sleep Analyzer"), (3, "Withings BPM Connect")):
        devices.append(
            DeviceProfile(
                name=f"withings-{index}",
                vendor="Withings",
                model=model,
                category="Generic IoT",
                uses_icmp=False,
                dhcp=DhcpConfig(hostname_scheme=HostnameScheme.MODEL, vendor_class="udhcp 1.24.1"),
                responds_to_tcp_scan=False,
                responds_to_ip_proto_scan=False,
            )
        )
    return devices


def _game_console_devices() -> List[DeviceProfile]:
    return [
        DeviceProfile(
            name="nintendo-switch-1",
            vendor="Nintendo",
            model="Nintendo Switch",
            category="Game Console",
            supports_ipv6=True,
            # Appendix C.2: its EAPOL layer-2 traffic confuses nDPI
            # (mislabeled as AmazonAWS); modeled via heavy EAPOL use.
            uses_eapol=True,
            dhcp=DhcpConfig(hostname_scheme=HostnameScheme.RANDOMIZED, vendor_class="Nintendo netagent"),
            responds_to_tcp_scan=False,
        )
    ]


def _voice_assistant_devices() -> List[DeviceProfile]:
    devices: List[DeviceProfile] = []
    echo_models = [
        "Echo Spot",
        "Echo Show 5",
        "Echo Show 8",
        "Echo Dot 3rd Gen",
        "Echo Dot 3rd Gen",
        "Echo Dot 3rd Gen",
        "Echo Dot 4th Gen",
        "Echo Dot 4th Gen",
        "Echo 2nd Gen",
        "Echo 2nd Gen",
        "Echo 3rd Gen",
        "Echo 3rd Gen",
        "Echo Plus",
        "Echo Flex",
        "Echo Flex",
        "Echo Studio",
        "Echo Input",
    ]
    for index, model in enumerate(echo_models, start=1):
        devices.append(_amazon_echo(index, model))
    for index, model in enumerate(["HomePod Mini", "HomePod Mini", "HomePod"], start=1):
        devices.append(_apple_speaker(index, model))
    devices.append(_meta_portal(1))
    google_models = [
        ("Home Mini", False),
        ("Home Mini", False),
        ("Nest Mini", False),
        ("Nest Mini", False),
        ("Nest Hub", True),
        ("Nest Hub", True),
        ("Nest Audio", False),
    ]
    for index, (model, is_hub) in enumerate(google_models, start=1):
        devices.append(_google_speaker(index, model, is_hub))
    return devices


def _add_device_specific_ports(catalog: List[DeviceProfile]) -> None:
    """Give UPnP/companion devices their per-device ephemeral listeners.

    Real UPnP stacks open event-subscription and companion-control
    listeners on ephemeral ports that differ per device; this is what
    drives the long tail of "178 unique open TCP ports and 115 unique
    open UDP ports" (§4.2).  Ports are deterministic functions of the
    device's catalog index so runs are reproducible.
    """
    for index, profile in enumerate(catalog):
        if not profile.open_services:
            continue
        has_tcp = any(service.transport == "tcp" for service in profile.open_services)
        if (profile.ssdp or profile.mdns) and has_tcp:
            profile.open_services.append(
                _tcp(49400 + 2 * index, "upnp-event", "", "upnp-eventd", "1.0")
            )
            profile.open_services.append(_tcp(50200 + 3 * index, "companion", "", "", ""))
        if profile.category in ("Surveillance", "Voice Assistant", "Media/TV"):
            profile.open_services.append(_udp(40000 + 7 * index, "keepalive", "", "", ""))
        if profile.category == "Voice Assistant":
            profile.open_services.append(_tcp(58000 + 5 * index, "diagnostics", "", "", ""))
            profile.open_services.append(_udp(33000 + 11 * index, "sync", "", "", ""))


#: §5.1: "Six devices also send requests for public IPs, which may be an
#: intentional behavior to identify device and network misconfigurations."
_PUBLIC_IP_PROBERS = (
    "lg-tv-1", "samsung-tv-1", "roku-tv-1", "amazon-fire-tv-1",
    "smartthings-hub-1", "nintendo-switch-1",
)


def _assign_broadcast_arp_policy(catalog: List[DeviceProfile]) -> None:
    """§5.1: only 58% of devices answer Echo's *broadcast* ARP sweeps.

    Responding is typical of full network stacks (speakers, TVs, hubs);
    battery/RTOS-class firmware commonly ignores broadcast who-has for
    addresses learned elsewhere.  Unicast ARP is always answered.
    """
    always_respond = {"Voice Assistant", "Media/TV"}
    for index, profile in enumerate(catalog):
        if profile.category in always_respond:
            profile.responds_to_broadcast_arp = True
        elif "Hub" in profile.model or "Bridge" in profile.model or "Gateway" in profile.model:
            profile.responds_to_broadcast_arp = True
        elif profile.category in ("Generic IoT", "Home Appliance"):
            profile.responds_to_broadcast_arp = False
        elif profile.category == "Surveillance":
            # Alternate: half the cameras answer broadcast ARP.
            profile.responds_to_broadcast_arp = index % 2 == 0
        elif profile.category == "Home Automation":
            profile.responds_to_broadcast_arp = index % 3 == 0
        # Game console keeps its default (True).


#: Devices whose DHCP requests carry no hostname (§5.1: hostnames were
#: identified for only 67% of devices).
_NO_HOSTNAME = {
    "keyco-air-1", "oxylink-oximeter-1", "renpho-scale-1", "tuya-sensor-1",
    "withings-1", "withings-2", "withings-3",
    "anova-sousvide-1", "behmor-brewer-1", "smarter-coffee-1",
    "xiaomi-ricecooker-1", "blueair-purifier-1",
    "blink-camera-1", "ubell-doorbell-1", "wansview-camera-1", "yi-camera-1",
    "icsee-doorbell-1", "lefun-camera-1", "microseven-camera-1",
    "dlink-camera-1", "arlo-2", "wyze-cam-1",
    "magichome-strip-1", "sengled-hub-1", "switchbot-hub-1", "wiz-bulb-1",
    "yeelight-bulb-1", "meross-1", "meross-2", "meross-3", "aqara-hub-1",
}

#: Vendors whose clients identify themselves with a version string
#: (§5.1: 16 unique versions from ~40% of devices; "37 devices —
#: including Amazon Echo and Google ones — use old or custom DHCP
#: client versions").  Amazon 19 + Google 11 + Samsung 4 + LG 2 +
#: Nintendo 1 = 37 devices.
_VERSION_SENDERS = {"Amazon", "Google", "Samsung", "LG", "Nintendo"}

#: Extra parameter-request option groups rotated across categories so
#: the testbed requests ~30 distinct data types (§5.1), including the
#: deprecated SMTP Server (69), Name Server (5), and Root Path (17).
_EXTRA_OPTION_GROUPS = [
    [2, 4, 7],          # time offset, time server, log server
    [5, 17, 69],        # the deprecated trio the paper calls out
    [9, 44, 47],        # LPR, NetBIOS name server / scope
    [57, 58, 59],       # max size, renewal, rebinding
    [81, 119, 121],     # FQDN, domain search, classless routes
    [33, 125, 43],      # static routes, vendor-identifying, vendor-specific
    [66, 67, 116],      # TFTP server, bootfile, auto-config
]


#: Per-vendor client-version pools (firmware generations differ across a
#: vendor's fleet), rotated so the testbed shows 16 unique versions.
_VERSION_POOLS = {
    "Amazon": ["udhcp 1.21.1", "udhcp 1.19.4", "udhcp 1.24.2", "udhcp 1.14.3",
               "udhcp 1.16.2", "udhcp 1.12.1"],
    "Google": ["dhcpcd-6.8.2:Linux-4.9:armv7l", "dhcpcd-6.11.5", "dhcpcd-6.4.3",
               "dhcpcd-5.5.6", "dhcpcd-5.2.12"],
    "Samsung": ["Samsung-DHCP/1.0", "Samsung-DHCP/2.1"],
    "LG": ["LG WebOS", "LG ThinQ-DHCP/1.0"],
    "Nintendo": ["Nintendo netagent"],
}


def _tune_dhcp_exposure(catalog: List[DeviceProfile]) -> None:
    """Apply the §5.1 DHCP exposure marginals to the catalog."""
    version_cursor: Dict[str, int] = {}
    for index, profile in enumerate(catalog):
        if profile.name in _NO_HOSTNAME:
            profile.dhcp.hostname_scheme = None
        if profile.vendor in _VERSION_POOLS:
            pool = _VERSION_POOLS[profile.vendor]
            cursor = version_cursor.get(profile.vendor, 0)
            profile.dhcp.vendor_class = pool[cursor % len(pool)]
            version_cursor[profile.vendor] = cursor + 1
        else:
            profile.dhcp.vendor_class = ""
        if profile.category == "Generic IoT":
            profile.dhcp.parameter_request = []
        else:
            extras = _EXTRA_OPTION_GROUPS[index % len(_EXTRA_OPTION_GROUPS)]
            merged = list(profile.dhcp.parameter_request)
            for option in extras:
                if option not in merged:
                    merged.append(option)
            profile.dhcp.parameter_request = merged


def build_catalog() -> List[DeviceProfile]:
    """Build the full 93-device testbed catalog (Table 3)."""
    catalog: List[DeviceProfile] = []
    catalog.extend(_game_console_devices())
    catalog.extend(_generic_iot_devices())
    catalog.extend(_home_appliance_devices())
    catalog.extend(_home_automation_devices())
    catalog.extend(_media_devices())
    catalog.extend(_surveillance_devices())
    catalog.extend(_voice_assistant_devices())
    names = [profile.name for profile in catalog]
    if len(names) != len(set(names)):
        raise RuntimeError("catalog contains duplicate device names")
    _add_device_specific_ports(catalog)
    _assign_broadcast_arp_policy(catalog)
    for profile in catalog:
        if profile.name in _PUBLIC_IP_PROBERS:
            profile.arp_scan.probe_public_ips = True
    _tune_dhcp_exposure(catalog)
    return catalog


def catalog_summary(catalog: List[DeviceProfile]) -> Dict[str, Dict[str, int]]:
    """Vendor counts per category — the structure of Table 3."""
    summary: Dict[str, Dict[str, int]] = {}
    for profile in catalog:
        per_vendor = summary.setdefault(profile.category, {})
        per_vendor[profile.vendor] = per_vendor.get(profile.vendor, 0) + 1
    return summary
