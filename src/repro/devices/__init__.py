"""Device models: the MonIoTr testbed catalog and behaviour profiles.

`catalog` reproduces Table 3 (93 devices, 78 unique models, 7
categories); `profiles` defines what each device *does* on the LAN —
which discovery protocols it speaks, at what intervals, what
identifiers it exposes, which services it keeps open, and which known
vulnerabilities it carries; `behaviors` turns a profile into a live
simulated node.
"""

from repro.devices.profiles import (
    DeviceProfile,
    MdnsConfig,
    SsdpConfig,
    ArpScanConfig,
    DhcpConfig,
    TlsConfig,
    HostnameScheme,
    Vulnerability,
)
from repro.devices.catalog import build_catalog, TESTBED_CATEGORY_COUNTS
from repro.devices.behaviors import DeviceNode, build_testbed

__all__ = [
    "DeviceProfile",
    "MdnsConfig",
    "SsdpConfig",
    "ArpScanConfig",
    "DhcpConfig",
    "TlsConfig",
    "HostnameScheme",
    "Vulnerability",
    "build_catalog",
    "TESTBED_CATEGORY_COUNTS",
    "DeviceNode",
    "build_testbed",
]
