"""Behaviour engine: turn :class:`DeviceProfile` objects into live nodes.

``DeviceNode`` schedules and answers the traffic a profile declares —
boot-time DHCP/EAPOL/IGMP, periodic mDNS/SSDP/ARP/TuyaLP/TPLINK-SHP
discovery, RTP streaming, and unknown-protocol broadcasts — while
``build_testbed`` assembles the whole MonIoTr lab: 93 devices wired into
vendor clusters exchanging TLS/HTTP/unknown-UDP traffic as §4.1 and
Figure 4 describe.
"""

from __future__ import annotations

import random
import uuid as uuid_module
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.mac import MacAddress
from repro.net.decode import DecodedPacket
from repro.net.oui import DEFAULT_OUI_REGISTRY, OuiRegistry
from repro.protocols.dhcp import DhcpMessage, DhcpMessageType, DHCP_CLIENT_PORT, DHCP_SERVER_PORT
from repro.protocols.dns import DnsMessage, DnsType
from repro.protocols.http import HttpRequest, HttpResponse
from repro.protocols.mdns import (
    MDNS_GROUP_V4,
    MDNS_PORT,
    ServiceAdvertisement,
    hue_instance_name,
    mdns_query,
)
from repro.protocols.rtp import RtpPacket
from repro.protocols.ssdp import SSDP_GROUP_V4, SSDP_PORT, SsdpMessage, device_description_xml
from repro.protocols.tls import CertificateInfo, TlsRecord, TlsVersion
from repro.protocols.tplink_shp import TPLINK_SHP_PORT, TplinkShpMessage
from repro.protocols.tuyalp import TUYA_PORT_ENCRYPTED, TUYA_PORT_PLAIN, TuyaLpMessage
from repro.protocols.coap import CoapMessage, COAP_PORT
from repro.protocols.dhcpv6 import (
    ALL_DHCP_RELAY_AGENTS,
    DHCPV6_CLIENT_PORT,
    DHCPV6_SERVER_PORT,
    Dhcpv6Message,
)
from repro.net.llc import xid_broadcast_frame
from repro.devices.profiles import DeviceProfile, HostnameScheme
from repro.simnet.lan import Lan
from repro.simnet.node import Node
from repro.simnet.services import ServiceTable
from repro.simnet.simulator import Simulator


class DeviceNode(Node):
    """A simulated IoT device driven by its :class:`DeviceProfile`."""

    def __init__(self, profile: DeviceProfile, mac, rng: random.Random):
        super().__init__(
            name=profile.name,
            mac=mac,
            ip="0.0.0.0",
            hostname="",
            vendor=profile.vendor,
            services=ServiceTable(profile.open_services),
        )
        self.profile = profile
        self.rng = rng
        self.responds_to_broadcast_arp = profile.responds_to_broadcast_arp
        self.responds_to_tcp_scan = profile.responds_to_tcp_scan
        self.responds_to_ping = profile.responds_to_ip_proto_scan
        self.udp_closed_behavior = "icmp" if profile.responds_to_udp_scan else "drop"
        # Stable per-device identifiers (the fingerprintable surface).
        self.uuid = str(uuid_module.UUID(int=rng.getrandbits(128)))
        self.tplink_device_id = "".join(rng.choice("0123456789ABCDEF") for _ in range(40))
        self.tplink_hw_id = "".join(rng.choice("0123456789ABCDEF") for _ in range(32))
        self.tplink_oem_id = "".join(rng.choice("0123456789ABCDEF") for _ in range(32))
        self.tuya_gw_id = "".join(rng.choice("0123456789abcdef") for _ in range(20))
        self.tuya_product_key = "".join(rng.choice("abcdefghjkmnpqrstuvwxyz23456789") for _ in range(16))
        self.latitude = 42.337681 + rng.uniform(-0.01, 0.01)
        self.longitude = -71.087036 + rng.uniform(-0.01, 0.01)
        # Discovery clients bind one socket and reuse it across periodic
        # queries (minissdpd-style), so responses land on a stable port.
        self.ssdp_client_port = 50000 + rng.randrange(1000)
        self.tplink_client_port = 51000 + rng.randrange(1000)
        self.ipv6_enabled = profile.supports_ipv6
        self._register_responders()

    # -- identity helpers ---------------------------------------------------------

    def dhcp_hostname(self) -> str:
        scheme = self.profile.dhcp.hostname_scheme
        if scheme is None:
            return ""
        if scheme is HostnameScheme.MODEL:
            return self.profile.model.replace(" ", "-")
        if scheme is HostnameScheme.NAME_AND_MAC:
            return f"{self.profile.model.replace(' ', '-')}-{self.mac.compact()}"
        if scheme is HostnameScheme.VENDOR_AND_PARTIAL_MAC:
            return f"{self.profile.vendor.lower()}-{self.mac.nic_suffix.replace(':', '')}"
        if scheme is HostnameScheme.USER_DISPLAY_NAME:
            return self.profile.display_name.replace(" ", "-")
        if scheme is HostnameScheme.RANDOMIZED:
            return "host-" + "".join(self.rng.choice("0123456789abcdef") for _ in range(8))
        return self.profile.model

    def mdns_instance(self, scheme: str) -> str:
        if scheme == "mac_suffix":
            if self.profile.vendor == "Philips":
                return hue_instance_name(self.mac)
            suffix = self.mac.nic_suffix.replace(":", "").upper()
            return f"{self.profile.model} - {suffix}"
        if scheme == "full_mac":
            return f"{self.profile.model}-{self.mac.compact()}"
        if scheme == "display_name":
            return self.profile.display_name
        if scheme == "spotify_zeroconf":
            return f"{self.profile.model}-{self.mac.compact()}-{self.uuid}"
        return self.profile.model

    def mdns_advertisements(self) -> List[ServiceAdvertisement]:
        if not self.profile.mdns:
            return []
        advertisements = []
        for service_type, scheme, port, txt in self.profile.mdns.advertise:
            txt = dict(txt)
            if self.profile.vendor == "Philips" and "bridgeid" in txt:
                # Hue bridge id embeds the MAC with fffe in the middle.
                octets = self.mac.compact()
                txt["bridgeid"] = (octets[:6] + "fffe" + octets[6:]).upper()
            txt.setdefault("id", self.uuid)
            advertisements.append(
                ServiceAdvertisement(
                    service_type=service_type,
                    instance_name=self.mdns_instance(scheme),
                    hostname=f"{self.dhcp_hostname() or self.profile.model.replace(' ', '-')}.local",
                    port=port,
                    address=self.ip,
                    txt=txt,
                    address_v6=self.ipv6_link_local if self.profile.supports_ipv6 else None,
                )
            )
        return advertisements

    def ssdp_usn(self, target: str) -> str:
        return f"uuid:{self.uuid}::{target}"

    def ssdp_location(self) -> str:
        if self.profile.ssdp and self.profile.ssdp.bad_location_prefix:
            # Fire TV misconfiguration: /16 address unsupported on the LAN.
            return "http://192.168.0.1:49152/desc.xml"
        return f"http://{self.ip}:49152/desc.xml"

    # -- responders ---------------------------------------------------------------

    def _register_responders(self) -> None:
        profile = self.profile
        if profile.mdns:
            self.on_udp(MDNS_PORT, _mdns_responder)
        if profile.ssdp and profile.ssdp.respond:
            self.on_udp(SSDP_PORT, _ssdp_responder)
        if profile.tplink_role == "server":
            self.on_udp(TPLINK_SHP_PORT, _tplink_udp_responder)
            self.on_tcp(TPLINK_SHP_PORT, _tplink_tcp_responder)
        for service in profile.open_services:
            if service.transport == "tcp" and service.protocol == "http":
                self.on_tcp(service.port, _http_responder)
        # Ports this device *receives* cluster chatter on: sink them so the
        # stack does not answer its own peers with port-unreachables.
        for port in profile.stun_like_udp_ports:
            self.on_udp(port, _udp_sink)
        if profile.rtp_port:
            self.on_udp(profile.rtp_port, _udp_sink)

    # -- boot + periodic behaviour ---------------------------------------------------

    def boot(self, jitter: float = 0.0) -> None:
        """Schedule boot-time and periodic traffic on the simulator."""
        sim = self.simulator
        profile = self.profile
        start = jitter

        sim.schedule(start, self._boot_burst)
        mdns = profile.mdns
        if mdns:
            if mdns.send_queries and mdns.query_services and mdns.query_interval > 0:
                sim.schedule_periodic(
                    mdns.query_interval, self._send_mdns_queries, first_delay=start + 1.0
                )
            if mdns.advertise:
                sim.schedule_periodic(900.0, self._announce_mdns, first_delay=start + 2.0)
        ssdp = profile.ssdp
        if ssdp:
            if ssdp.msearch_targets and ssdp.msearch_interval > 0:
                sim.schedule_periodic(
                    ssdp.msearch_interval, self._send_ssdp_msearch, first_delay=start + 3.0
                )
            if ssdp.notify:
                sim.schedule_periodic(
                    ssdp.notify_interval, self._send_ssdp_notify, first_delay=start + 4.0
                )
        if profile.arp_scan.broadcast_sweep_interval > 0:
            sim.schedule_periodic(
                profile.arp_scan.broadcast_sweep_interval,
                self._arp_broadcast_sweep,
                first_delay=start + 120.0,
            )
        if profile.arp_scan.unicast_probe_fraction > 0:
            sim.schedule_periodic(3600.0, self._arp_unicast_probes, first_delay=start + 200.0)
        if profile.arp_scan.probe_public_ips:
            # §5.1: six devices ARP for public IPs (misconfiguration probe).
            sim.schedule_periodic(
                1800.0, lambda: self.send_arp_request("8.8.8.8"), first_delay=start + 40.0
            )
        if profile.tplink_role == "client":
            sim.schedule_periodic(600.0, self._send_tplink_discovery, first_delay=start + 15.0)
        if profile.tuya_broadcast:
            sim.schedule_periodic(5.0, self._send_tuya_broadcast, first_delay=start + 5.0)
        if profile.unknown_broadcast_port:
            sim.schedule_periodic(
                profile.unknown_broadcast_interval,
                self._send_unknown_broadcast,
                first_delay=start + 60.0,
            )
        for port in profile.stun_like_udp_ports:
            sim.schedule_periodic(
                300.0,
                lambda p=port: self._send_stun_like(p),
                first_delay=start + 30.0 + (port % 11),
            )
        if profile.coap_role == "iotivity-client":
            sim.schedule_periodic(300.0, self._send_coap_iotivity, first_delay=start + 45.0)
        elif profile.coap_role == "opaque":
            sim.schedule_periodic(300.0, self._send_coap_opaque, first_delay=start + 45.0)
        if profile.supports_ipv6:
            sim.schedule_periodic(120.0, self._send_icmpv6_ns, first_delay=start + 9.0)
        if profile.matter and profile.supports_ipv6:
            sim.schedule_periodic(600.0, self._announce_matter, first_delay=start + 20.0)

    #: Categories whose legacy stacks emit 802.2 XID probes on boot.
    _XID_CATEGORIES = ("Media/TV", "Game Console", "Home Appliance")

    def _boot_burst(self) -> None:
        profile = self.profile
        if profile.uses_eapol:
            self.send_eapol_handshake()
        self._dhcp_handshake()
        if profile.category in self._XID_CATEGORIES:
            self.lan.transmit(self, xid_broadcast_frame(self.mac))
        if profile.supports_ipv6:
            solicit = Dhcpv6Message.solicit(
                self.mac, self.rng.getrandbits(24), fqdn=self.dhcp_hostname()
            )
            self.send_udp6(
                ALL_DHCP_RELAY_AGENTS, DHCPV6_SERVER_PORT, solicit.encode(),
                src_port=DHCPV6_CLIENT_PORT,
            )
        # Gratuitous ARP announcing the address.
        self.send_arp_request(self.ip)
        if profile.mdns:
            self.join_group(MDNS_GROUP_V4)
        if profile.ssdp:
            self.join_group(SSDP_GROUP_V4)
        if profile.uses_icmp and self.lan:
            self.send_icmp_echo(self.lan.gateway_ip)

    def _dhcp_handshake(self) -> None:
        hostname = self.dhcp_hostname() or None
        vendor_class = self.profile.dhcp.vendor_class or None
        message = DhcpMessage.request(
            self.mac,
            self.rng.getrandbits(32),
            requested_ip=self.ip,
            server_ip=self.lan.gateway_ip,
            hostname=hostname,
            vendor_class=vendor_class,
            parameter_request=self.profile.dhcp.parameter_request,
        )
        self.send_udp(
            "255.255.255.255", DHCP_SERVER_PORT, message.encode(), src_port=DHCP_CLIENT_PORT
        )

    def _send_mdns_queries(self) -> None:
        # Devices that accept unicast responses set the QU bit (RFC 6762
        # §5.4) — the Apple pattern in the testbed.
        query = mdns_query(
            self.profile.mdns.query_services,
            unicast_response=self.profile.mdns.respond_unicast,
        )
        self.send_udp(MDNS_GROUP_V4, MDNS_PORT, query.encode(), src_port=MDNS_PORT)

    def _announce_mdns(self) -> None:
        for advertisement in self.mdns_advertisements():
            self.send_udp(
                MDNS_GROUP_V4, MDNS_PORT, advertisement.to_response().encode(), src_port=MDNS_PORT
            )

    def _send_ssdp_msearch(self) -> None:
        ssdp = self.profile.ssdp
        for target in ssdp.msearch_targets:
            agent = None
            if ssdp.firmware_rotation:
                agent = self.rng.choice(ssdp.firmware_rotation)
            message = SsdpMessage.msearch(target, user_agent=agent)
            self.send_udp(SSDP_GROUP_V4, SSDP_PORT, message.encode(), src_port=self.ssdp_client_port)

    def _send_ssdp_notify(self) -> None:
        ssdp = self.profile.ssdp
        message = SsdpMessage.notify(
            location=self.ssdp_location(),
            notification_type="upnp:rootdevice",
            usn=self.ssdp_usn("upnp:rootdevice"),
            server=ssdp.server_header or f"{self.profile.vendor} {ssdp.upnp_version}",
        )
        self.send_udp(SSDP_GROUP_V4, SSDP_PORT, message.encode(), src_port=SSDP_PORT)

    def _arp_broadcast_sweep(self) -> None:
        """Echo behaviour: ARP-scan the entire /24 (§5.1)."""
        import ipaddress

        for host in ipaddress.ip_network(self.lan.subnet).hosts():
            target = str(host)
            if target != self.ip:
                self.send_arp_request(target)

    def _arp_unicast_probes(self) -> None:
        others = [node for node in self.lan.nodes if node is not self]
        count = int(len(others) * self.profile.arp_scan.unicast_probe_fraction)
        for node in self.rng.sample(others, min(count, len(others))):
            self.send_arp_request(node.ip, unicast_to=node.mac)
        if self.profile.arp_scan.probe_public_ips:
            self.send_arp_request("8.8.8.8")

    def _send_tplink_discovery(self) -> None:
        query = TplinkShpMessage.get_sysinfo_query()
        self.send_udp("255.255.255.255", TPLINK_SHP_PORT, query.encode(), src_port=self.tplink_client_port)

    def _send_tuya_broadcast(self) -> None:
        message = TuyaLpMessage.discovery(
            gw_id=self.tuya_gw_id,
            product_key=self.tuya_product_key,
            ip=self.ip,
            version="3.3" if self.profile.tuya_encrypted else "3.1",
            encrypted=self.profile.tuya_encrypted,
        )
        port = TUYA_PORT_ENCRYPTED if self.profile.tuya_encrypted else TUYA_PORT_PLAIN
        self.send_udp("255.255.255.255", port, message.encode(), src_port=port)

    def _send_unknown_broadcast(self) -> None:
        payload = bytes([0x24, 0x00]) + self.rng.randbytes(34)
        self.send_udp(
            "255.255.255.255", self.profile.unknown_broadcast_port, payload, src_port=self.ephemeral_port()
        )

    def _send_stun_like(self, port: int) -> None:
        """Google's UDP 10000-10010 traffic (really RTP-ish, Appendix C.2)."""
        peers = [
            node
            for node in self.lan.nodes
            if isinstance(node, DeviceNode) and node.vendor == self.vendor and node is not self
        ]
        if not peers:
            return
        peer = self.rng.choice(peers)
        packet = RtpPacket(
            payload_type=97,
            sequence=self.rng.randrange(65536),
            timestamp=int(self.now * 90000) & 0xFFFFFFFF,
            ssrc=self.rng.getrandbits(32),
            payload=self.rng.randbytes(48),
        )
        self.send_udp(peer.ip, port, packet.encode(), src_port=port)

    def _send_coap_iotivity(self) -> None:
        message = CoapMessage.get("/oic/res", message_id=self.rng.randrange(65536))
        self.send_udp("224.0.1.187", COAP_PORT, message.encode(), src_port=self.ephemeral_port())

    def _send_coap_opaque(self) -> None:
        message = CoapMessage(
            code=2,  # POST
            message_id=self.rng.randrange(65536),
            uri_path=["x"],
            payload=self.rng.randbytes(24),
        )
        self.send_udp("224.0.1.187", COAP_PORT, message.encode(), src_port=self.ephemeral_port())

    def _announce_matter(self) -> None:
        """Matter operational advertisement over IPv6 mDNS (§4.1).

        The paper identifies "the newly-released IPv6-based Matter
        traffic from Amazon Echo smart speakers"; the operational
        instance name is the fabric/node identifier pair.
        """
        fabric_id = self.uuid.replace("-", "")[:16].upper()
        node_id = self.mac.compact().upper().rjust(16, "0")
        advert = ServiceAdvertisement(
            service_type="_matter._tcp.local",
            instance_name=f"{fabric_id}-{node_id}",
            hostname=f"{self.mac.compact().upper()}.local",
            port=5540,
            address=self.ip,
            txt={"SII": "5000", "SAI": "300", "T": "1"},
            address_v6=self.ipv6_link_local,
        )
        self.send_udp6("ff02::fb", MDNS_PORT, advert.to_response().encode(), src_port=MDNS_PORT)

    def _send_icmpv6_ns(self) -> None:
        others = [
            node for node in self.lan.nodes
            if node is not self and getattr(node, "ipv6_enabled", True)
        ]
        if others:
            target = self.rng.choice(others)
            self.send_neighbor_solicitation(target.ipv6_link_local)


# -- stateless responder callbacks (registered per node) -------------------------


def _mdns_responder(node: DeviceNode, packet: DecodedPacket) -> None:
    try:
        message = DnsMessage.decode(packet.udp.payload)
    except ValueError:
        return
    if message.is_response or not message.questions:
        return
    config = node.profile.mdns
    advertisements = node.mdns_advertisements()
    wanted = {question.name for question in message.questions}
    matching = [
        advert
        for advert in advertisements
        if advert.service_type in wanted or "_services._dns-sd._udp.local" in wanted
    ]
    if not matching:
        return
    response = DnsMessage(is_response=True, authoritative=True)
    for advert in matching:
        part = advert.to_response()
        response.answers.extend(part.answers)
        response.additionals.extend(part.additionals)
    unicast_wanted = any(question.unicast_response for question in message.questions)
    if unicast_wanted and config.respond_unicast:
        node.send_udp(packet.src_ip, packet.udp.src_port, response.encode(), src_port=MDNS_PORT)
    elif config.respond_multicast:
        node.send_udp(MDNS_GROUP_V4, MDNS_PORT, response.encode(), src_port=MDNS_PORT)


def _ssdp_responder(node: DeviceNode, packet: DecodedPacket) -> None:
    try:
        message = SsdpMessage.decode(packet.udp.payload)
    except ValueError:
        return
    from repro.protocols.ssdp import SsdpMethod, ST_ALL, ST_ROOT_DEVICE

    if message.method is not SsdpMethod.MSEARCH:
        return
    target = message.search_target or ST_ALL
    known = {ST_ALL, ST_ROOT_DEVICE, "urn:schemas-upnp-org:device:MediaRenderer:1",
             "urn:dial-multiscreen-org:service:dial:1"}
    if target not in known:
        return
    ssdp = node.profile.ssdp
    reply = SsdpMessage.response(
        location=node.ssdp_location(),
        search_target=target if target != ST_ALL else ST_ROOT_DEVICE,
        usn=node.ssdp_usn(ST_ROOT_DEVICE),
        server=ssdp.server_header or f"{node.profile.vendor} {ssdp.upnp_version}",
    )
    node.send_udp(packet.src_ip, packet.udp.src_port, reply.encode(), src_port=SSDP_PORT)


def _tplink_udp_responder(node: DeviceNode, packet: DecodedPacket) -> None:
    try:
        message = TplinkShpMessage.decode(packet.udp.payload)
    except ValueError:
        return
    if not message.is_sysinfo_query:
        return
    reply = TplinkShpMessage.sysinfo_response(
        alias=f"TP-Link {node.profile.model.split()[-1]}",
        device_id=node.tplink_device_id,
        hw_id=node.tplink_hw_id,
        oem_id=node.tplink_oem_id,
        model=node.profile.model,
        dev_name="Wi-Fi Smart Plug With Energy Monitoring"
        if "Plug" in node.profile.model
        else "Smart Wi-Fi LED Bulb",
        latitude=round(node.latitude, 6),
        longitude=round(node.longitude, 6),
        mac=str(node.mac).upper(),
    )
    node.send_udp(packet.src_ip, packet.udp.src_port, reply.encode(), src_port=TPLINK_SHP_PORT)


def _tplink_tcp_responder(node: DeviceNode, packet: DecodedPacket) -> None:
    # Unauthenticated control channel: any valid command is accepted (§5.1).
    try:
        TplinkShpMessage.decode(packet.tcp.payload, transport="tcp")
    except ValueError:
        return
    # State change acknowledged implicitly; the reply travels in the same
    # scripted tcp_exchange that delivered the command.


def _http_responder(node: DeviceNode, packet: DecodedPacket) -> None:
    # HTTP servers answer inside scripted tcp_exchange conversations; this
    # hook exists so honeypot-style probes get a banner even outside them.
    return


def _udp_sink(node: DeviceNode, packet: DecodedPacket) -> None:
    """Accept a datagram silently (an open port with a passive consumer)."""
    return


# -- full-testbed assembly -------------------------------------------------------


class GatewayNode(Node):
    """The home router: DHCP server, DNS forwarder, default gateway."""

    def __init__(self, lan_subnet: str = "192.168.10.0/24"):
        super().__init__(
            name="gateway",
            mac="02:00:00:00:00:01",
            ip="192.168.10.1",
            hostname="router",
            vendor="Netgear",
            services=ServiceTable(
                [
                    # Router-side services visible to LAN scans.
                    # (dns, http admin, upnp igd)
                ]
            ),
        )
        self.dhcp_leases: Dict[str, str] = {}
        self.on_udp(DHCP_SERVER_PORT, self._dhcp_server)

    def _dhcp_server(self, node: Node, packet: DecodedPacket) -> None:
        try:
            message = DhcpMessage.decode(packet.udp.payload)
        except ValueError:
            return
        if message.op != 1 or message.message_type is None:
            return
        client = self.lan.node_by_ip(packet.src_ip) if packet.src_ip != "0.0.0.0" else None
        client_ip = client.ip if client else (
            message.options.get(50) and packet.src_ip or packet.src_ip
        )
        requested = message.options.get(50)
        if requested:
            import ipaddress

            client_ip = str(ipaddress.IPv4Address(requested))
        if not client_ip or client_ip == "0.0.0.0":
            return
        self.dhcp_leases[str(message.client_mac)] = client_ip
        reply = DhcpMessage.reply(
            message,
            DhcpMessageType.ACK,
            your_ip=client_ip,
            server_ip=self.ip,
            router=self.ip,
            dns_server=self.ip,
        )
        self.send_udp(client_ip, DHCP_CLIENT_PORT, reply.encode(), src_port=DHCP_SERVER_PORT,
                      dst_mac=message.client_mac)


@dataclass
class Testbed:
    """The assembled MonIoTr lab: simulator + LAN + 93 device nodes."""

    simulator: Simulator
    lan: Lan
    gateway: GatewayNode
    devices: List[DeviceNode]
    rng: random.Random

    def device(self, name: str) -> Optional[DeviceNode]:
        for node in self.devices:
            if node.name == name:
                return node
        return None

    def devices_of_vendor(self, vendor: str) -> List[DeviceNode]:
        return [node for node in self.devices if node.vendor == vendor]

    def run(self, duration: float, on_event=None, on_event_every: int = 1000) -> int:
        """Advance the lab ``duration`` simulated seconds.

        ``on_event``/``on_event_every`` pass straight through to
        :meth:`Simulator.run` — the liveness hook long campaigns use to
        emit heartbeats (see ``repro.obs.events``).
        """
        return self.simulator.run(until=self.simulator.now + duration,
                                  on_event=on_event,
                                  on_event_every=on_event_every)


def build_testbed(
    seed: int = 7,
    profiles: Optional[List[DeviceProfile]] = None,
    registry: OuiRegistry = DEFAULT_OUI_REGISTRY,
    subnet: str = "192.168.10.0/24",
    wire_clusters: bool = True,
) -> Testbed:
    """Assemble the simulated MonIoTr lab and schedule all behaviour."""
    from repro.devices.catalog import build_catalog

    rng = random.Random(seed)
    simulator = Simulator()
    lan = Lan(simulator, subnet=subnet)
    gateway = GatewayNode(subnet)
    lan.attach(gateway, ip=lan.gateway_ip)

    selected = profiles if profiles is not None else build_catalog()
    devices: List[DeviceNode] = []
    used_macs = set()
    for profile in selected:
        while True:
            mac = registry.allocate_mac(profile.vendor, rng)
            if mac not in used_macs:
                used_macs.add(mac)
                break
        node = DeviceNode(profile, mac, random.Random(rng.getrandbits(64)))
        lan.attach(node)
        devices.append(node)
    testbed = Testbed(simulator, lan, gateway, devices, rng)
    for index, node in enumerate(devices):
        node.boot(jitter=0.25 * index + rng.uniform(0, 0.2))
    if wire_clusters:
        _wire_clusters(testbed)
    return testbed


def _wire_clusters(testbed: Testbed) -> None:
    """Schedule the intra/inter-vendor unicast conversations of Fig. 1/4."""
    sim = testbed.simulator
    rng = testbed.rng

    def tls_session(client: DeviceNode, server: DeviceNode, port: int, interval: float, first: float):
        def exchange():
            profile = server.profile
            version = TlsVersion.TLS_1_3 if (profile.tls and profile.tls.version == "1.3") else TlsVersion.TLS_1_2
            tls = profile.tls
            cn = server.ip if (tls and tls.cn_scheme == "local_ip") else (
                "0.0.0.0" if (tls and tls.cn_scheme == "zero_ip") else f"{server.hostname}.local"
            )
            cert = CertificateInfo(
                subject_cn=cn,
                issuer_cn=cn if (tls and tls.self_signed) else f"{profile.vendor} Device CA",
                not_before=0.0,
                not_after=(tls.cert_validity_days if tls else 365.0) * 86400.0,
                key_bits=tls.key_bits if tls else 2048,
                self_signed=bool(tls and tls.self_signed),
            )
            client_records = [TlsRecord.client_hello(version).encode()]
            server_records = [
                TlsRecord.server_hello(version).encode()
                + (b"" if version is TlsVersion.TLS_1_3 else TlsRecord.certificate([cert], version).encode()),
                TlsRecord.application_data(rng.randrange(64, 512), version).encode(),
            ]
            if tls and tls.mutual_auth and version is not TlsVersion.TLS_1_3:
                client_cert = CertificateInfo(
                    subject_cn=client.ip, issuer_cn=client.ip, not_before=0.0,
                    not_after=90 * 86400.0, self_signed=True,
                )
                client_records.append(TlsRecord.certificate([client_cert], version).encode())
            client_records.append(TlsRecord.application_data(rng.randrange(64, 256), version).encode())
            testbed.lan.tcp_exchange(client, server, port, client_records, server_records)

        sim.schedule_periodic(interval, exchange, first_delay=first)

    def udp_chatter(a: DeviceNode, b: DeviceNode, port: int, interval: float, first: float):
        a.on_udp(port, _udp_sink)
        b.on_udp(port, _udp_sink)

        def exchange():
            payload = bytes([0xA7, 0x01]) + rng.randbytes(30)
            a.send_udp(b.ip, port, payload, src_port=port)
            b.send_udp(a.ip, port, bytes([0xA7, 0x02]) + rng.randbytes(22), src_port=port)

        sim.schedule_periodic(interval, exchange, first_delay=first)

    def http_get(client: DeviceNode, server: DeviceNode, port: int, path: str, interval: float, first: float,
                 server_software: str = "", server_version: str = ""):
        def exchange():
            headers = {"Host": f"{server.ip}:{port}"}
            if client.profile.http_user_agent:
                headers["User-Agent"] = client.profile.http_user_agent
            request = HttpRequest("GET", path, headers)
            response = HttpResponse(
                200, "OK",
                {"Server": server_software or f"{server.vendor}-httpd/{server_version or '1.0'}"},
                b'{"status":"ok"}',
            )
            testbed.lan.tcp_exchange(client, server, port, [request.encode()], [response.encode()])

        sim.schedule_periodic(interval, exchange, first_delay=first)

    devices = testbed.devices

    # Amazon cluster: an Echo coordinator fans out to every other Amazon
    # device (Fig. 4b/4e "clear coordinator"), TLS 1.2 + unknown UDP.
    amazon = [node for node in devices if node.vendor == "Amazon"]
    if len(amazon) > 1:
        coordinator = amazon[0]
        for offset, member in enumerate(amazon[1:], start=1):
            tls_session(coordinator, member, 4070, interval=1800.0, first=30.0 + offset * 2.0)
            # Proprietary/unidentified UDP (Fig. 4e) — deliberately not a
            # protocol any classifier knows.
            udp_chatter(coordinator, member, 49317, interval=600.0, first=45.0 + offset * 1.5)

    # Google cluster: hub-centric TLS 1.2 on 8009 + UDP 10001 chatter.
    google = [node for node in devices if node.vendor == "Google"]
    hubs = [node for node in google if "Hub" in node.profile.model] or google[:1]
    if google and hubs:
        for offset, member in enumerate(google, start=1):
            if member in hubs:
                continue
            tls_session(hubs[0], member, 8009, interval=1200.0, first=40.0 + offset * 2.0)
            udp_chatter(hubs[0], member, 10001, interval=500.0, first=55.0 + offset * 1.5)
        if len(hubs) > 1:
            tls_session(hubs[0], hubs[1], 8009, interval=1200.0, first=38.0)

    # Apple cluster: mesh TLS 1.3.
    apple = [node for node in devices if node.vendor == "Apple"]
    for index, client in enumerate(apple):
        for server in apple[index + 1 :]:
            tls_session(client, server, 7000, interval=1500.0, first=60.0 + index * 3.0)

    # Interoperability edges (§4.1): speakers control TP-Link over TCP 9999,
    # talk to the Hue hub over HTTP(S), and cast to TVs.
    tplinks = [node for node in devices if node.vendor == "TP-Link"]
    hue = next((node for node in devices if node.profile.model == "Philips Hue Bridge"), None)
    controllers = [node for node in amazon[:1] + hubs[:1] if node is not None]
    for controller in controllers:
        for plug in tplinks:
            def control(plug=plug, controller=controller):
                command = TplinkShpMessage.set_relay_state(True).encode("tcp")
                reply = TplinkShpMessage({"system": {"set_relay_state": {"err_code": 0}}}).encode("tcp")
                testbed.lan.tcp_exchange(controller, plug, TPLINK_SHP_PORT, [command], [reply])

            sim.schedule_periodic(900.0, control, first_delay=70.0 + rng.uniform(0, 5))
        if hue is not None:
            http_get(controller, hue, 80, "/api/config", interval=600.0, first=80.0,
                     server_software="hue-api", server_version="1.50")

    # Casting: Google hub issues HTTP to the TVs' control endpoints.
    tvs = [node for node in devices if node.profile.category == "Media/TV"]
    caster = hubs[0] if hubs else None
    if caster:
        for offset, tv in enumerate(tvs):
            port = next((service.port for service in tv.profile.open_services
                         if service.transport == "tcp" and service.protocol == "http"), None)
            if port and tv.vendor != "Google":
                http_get(caster, tv, port, "/dial/apps", interval=1200.0, first=90.0 + offset * 4.0)

    # SmartThings hub polls Meross/Sengled HTTP endpoints (platform edges).
    smartthings = next((node for node in devices if node.vendor == "SmartThings"), None)
    if smartthings:
        for offset, peer_name in enumerate(["meross-1", "sengled-hub-1"]):
            peer = testbed.device(peer_name)
            if peer is None:
                continue
            port = next((service.port for service in peer.profile.open_services
                         if service.transport == "tcp" and service.protocol == "http"), None)
            if port:
                http_get(smartthings, peer, port, "/config", interval=1500.0, first=100.0 + offset * 5.0)

    # SSDP searchers fetch device descriptions from the LOCATION URL
    # over plaintext HTTP (the §5.2 HTTP-client census: most HTTP
    # devices "appear only as clients").
    from repro.protocols.ssdp import device_description_xml

    responders = [node for node in devices if node.profile.ssdp and node.profile.ssdp.respond]
    searchers = [
        node for node in devices
        if node.profile.ssdp and node.profile.ssdp.msearch_targets and node not in responders
    ]
    for offset, searcher in enumerate(searchers):
        if not responders:
            break
        target = responders[offset % len(responders)]

        def fetch(searcher=searcher, target=target):
            request = HttpRequest("GET", "/desc.xml", {"Host": f"{target.ip}:49152"})
            body = device_description_xml(
                friendly_name=target.profile.display_name,
                manufacturer=target.vendor,
                model_name=target.profile.model,
                udn=target.uuid,
                serial_number=str(target.mac),
            ).encode("utf-8")
            response = HttpResponse(
                200, "OK",
                {"Server": target.profile.ssdp.server_header or "UPnP/1.0",
                 "Content-Type": "text/xml"},
                body,
            )
            testbed.lan.tcp_exchange(searcher, target, 49152, [request.encode()],
                                     [response.encode()])

        target.services.add(
            __import__("repro.simnet.services", fromlist=["ServiceInfo"]).ServiceInfo(
                49152, "tcp", "http", "HTTP/1.1 200 OK", "upnp-description", "1.0"
            )
        )
        sim.schedule_periodic(700.0 + (offset % 7) * 20.0, fetch,
                              first_delay=130.0 + offset * 2.0)

    # Echo multi-room RTP (UDP 55444) between two Echoes.
    if len(amazon) >= 3:
        def multiroom():
            sender, receiver = amazon[1], amazon[2]
            packet = RtpPacket(
                payload_type=97,
                sequence=rng.randrange(65536),
                timestamp=int(sim.now * 48000) & 0xFFFFFFFF,
                ssrc=0x45C40,
                payload=rng.randbytes(160),
            )
            sender.send_udp(receiver.ip, 55444, packet.encode(), src_port=55444)

        sim.schedule_periodic(20.0, multiroom, first_delay=110.0)
