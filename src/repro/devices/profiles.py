"""Device behaviour profiles.

A :class:`DeviceProfile` is the declarative description of one testbed
device: identity, discovery behaviour, identifier-exposure policy, open
services, and known vulnerabilities.  Profiles are interpreted by
``repro.devices.behaviors`` to produce on-wire traffic, and by the
active scanners to answer probes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simnet.services import ServiceInfo


class HostnameScheme(enum.Enum):
    """DHCP/display hostname construction schemes observed in §5.1."""

    MODEL = "model"  # e.g. Ring cameras: the device model name
    NAME_AND_MAC = "name_and_mac"  # e.g. Ring Chime: device name + MAC
    VENDOR_AND_PARTIAL_MAC = "vendor_partial_mac"  # e.g. Tuya devices
    USER_DISPLAY_NAME = "user_display_name"  # e.g. "Jane Doe's Kitchen Homepod"
    RANDOMIZED = "randomized"  # e.g. GE Microwave / TiVo: random bytes per request


@dataclass
class MdnsConfig:
    """mDNS behaviour: what to advertise, what to ask, how often."""

    #: (service_type, instance_scheme, port, txt) tuples to advertise.
    #: instance_scheme values: "plain", "mac_suffix", "full_mac",
    #: "display_name", "spotify_zeroconf".
    advertise: List[Tuple[str, str, int, Dict[str, str]]] = field(default_factory=list)
    query_services: List[str] = field(default_factory=list)
    query_interval: float = 60.0  # §5.1: big vendors query every 20-100 s
    respond_multicast: bool = True  # ~98% of mDNS devices
    respond_unicast: bool = False  # ~20%
    send_queries: bool = True  # ~90%


@dataclass
class SsdpConfig:
    """SSDP behaviour: M-SEARCH targets, NOTIFY advertising, responses."""

    msearch_targets: List[str] = field(default_factory=list)
    msearch_interval: float = 0.0  # 0 = no periodic search
    notify: bool = False
    notify_interval: float = 1800.0
    respond: bool = False
    server_header: str = ""
    upnp_version: str = "UPnP/1.1"
    #: Fire TV misconfiguration (§5.1): NOTIFY announces a /16 location.
    bad_location_prefix: bool = False
    #: Roku (§5.1): sends IGD-related M-SEARCH, exploitable by malware.
    search_igd: bool = False
    #: LG TV (§5.1): requests sent by three different firmware versions.
    firmware_rotation: List[str] = field(default_factory=list)


@dataclass
class ArpScanConfig:
    """ARP scanning behaviour (§5.1, Amazon Echo)."""

    broadcast_sweep_interval: float = 0.0  # 0 = none; Echo: daily
    unicast_probe_fraction: float = 0.0  # Echo probes ~83% of other devices
    probe_public_ips: bool = False  # six devices request public IPs


@dataclass
class DhcpConfig:
    """DHCP client behaviour: hostname scheme + requested options."""

    hostname_scheme: Optional[HostnameScheme] = HostnameScheme.MODEL
    vendor_class: str = ""  # the "DHCP client name and version" leak
    parameter_request: List[int] = field(default_factory=lambda: [1, 3, 6, 12, 15])
    renew_interval: float = 0.0  # 0 = only on boot


@dataclass
class TlsConfig:
    """Local TLS posture (§5.2 per-vendor findings)."""

    version: str = "1.2"  # "1.2" or "1.3"
    cert_validity_days: float = 365.0
    self_signed: bool = False
    #: Amazon: CN is a 192.168/16 IP or 0.0.0.0, validity 3 months, mutual auth.
    cn_scheme: str = "hostname"  # "hostname", "local_ip", "zero_ip"
    mutual_auth: bool = False
    key_bits: int = 2048  # Google port-8009: 64-122 bits (SWEET32 exposure)
    port: int = 443


@dataclass
class Vulnerability:
    """A scanner-detectable security finding (feeds the Nessus analogue)."""

    cve: str  # CVE id or scanner plugin name
    summary: str
    severity: str = "medium"  # low / medium / high / critical
    service_port: int = 0
    service_transport: str = "tcp"


@dataclass
class DeviceProfile:
    """Everything the simulator and scanners need to know about a device."""

    name: str  # unique instance name, e.g. "amazon-echo-spot-1"
    vendor: str
    model: str
    category: str  # one of the seven Table 3 categories
    display_name: str = ""  # user-defined name ("Jane Doe's Kitchen Homepod")
    platforms: List[str] = field(default_factory=list)  # alexa / google-home / homekit
    supports_ipv6: bool = False
    uses_eapol: bool = True  # Ethernet-only devices don't
    uses_icmp: bool = True
    mdns: Optional[MdnsConfig] = None
    ssdp: Optional[SsdpConfig] = None
    arp_scan: ArpScanConfig = field(default_factory=ArpScanConfig)
    dhcp: DhcpConfig = field(default_factory=DhcpConfig)
    tls: Optional[TlsConfig] = None
    #: TPLINK-SHP: "server" answers sysinfo queries, "client" sends them.
    tplink_role: Optional[str] = None
    tuya_broadcast: bool = False
    tuya_encrypted: bool = False
    coap_role: Optional[str] = None  # "iotivity-client" or "opaque"
    #: RTP streaming: (port, interval) — Echo multi-room uses UDP 55444.
    rtp_port: int = 0
    #: Periodic broadcast to an unknown UDP port (Echo -> 56700 / Lifx).
    unknown_broadcast_port: int = 0
    unknown_broadcast_interval: float = 7200.0
    #: Behavioural quirks driving Fig. 3 disagreements.
    stun_like_udp_ports: List[int] = field(default_factory=list)
    open_services: List[ServiceInfo] = field(default_factory=list)
    vulnerabilities: List[Vulnerability] = field(default_factory=list)
    http_user_agent: str = ""  # only Google products and LG TV send one
    responds_to_broadcast_arp: bool = True
    responds_to_tcp_scan: bool = True
    responds_to_udp_scan: bool = False
    responds_to_ip_proto_scan: bool = True
    #: Matter support (§4.1: Amazon Echo emits IPv6-based Matter traffic).
    matter: bool = False

    def __post_init__(self):
        if not self.display_name:
            self.display_name = self.model

    @property
    def uses_mdns(self) -> bool:
        return self.mdns is not None

    @property
    def uses_ssdp(self) -> bool:
        return self.ssdp is not None

    def exposed_identifier_types(self) -> List[str]:
        """Which identifier classes this device leaks (drives Table 1)."""
        exposed = {"MAC"}  # every frame carries the MAC
        if self.dhcp.hostname_scheme in (
            HostnameScheme.MODEL,
            HostnameScheme.NAME_AND_MAC,
            HostnameScheme.VENDOR_AND_PARTIAL_MAC,
        ):
            exposed.add("Device/Model")
        if self.dhcp.hostname_scheme is HostnameScheme.USER_DISPLAY_NAME:
            exposed.add("Display name")
        if self.ssdp and (self.ssdp.respond or self.ssdp.notify):
            exposed.add("UUIDs")
            if self.ssdp.server_header:
                exposed.add("OS Version")
        if self.tplink_role == "server":
            exposed.update({"Geolocation", "OEM id", "Device/Model"})
        if self.tuya_broadcast:
            exposed.update({"GW id", "Prod. Key"})
        if self.vulnerabilities:
            exposed.add("Outdated OS/SW")
        return sorted(exposed)
