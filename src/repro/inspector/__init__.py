"""The IoT Inspector crowdsourced dataset substrate (§3.3, §6.3, App. E).

The real dataset (13,487 devices across 3,893 households, with full
mDNS/SSDP response payloads) is not redistributable; this package
generates a synthetic equivalent with the paper's marginals and real
wire-format payloads, then *measures* — rather than copies — the
Table 2 entropy results from it.
"""

from repro.inspector.schema import InspectedDevice, Household, InspectorDataset, FlowRecord
from repro.inspector.generate import generate_dataset, ExposureClass, ProductSpec
from repro.inspector.entropy import (
    extract_names,
    extract_uuids,
    extract_macs,
    EntropyAnalysis,
    analyze_dataset,
)
from repro.inspector.labels import DeviceLabeler, LabelResult

__all__ = [
    "InspectedDevice",
    "Household",
    "InspectorDataset",
    "FlowRecord",
    "generate_dataset",
    "ExposureClass",
    "ProductSpec",
    "extract_names",
    "extract_uuids",
    "extract_macs",
    "EntropyAnalysis",
    "analyze_dataset",
    "DeviceLabeler",
    "LabelResult",
]
