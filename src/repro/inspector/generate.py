"""Seeded generator for the synthetic crowdsourced dataset.

Targets the §6.3 subset's marginals: 12,669 devices in 3,860 households
(median 3 devices each), 264 products from 165 vendors, and the Table 2
exposure structure — most products expose nothing, UUID-only is the
most common exposure, MAC-only and UUID+MAC exist, first names are
rare, and exactly one product (Roku TV) exposes all three identifier
types.  Every exposure travels inside *real* mDNS/SSDP payload bytes
built with the protocol codecs, so the entropy analysis genuinely
extracts rather than copies.

Generation is **shard-stable**: the product pool (and the vendor→OUI
map) derive from the master seed alone, and every household draws from
its own ``random.Random`` keyed on ``(seed, household index)``.  A
household's bytes therefore depend only on the generation spec and its
index — never on which other households were generated in the same
process — which is what lets the fleet runner
(:mod:`repro.fleet`) generate disjoint household ranges in parallel
worker processes and still concatenate to the exact dataset
:func:`generate_dataset` produces serially.
"""

from __future__ import annotations

import enum
import hashlib
import random
import uuid as uuid_module
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.inspector.schema import (
    FlowRecord,
    Household,
    InspectedDevice,
    InspectorDataset,
    hashed_device_id,
)
from repro.net.mac import MacAddress
from repro.protocols.mdns import ServiceAdvertisement
from repro.protocols.ssdp import SsdpMessage, ST_ROOT_DEVICE


def derive_seed(seed: int, *parts: object) -> int:
    """A stable 64-bit stream seed for one labelled sub-generator.

    Hash-based (BLAKE2b over ``"seed:part:..."``), so the derivation is
    identical across processes and Python versions — the property the
    fleet's serial-equivalence guarantee rests on.
    """
    key = ":".join(str(part) for part in (seed, *parts)).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


def derive_rng(seed: int, *parts: object) -> random.Random:
    """A ``random.Random`` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(seed, *parts))


class ExposureClass(enum.Enum):
    """Which identifier types a product's responses can expose."""

    NONE = frozenset()
    NAME = frozenset({"name"})
    UUID = frozenset({"uuid"})
    MAC = frozenset({"mac"})
    NAME_UUID = frozenset({"name", "uuid"})
    UUID_MAC = frozenset({"uuid", "mac"})
    ALL = frozenset({"name", "uuid", "mac"})

    @property
    def types(self) -> frozenset:
        return self.value


@dataclass
class ProductSpec:
    """One product (vendor-category pair) and its exposure behaviour."""

    vendor: str
    category: str
    exposure: ExposureClass
    popularity: float  # sampling weight
    #: Products shipping a firmware-constant UUID (breaks uniqueness,
    #: which is why Table 2 sees only ~94% unique households).
    constant_uuid: Optional[str] = None
    #: Products whose firmware echoes one constant MAC (vendor OUI) in
    #: every unit's payloads — the collision source behind Table 2's
    #: ~94% (not 100%) household uniqueness for MAC.
    constant_mac_suffix: Optional[str] = None

    @property
    def name(self) -> str:
        return f"{self.vendor}/{self.category}"


FIRST_NAMES = [
    "Alex", "Sam", "Jordan", "Taylor", "Casey", "Morgan", "Riley", "Jamie",
    "Avery", "Quinn", "Dana", "Robin", "Jesse", "Drew", "Skyler", "Logan",
]

CATEGORIES = [
    "camera", "plug", "bulb", "speaker", "tv", "hub", "thermostat",
    "doorbell", "printer", "scale", "vacuum", "sensor", "streamer",
]

VENDOR_STEMS = [
    "Acme", "Brightly", "Cobalt", "Dynamo", "Everhome", "Fluxio", "Gadgetron",
    "Halcyon", "Ionix", "Jetstream", "Kinetic", "Lumina", "Mistral", "Nimbus",
    "Orbita", "Pulse", "Quartz", "Reverb", "Solace", "Tempest", "Umbra",
    "Vantage", "Wavelet", "Xenon", "Yonder", "Zephyr",
]


def _make_vendor_pool(rng: random.Random, count: int) -> List[str]:
    vendors = ["Roku", "Google", "Amazon", "Philips", "Sonos", "Samsung", "TP-Link", "Belkin"]
    while len(vendors) < count:
        stem = rng.choice(VENDOR_STEMS)
        candidate = f"{stem}{rng.randrange(2, 99)}"
        if candidate not in vendors:
            vendors.append(candidate)
    return vendors[:count]


def _make_product_pool(rng: random.Random, vendor_count: int, product_count: int) -> List[ProductSpec]:
    """Build the product pool with the Table 2 exposure mix."""
    vendors = _make_vendor_pool(rng, vendor_count)
    products: List[ProductSpec] = []
    # The one product exposing all three identifier types: Roku TV,
    # whose SSDP name is "<owner>'s Roku Express" and whose USN embeds
    # UUID and MAC (Table 2, last row).
    products.append(ProductSpec("Roku", "tv", ExposureClass.ALL, popularity=0.2))
    # Exposure mix for the remainder, weighted to land near the Table 2
    # row structure once devices are sampled.
    # (class, product quota, popularity multiplier): multipliers skew
    # device counts toward the Table 2 row magnitudes (UUID-exposing
    # products are the popular ones; name-exposing ones are rare).
    mix: List[Tuple[ExposureClass, int, float]] = [
        (ExposureClass.NONE, 150, 1.0),
        (ExposureClass.UUID, 62, 4.2),
        (ExposureClass.MAC, 22, 1.3),
        (ExposureClass.NAME, 2, 0.005),
        (ExposureClass.UUID_MAC, 25, 2.4),
        (ExposureClass.NAME_UUID, 2, 0.06),
    ]
    index = 0
    for exposure, quota, multiplier in mix:
        for _ in range(quota):
            if len(products) >= product_count:
                break
            vendor = vendors[index % len(vendors)]
            category = CATEGORIES[(index // len(vendors)) % len(CATEGORIES)]
            index += 1
            spec = ProductSpec(
                vendor=vendor,
                category=category,
                exposure=exposure,
                popularity=rng.paretovariate(1.2) * multiplier,
            )
            # ~8% of UUID-capable products ship a firmware-constant UUID.
            if "uuid" in exposure.types and rng.random() < 0.08:
                spec.constant_uuid = str(uuid_module.UUID(int=rng.getrandbits(128)))
            if "mac" in exposure.types and rng.random() < 0.10:
                spec.constant_mac_suffix = f"{rng.randrange(1 << 24):06x}"
            products.append(spec)
    return products


def _make_oui_map(rng: random.Random, products: List[ProductSpec]) -> Dict[str, str]:
    """One OUI per vendor, fixed for the whole population.

    Precomputed from the pool (not lazily per household) so every
    household — whichever shard generates it — sees the same vendor→OUI
    assignment.
    """
    fixed = {
        "Roku": "d8:31:34",
        "Google": "54:60:09",
        "Amazon": "74:c2:46",
        "Philips": "00:17:88",
    }
    oui_map: Dict[str, str] = {}
    for spec in products:
        if spec.vendor in oui_map:
            continue
        if spec.vendor in fixed:
            oui_map[spec.vendor] = fixed[spec.vendor]
        else:
            oui_map[spec.vendor] = (
                f"{rng.randrange(0, 255) & 0xFC:02x}:{rng.randrange(256):02x}:{rng.randrange(256):02x}"
            )
    return oui_map


@dataclass
class GenerationContext:
    """Everything shared by every household of one population.

    Built from the master seed alone (see :func:`build_context`), so
    any process can reconstruct it and generate any household range.
    """

    seed: int
    households: int
    target_devices: int
    products: List[ProductSpec]
    weights: List[float]
    oui_map: Dict[str, str]

    @property
    def mean_devices(self) -> float:
        return self.target_devices / self.households

    @property
    def roku_spec(self) -> ProductSpec:
        return self.products[0]

    @property
    def name_spec(self) -> ProductSpec:
        return next(spec for spec in self.products if spec.exposure is ExposureClass.NAME)


def build_context(
    seed: int = 23,
    households: int = 3860,
    target_devices: int = 12669,
    vendor_count: int = 165,
    product_count: int = 264,
) -> GenerationContext:
    """Build the population-wide generation context for one spec."""
    pool_rng = derive_rng(seed, "pool")
    products = _make_product_pool(pool_rng, vendor_count, product_count)
    oui_map = _make_oui_map(derive_rng(seed, "oui"), products)
    return GenerationContext(
        seed=seed,
        households=households,
        target_devices=target_devices,
        products=products,
        weights=[spec.popularity for spec in products],
        oui_map=oui_map,
    )


def _build_device(
    rng: random.Random,
    spec: ProductSpec,
    user_salt: bytes,
    oui_map: Dict[str, str],
) -> InspectedDevice:
    oui = oui_map[spec.vendor]
    mac = MacAddress(bytes(int(part, 16) for part in oui.split(":")) + bytes(rng.randrange(256) for _ in range(3)))
    exposure = spec.exposure.types
    owner = rng.choice(FIRST_NAMES)
    device_uuid = spec.constant_uuid or str(uuid_module.UUID(int=rng.getrandbits(128)))
    if spec.constant_mac_suffix is not None:
        exposed_mac = str(MacAddress(oui.replace(":", "") + spec.constant_mac_suffix))
    else:
        exposed_mac = str(mac)

    device = InspectedDevice(
        device_id=hashed_device_id(str(mac), user_salt),
        oui=oui,
        truth_vendor=spec.vendor,
        truth_category=spec.category,
        truth_mac=str(mac),
    )
    # DHCP hostname: vendor-flavoured, used by the Appendix E labeler.
    device.dhcp_hostname = f"{spec.vendor.lower()}-{spec.category}-{mac.compact()[-4:]}"
    device.hostnames_contacted = [f"api.{spec.vendor.lower()}.com", "pool.ntp.org"]
    # Noisy crowdsourced labels: present for ~70%, misspelled for ~10%.
    if rng.random() < 0.7:
        vendor_label = spec.vendor
        if rng.random() < 0.1:
            vendor_label = vendor_label.replace("o", "0", 1) if "o" in vendor_label else vendor_label + "s"
        device.user_label_vendor = vendor_label
        device.user_label_category = spec.category if rng.random() < 0.9 else ""

    friendly = f"{spec.vendor} {spec.category.title()}"
    if "name" in exposure:
        friendly = f"{owner}'s {spec.category.title()}"
        if spec.vendor == "Roku":
            friendly = f"{owner}'s Roku Express"

    # SSDP response (the Table 5 Amcrest shape).
    usn_parts = [f"uuid:{device_uuid}" if "uuid" in exposure else "uuid:device"]
    if "mac" in exposure:
        usn_parts.append(exposed_mac.replace(":", ""))
    ssdp = SsdpMessage.response(
        location=f"http://192.168.1.{rng.randrange(2, 254)}:8060/",
        search_target=ST_ROOT_DEVICE,
        usn="::".join(usn_parts + [ST_ROOT_DEVICE]),
        server=f"{spec.vendor}/1.0 UPnP/1.1 {spec.vendor}OS/9.0",
    )
    if "name" in exposure:
        ssdp.headers["NAME"] = friendly
    device.ssdp_responses.append(ssdp.encode())

    # mDNS response.
    instance = friendly
    if "mac" in exposure and rng.random() < 0.8:
        instance = f"{friendly} - {exposed_mac.replace(':', '')[-6:].upper()}"
    txt = {"md": f"{spec.vendor} {spec.category}"}
    if "uuid" in exposure:
        txt["id"] = device_uuid
    if "mac" in exposure:
        txt["mac"] = exposed_mac
    advertisement = ServiceAdvertisement(
        service_type=f"_{spec.vendor.lower()}._tcp.local",
        instance_name=instance,
        hostname=f"{spec.vendor.lower()}-{mac.compact()[-6:]}.local",
        port=8060,
        address=f"192.168.1.{rng.randrange(2, 254)}",
        txt=txt,
    )
    device.mdns_responses.append(advertisement.to_response().encode())
    return device


def _household_flows(rng: random.Random, household: Household) -> List[FlowRecord]:
    """Local TCP/UDP flow summaries between household devices."""
    flows: List[FlowRecord] = []
    devices = household.devices
    if len(devices) < 2:
        return flows
    for _ in range(rng.randrange(1, 3 + len(devices))):
        a, b = rng.sample(range(len(devices)), 2)
        window = rng.randrange(0, 720) * 5.0
        flows.append(
            FlowRecord(
                window_start=window,
                src_ip=f"192.168.1.{10 + a}",
                dst_ip=f"192.168.1.{10 + b}",
                src_port=rng.randrange(49152, 65535),
                dst_port=rng.choice([80, 443, 8009, 1900, 5353, 8060]),
                transport=rng.choice(["tcp", "udp"]),
                bytes_sent=rng.randrange(64, 40960),
                bytes_received=rng.randrange(64, 40960),
            )
        )
    return flows


def generate_household(context: GenerationContext, index: int) -> Household:
    """Generate household ``index`` of the population, order-free.

    All randomness comes from RNGs derived from ``(seed, index)``, so
    the result is identical whether the household is generated alone,
    inside a shard, or as part of the full serial sweep.
    """
    rng = derive_rng(context.seed, "household", index)
    user_salt = rng.getrandbits(128).to_bytes(16, "big")
    household = Household(user_id=f"user-{index:05d}")
    count = max(1, min(25, int(rng.lognormvariate(1.0, 0.62) * context.mean_devices / 2.9)))
    specs = rng.choices(context.products, weights=context.weights, k=count)
    for spec in specs:
        household.devices.append(_build_device(rng, spec, user_salt, context.oui_map))
    household.flows = _household_flows(rng, household)

    # Table 2 anchor rows, keyed purely by household index: households
    # 0-1 each get the all-three Roku product, households 2-3 each get a
    # name-only product sharing one first name.
    if index < 4:
        spec = context.roku_spec if index < 2 else context.name_spec
        anchor_rng = derive_rng(context.seed, "anchor", index)
        salt = anchor_rng.getrandbits(128).to_bytes(16, "big")
        household.devices.append(_build_device(anchor_rng, spec, salt, context.oui_map))
    return household


def generate_households(
    context: GenerationContext, start: int, stop: int
) -> List[Household]:
    """Generate the contiguous household range ``[start, stop)``.

    The fleet's shard boundary: concatenating the ranges
    ``[0, s), [s, 2s), ...`` in order reproduces
    :func:`generate_dataset` byte for byte.
    """
    if not 0 <= start <= stop <= context.households:
        raise ValueError(
            f"household range [{start}, {stop}) outside population "
            f"[0, {context.households})")
    return [generate_household(context, index) for index in range(start, stop)]


def generate_dataset(
    seed: int = 23,
    households: int = 3860,
    target_devices: int = 12669,
    vendor_count: int = 165,
    product_count: int = 264,
) -> InspectorDataset:
    """Generate the §6.3 analysis subset (the full serial sweep)."""
    context = build_context(
        seed=seed,
        households=households,
        target_devices=target_devices,
        vendor_count=vendor_count,
        product_count=product_count,
    )
    dataset = InspectorDataset()
    dataset.households.extend(generate_households(context, 0, households))
    return dataset
