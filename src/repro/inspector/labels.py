"""Device identity inference over crowdsourced metadata (Appendix E).

The paper feeds DHCP hostnames, mDNS/SSDP responses, and noisy user
labels to OpenAI's TextCompletion API to infer each device's vendor and
category.  Offline, we replace the LLM with a deterministic rule
cascade over the same inputs: OUI lookup, vendor-token matching in
hostnames/payloads, and fuzzy matching of crowdsourced labels —
validated against the generator's ground truth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.inspector.schema import InspectedDevice, InspectorDataset


@dataclass
class LabelResult:
    """Inferred identity for one device."""

    device_id: str
    vendor: Optional[str]
    category: Optional[str]
    source: str  # which rule produced the inference
    confidence: float


_CATEGORY_TOKENS = [
    "camera", "plug", "bulb", "speaker", "tv", "hub", "thermostat",
    "doorbell", "printer", "scale", "vacuum", "sensor", "streamer",
]


def _normalize(token: str) -> str:
    return re.sub(r"[^a-z0-9]", "", token.lower())


def _fuzzy_equal(left: str, right: str) -> bool:
    """Tolerate one edit (the crowdsourced-misspelling case)."""
    left, right = _normalize(left), _normalize(right)
    if left == right:
        return True
    if abs(len(left) - len(right)) > 1 or not left or not right:
        return False
    # one substitution
    if len(left) == len(right):
        return sum(1 for a, b in zip(left, right) if a != b) <= 1
    # one insertion/deletion
    shorter, longer = sorted((left, right), key=len)
    for index in range(len(longer)):
        if longer[:index] + longer[index + 1 :] == shorter:
            return True
    return False


class DeviceLabeler:
    """The offline substitute for the Appendix E TextCompletion prompts."""

    def __init__(self, known_vendors: Optional[List[str]] = None,
                 oui_map: Optional[Dict[str, str]] = None):
        self.known_vendors = known_vendors or []
        self.oui_map = oui_map or {}

    @classmethod
    def from_dataset(cls, dataset: InspectorDataset) -> "DeviceLabeler":
        """Bootstrap vendor knowledge the way the LLM has world knowledge:
        from the distribution of user labels and OUI co-occurrence."""
        vendor_votes: Dict[str, Dict[str, int]] = {}
        vendors: Set[str] = set()
        for device in dataset.all_devices():
            if device.user_label_vendor:
                vendors.add(device.user_label_vendor)
                per_oui = vendor_votes.setdefault(device.oui, {})
                per_oui[device.user_label_vendor] = per_oui.get(device.user_label_vendor, 0) + 1
        oui_map = {
            oui: max(votes.items(), key=lambda item: item[1])[0]
            for oui, votes in vendor_votes.items()
        }
        return cls(known_vendors=sorted(vendors), oui_map=oui_map)

    # -- inference ----------------------------------------------------------------

    def label_device(self, device: InspectedDevice) -> LabelResult:
        vendor, vendor_source, confidence = self._infer_vendor(device)
        category = self._infer_category(device)
        return LabelResult(
            device_id=device.device_id,
            vendor=vendor,
            category=category,
            source=vendor_source,
            confidence=confidence,
        )

    def label_dataset(self, dataset: InspectorDataset) -> List[LabelResult]:
        return [self.label_device(device) for device in dataset.all_devices()]

    def _infer_vendor(self, device: InspectedDevice) -> Tuple[Optional[str], str, float]:
        # 1. Explicit user label wins: exact match first, then a
        #    one-edit fuzzy match (the misspelling case).  Exact-first
        #    matters because generated vendor names can be one edit
        #    apart ("Acme12" vs "Acme13").
        if device.user_label_vendor:
            for vendor in self.known_vendors:
                if _normalize(device.user_label_vendor) == _normalize(vendor):
                    return vendor, "user-label", 0.98
            for vendor in self.known_vendors:
                if _fuzzy_equal(device.user_label_vendor, vendor):
                    return vendor, "user-label-fuzzy", 0.9
        # 2. Vendor token inside the DHCP hostname or payloads.
        haystack = _normalize(device.dhcp_hostname + " " + device.all_payload_text())
        best = None
        for vendor in self.known_vendors:
            token = _normalize(vendor)
            if token and token in haystack:
                if best is None or len(token) > len(_normalize(best)):
                    best = vendor
        if best is not None:
            return best, "hostname/payload-token", 0.85
        # 3. OUI majority vote.
        vendor = self.oui_map.get(device.oui)
        if vendor is not None:
            return vendor, "oui", 0.6
        return None, "none", 0.0

    @staticmethod
    def _infer_category(device: InspectedDevice) -> Optional[str]:
        haystack = (
            device.dhcp_hostname + " " + device.user_label_category + " " + device.all_payload_text()
        ).lower()
        for token in _CATEGORY_TOKENS:
            if token in haystack:
                return token
        return None

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, dataset: InspectorDataset) -> Dict[str, float]:
        """Accuracy against generator ground truth (validation only)."""
        results = self.label_dataset(dataset)
        truth = {device.device_id: device for device in dataset.all_devices()}
        labeled = [result for result in results if result.vendor is not None]
        vendor_hits = sum(
            1 for result in labeled if result.vendor == truth[result.device_id].truth_vendor
        )
        category_results = [result for result in results if result.category is not None]
        category_hits = sum(
            1
            for result in category_results
            if result.category == truth[result.device_id].truth_category
        )
        total = len(results)
        return {
            "total": float(total),
            "vendor_labeled": len(labeled) / total if total else 0.0,
            "vendor_accuracy": vendor_hits / len(labeled) if labeled else 0.0,
            "category_labeled": len(category_results) / total if total else 0.0,
            "category_accuracy": category_hits / len(category_results) if category_results else 0.0,
        }
